//! Criterion bench: the mechanism ablations (pipelining, serde,
//! object store, language warm-up).

use criterion::{criterion_group, criterion_main, Criterion};
use scriptflow_core::{Calibration, Experiment};
use scriptflow_simcluster::SimDuration;
use scriptflow_study::ablate;
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::kge::{self, KgeParams};
use std::hint::black_box;

fn pipelining(c: &mut Criterion) {
    let on = Calibration::paper();
    let mut off = Calibration::paper();
    off.wf_pipelining = false;
    let mut g = c.benchmark_group("ablate_pipelining_dice");
    g.sample_size(10);
    g.bench_function("on", |b| {
        b.iter(|| dice::workflow::run_workflow(black_box(&DiceParams::new(50, 1)), &on).unwrap())
    });
    g.bench_function("off", |b| {
        b.iter(|| dice::workflow::run_workflow(black_box(&DiceParams::new(50, 1)), &off).unwrap())
    });
    g.finish();
}

fn serde(c: &mut Criterion) {
    let on = Calibration::paper();
    let mut off = Calibration::paper();
    off.wf_serde_per_tuple = SimDuration::ZERO;
    let mut g = c.benchmark_group("ablate_serde_kge");
    g.sample_size(10);
    g.bench_function("charged", |b| {
        b.iter(|| {
            kge::workflow::run_workflow(black_box(&KgeParams::new(6_800, 1).with_fusion(3)), &on)
                .unwrap()
        })
    });
    g.bench_function("free", |b| {
        b.iter(|| {
            kge::workflow::run_workflow(black_box(&KgeParams::new(6_800, 1).with_fusion(3)), &off)
                .unwrap()
        })
    });
    g.finish();
}

fn full_ablation_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_suite");
    g.sample_size(10);
    g.bench_function("object_store", |b| {
        b.iter(|| black_box(ablate::ObjectStoreAblation.run()))
    });
    g.bench_function("language_sweep", |b| {
        b.iter(|| black_box(ablate::LanguageSweep.run()))
    });
    g.finish();
}

criterion_group!(benches, pipelining, serde, full_ablation_suite);
criterion_main!(benches);
