//! Criterion bench: raw engine overheads.
//!
//! Measures the live executor's two concurrency models against each other
//! (the pool-scheduled executor vs the original thread-per-worker
//! baseline) in tuples/sec via `Throughput::Elements`, across operator
//! parallelism 1/2/4/8 and on a broadcast-join workload where zero-copy
//! batch sharing matters most, plus the historical live-vs-simulated
//! comparison.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scriptflow_datakit::{Batch, DataType, Schema, Value};
use scriptflow_simcluster::ClusterSpec;
use scriptflow_workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp};
use scriptflow_workflow::{
    EngineConfig, ExecMode, LiveExecutor, PartitionStrategy, SimExecutor, Workflow, WorkflowBuilder,
};
use std::hint::black_box;

fn int_batch(n: i64) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int)]);
    Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
}

fn pipeline(n: i64, workers: usize) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), workers);
    let f1 = b.add(
        Arc::new(FilterOp::new("mod3", |t| Ok(t.get_int("id")? % 3 != 0))),
        workers,
    );
    let f2 = b.add(
        Arc::new(FilterOp::new("mod5", |t| Ok(t.get_int("id")? % 5 != 0))),
        workers,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, f1, 0, PartitionStrategy::RoundRobin);
    b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
    b.connect(f2, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

/// A small dimension table broadcast to every join worker, probed by a
/// large fact stream — the workload where `Arc`-shared batches replace a
/// deep clone per destination worker.
fn broadcast_join(facts: i64, workers: usize) -> Workflow {
    let dim_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
    let dims = Batch::from_rows(
        dim_schema,
        (0..256i64)
            .map(|k| vec![Value::Int(k), Value::Str(format!("d{k}"))])
            .collect(),
    )
    .unwrap();
    let fact_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
    let fact_batch = Batch::from_rows(
        fact_schema,
        (0..facts)
            .map(|i| vec![Value::Int(i), Value::Int(i % 256)])
            .collect(),
    )
    .unwrap();
    let mut b = WorkflowBuilder::new();
    let ds = b.add(Arc::new(ScanOp::new("dims", dims)), 1);
    let fs = b.add(Arc::new(ScanOp::new("facts", fact_batch)), workers);
    let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(ds, join, 0, PartitionStrategy::Broadcast);
    b.connect(fs, join, 1, PartitionStrategy::RoundRobin);
    b.connect(join, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

fn executor(mode: ExecMode) -> LiveExecutor {
    LiveExecutor::new(1024).with_mode(mode)
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Pooled => "pooled",
        ExecMode::ThreadPerWorker => "threads",
    }
}

fn pooled_vs_threads(c: &mut Criterion) {
    let n = 50_000i64;
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    for workers in [1usize, 2, 4, 8] {
        for mode in [ExecMode::Pooled, ExecMode::ThreadPerWorker] {
            g.bench_with_input(
                BenchmarkId::new(mode_name(mode), workers),
                &workers,
                |b, &w| {
                    b.iter(|| {
                        let wf = pipeline(n, w);
                        black_box(executor(mode).run(&wf).unwrap())
                    })
                },
            );
        }
    }
    g.finish();
}

fn broadcast_join_throughput(c: &mut Criterion) {
    let facts = 50_000i64;
    let mut g = c.benchmark_group("engine_broadcast_join");
    g.sample_size(20);
    g.throughput(Throughput::Elements(facts as u64));
    for mode in [ExecMode::Pooled, ExecMode::ThreadPerWorker] {
        g.bench_function(BenchmarkId::new(mode_name(mode), 4usize), |b| {
            b.iter(|| {
                let wf = broadcast_join(facts, 4);
                black_box(executor(mode).run(&wf).unwrap())
            })
        });
    }
    g.finish();
}

fn sim_vs_live(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_executors");
    g.sample_size(20);
    for n in [10_000i64, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("simulated", n), &n, |b, &n| {
            let cfg = EngineConfig {
                cluster: ClusterSpec::single_node(4),
                ..EngineConfig::default()
            };
            b.iter(|| {
                let wf = pipeline(n, 2);
                black_box(SimExecutor::new(cfg.clone()).run(&wf).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("live_pooled", n), &n, |b, &n| {
            b.iter(|| {
                let wf = pipeline(n, 2);
                black_box(LiveExecutor::new(1024).run(&wf).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    pooled_vs_threads,
    broadcast_join_throughput,
    sim_vs_live
);
criterion_main!(benches);
