//! Criterion bench: raw engine overheads — the live (real OS threads)
//! executor vs the simulated executor on identical workflows, plus DES
//! event throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scriptflow_datakit::{Batch, DataType, Schema, Value};
use scriptflow_simcluster::ClusterSpec;
use scriptflow_workflow::ops::{FilterOp, ScanOp, SinkOp};
use scriptflow_workflow::{
    EngineConfig, LiveExecutor, PartitionStrategy, SimExecutor, Workflow, WorkflowBuilder,
};
use std::hint::black_box;

fn pipeline(n: i64, workers: usize) -> Workflow {
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), workers);
    let f1 = b.add(
        Arc::new(FilterOp::new("mod3", |t| Ok(t.get_int("id")? % 3 != 0))),
        workers,
    );
    let f2 = b.add(
        Arc::new(FilterOp::new("mod5", |t| Ok(t.get_int("id")? % 5 != 0))),
        workers,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, f1, 0, PartitionStrategy::RoundRobin);
    b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
    b.connect(f2, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

fn sim_vs_live(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_executors");
    g.sample_size(20);
    for n in [10_000i64, 100_000] {
        g.bench_with_input(BenchmarkId::new("simulated", n), &n, |b, &n| {
            let cfg = EngineConfig {
                cluster: ClusterSpec::single_node(4),
                ..EngineConfig::default()
            };
            b.iter(|| {
                let wf = pipeline(n, 2);
                black_box(SimExecutor::new(cfg.clone()).run(&wf).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("live_threads", n), &n, |b, &n| {
            b.iter(|| {
                let wf = pipeline(n, 2);
                black_box(LiveExecutor::new(1024).run(&wf).unwrap())
            })
        });
    }
    g.finish();
}

fn live_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_live_workers");
    g.sample_size(20);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let wf = pipeline(50_000, w);
                black_box(LiveExecutor::new(1024).run(&wf).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, sim_vs_live, live_worker_scaling);
criterion_main!(benches);
