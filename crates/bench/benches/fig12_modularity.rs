//! Criterion bench: the Fig. 12 modularity experiments — LoC counting
//! (12a) and the KGE fusion-level sweep (12b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scriptflow_core::Calibration;
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::listing;
use std::hint::black_box;

fn fig12a_loc(c: &mut Criterion) {
    c.bench_function("fig12a_loc_counting", |b| {
        b.iter(|| {
            let total = listing::count_loc(&listing::dice_script_listing())
                + listing::count_loc(&listing::dice_workflow_listing())
                + listing::count_loc(&listing::wef_script_listing())
                + listing::count_loc(&listing::wef_workflow_listing())
                + listing::count_loc(&listing::gotta_script_listing())
                + listing::count_loc(&listing::gotta_workflow_listing())
                + listing::count_loc(&listing::kge_script_listing())
                + listing::count_loc(&listing::kge_workflow_listing());
            black_box(total)
        })
    });
}

fn fig12b_fusion(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig12b_kge_fusion");
    g.sample_size(10);
    for fusion in 1..=6usize {
        g.bench_with_input(BenchmarkId::from_parameter(fusion), &fusion, |b, &f| {
            b.iter(|| {
                kge::workflow::run_workflow(
                    black_box(&KgeParams::new(6_800, 1).with_fusion(f)),
                    &cal,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig12a_loc, fig12b_fusion);
criterion_main!(benches);
