//! Criterion bench: the Fig. 13 dataset-scaling experiments.
//!
//! Each bench regenerates one paper data point (both paradigms). The
//! virtual times are deterministic; Criterion measures how long the
//! harness takes to simulate + really-execute the task, guarding the
//! engines against performance regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scriptflow_core::Calibration;
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::wef::{self, WefParams};
use std::hint::black_box;

fn fig13a_dice(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig13a_dice");
    g.sample_size(10);
    for pairs in [10usize, 200] {
        g.bench_with_input(BenchmarkId::new("script", pairs), &pairs, |b, &n| {
            b.iter(|| {
                dice::script::run_script(black_box(&DiceParams::new(n, 1)), &cal).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("workflow", pairs), &pairs, |b, &n| {
            b.iter(|| {
                dice::workflow::run_workflow(black_box(&DiceParams::new(n, 1)), &cal).unwrap()
            })
        });
    }
    g.finish();
}

fn fig13b_wef(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig13b_wef");
    g.sample_size(10);
    for tweets in [200usize, 400] {
        g.bench_with_input(BenchmarkId::new("script", tweets), &tweets, |b, &n| {
            b.iter(|| wef::script::run_script(black_box(&WefParams::new(n)), &cal).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("workflow", tweets), &tweets, |b, &n| {
            b.iter(|| wef::workflow::run_workflow(black_box(&WefParams::new(n)), &cal).unwrap())
        });
    }
    g.finish();
}

fn fig13c_kge(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig13c_kge");
    g.sample_size(10);
    for products in [6_800usize, 68_000] {
        g.bench_with_input(BenchmarkId::new("script", products), &products, |b, &n| {
            b.iter(|| kge::script::run_script(black_box(&KgeParams::new(n, 1)), &cal).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("workflow", products),
            &products,
            |b, &n| {
                b.iter(|| {
                    kge::workflow::run_workflow(
                        black_box(&KgeParams::new(n, 1).with_fusion(3)),
                        &cal,
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn fig13d_gotta(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig13d_gotta");
    g.sample_size(10);
    for paragraphs in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("script", paragraphs),
            &paragraphs,
            |b, &n| {
                b.iter(|| {
                    gotta::script::run_script(black_box(&GottaParams::new(n, 1)), &cal).unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("workflow", paragraphs),
            &paragraphs,
            |b, &n| {
                b.iter(|| {
                    gotta::workflow::run_workflow(black_box(&GottaParams::new(n, 1)), &cal)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fig13a_dice, fig13b_wef, fig13c_kge, fig13d_gotta);
criterion_main!(benches);
