//! Criterion bench: the Fig. 14 worker-scaling experiments (DICE @200
//! pairs, GOTTA @4 paragraphs, KGE @68k products; 1/2/4 workers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scriptflow_core::Calibration;
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};
use std::hint::black_box;

const WORKERS: [usize; 3] = [1, 2, 4];

fn fig14a_dice(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig14a_dice_workers");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("script", w), &w, |b, &w| {
            b.iter(|| dice::script::run_script(black_box(&DiceParams::new(200, w)), &cal).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("workflow", w), &w, |b, &w| {
            b.iter(|| {
                dice::workflow::run_workflow(black_box(&DiceParams::new(200, w)), &cal).unwrap()
            })
        });
    }
    g.finish();
}

fn fig14b_gotta(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig14b_gotta_workers");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("script", w), &w, |b, &w| {
            b.iter(|| gotta::script::run_script(black_box(&GottaParams::new(4, w)), &cal).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("workflow", w), &w, |b, &w| {
            b.iter(|| {
                gotta::workflow::run_workflow(black_box(&GottaParams::new(4, w)), &cal).unwrap()
            })
        });
    }
    g.finish();
}

fn fig14c_kge(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("fig14c_kge_workers");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("script", w), &w, |b, &w| {
            b.iter(|| {
                kge::script::run_script(black_box(&KgeParams::new(68_000, w)), &cal).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("workflow", w), &w, |b, &w| {
            b.iter(|| {
                kge::workflow::run_workflow(
                    black_box(&KgeParams::new(68_000, w).with_fusion(3)),
                    &cal,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig14a_dice, fig14b_gotta, fig14c_kge);
criterion_main!(benches);
