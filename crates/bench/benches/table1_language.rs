//! Criterion bench: the Table I language-efficiency experiment — the
//! KGE workflow with Python vs Scala join operators at both scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scriptflow_core::Calibration;
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{self, KgeParams};
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let cal = Calibration::paper();
    let mut g = c.benchmark_group("table1_language");
    g.sample_size(10);
    for products in [6_800usize, 68_000] {
        g.bench_with_input(
            BenchmarkId::new("python_join", products),
            &products,
            |b, &n| {
                b.iter(|| {
                    kge::workflow::run_workflow(
                        black_box(&KgeParams::new(n, 1).with_fusion(3).with_pandas_join()),
                        &cal,
                    )
                    .unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("scala_join", products),
            &products,
            |b, &n| {
                b.iter(|| {
                    kge::workflow::run_workflow(
                        black_box(
                            &KgeParams::new(n, 1)
                                .with_fusion(3)
                                .with_join_language(Language::Scala),
                        ),
                        &cal,
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
