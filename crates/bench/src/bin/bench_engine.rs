//! Engine throughput harness: pooled vs thread-per-worker live execution.
//!
//! Unlike the Criterion bench (which needs dev-dependencies), this is a
//! plain binary so CI can run it and archive machine-readable numbers:
//!
//! ```text
//! cargo run --release -p scriptflow-bench --bin bench_engine
//! BENCH_ENGINE_QUICK=1 cargo run --release -p scriptflow-bench --bin bench_engine
//! cargo run --release -p scriptflow-bench --bin bench_engine -- --backend both
//! ```
//!
//! Writes `BENCH_engine.json`: tuples/sec for every (workload, mode,
//! parallelism) configuration, including the broadcast-join acceptance
//! workload where `Arc`-shared batches replace per-worker deep clones.
//! Each configuration also carries a per-operator breakdown (tuple
//! counts, busy time, terminal state) plus, in pooled mode, the sampled
//! progress trace from the live observability layer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use scriptflow_bench::backend;
use scriptflow_core::{BackendChoice, BackendKind};
use scriptflow_datakit::codec::Json;
use scriptflow_datakit::{Batch, CmpOp, DataType, Schema, Value};
use scriptflow_workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp};
use scriptflow_workflow::{
    EngineConfig, ExecMode, PartitionStrategy, ResultCache, RunMetrics, TraceJson, Workflow,
    WorkflowBuilder,
};

fn int_batch(n: i64) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int)]);
    Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
}

fn filter_pipeline(n: i64, workers: usize) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), workers);
    let f1 = b.add(
        Arc::new(FilterOp::new("mod3", |t| Ok(t.get_int("id")? % 3 != 0))),
        workers,
    );
    let f2 = b.add(
        Arc::new(FilterOp::new("mod5", |t| Ok(t.get_int("id")? % 5 != 0))),
        workers,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, f1, 0, PartitionStrategy::RoundRobin);
    b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
    b.connect(f2, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

fn broadcast_join(facts: i64, workers: usize) -> Workflow {
    let dim_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
    let dims = Batch::from_rows(
        dim_schema,
        (0..256i64)
            .map(|k| vec![Value::Int(k), Value::Str(format!("d{k}"))])
            .collect(),
    )
    .unwrap();
    let fact_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
    let fact_batch = Batch::from_rows(
        fact_schema,
        (0..facts)
            .map(|i| vec![Value::Int(i), Value::Int(i % 256)])
            .collect(),
    )
    .unwrap();
    let mut b = WorkflowBuilder::new();
    let ds = b.add(Arc::new(ScanOp::new("dims", dims)), 1);
    let fs = b.add(Arc::new(ScanOp::new("facts", fact_batch)), workers);
    let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(ds, join, 0, PartitionStrategy::Broadcast);
    b.connect(fs, join, 1, PartitionStrategy::RoundRobin);
    b.connect(join, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

/// The zone-map acceptance workload: ascending ids with a top-percentile
/// range predicate, so in columnar mode per-batch min/max statistics
/// prove almost every sealed batch empty before a single row is read.
fn selective_filter(n: i64, workers: usize) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), workers);
    let sel = b.add(
        Arc::new(FilterOp::cmp(
            "sel",
            "id",
            CmpOp::Ge,
            Value::Int(n - n / 100 - 1),
        )),
        workers,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, sel, 0, PartitionStrategy::RoundRobin);
    b.connect(sel, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

/// The bounded-memory acceptance workload: a hash join whose build side
/// (every fact row) dwarfs any small memory budget, forcing the grace
/// join to seal build partitions into compressed spill blocks.
fn spill_join(rows: i64, workers: usize) -> Workflow {
    let schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
    let build = Batch::from_rows(
        schema.clone(),
        (0..rows)
            .map(|i| vec![Value::Int(i % 97), Value::Str(format!("b{i}"))])
            .collect(),
    )
    .unwrap();
    let probe = Batch::from_rows(
        schema,
        (0..rows)
            .map(|i| vec![Value::Int(i % 113), Value::Str(format!("p{i}"))])
            .collect(),
    )
    .unwrap();
    let mut b = WorkflowBuilder::new();
    let bs = b.add(Arc::new(ScanOp::new("build", build)), workers);
    let ps = b.add(Arc::new(ScanOp::new("probe", probe)), workers);
    let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
    b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
    b.connect(join, sink, 0, PartitionStrategy::Single);
    b.build().unwrap()
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Pooled => "pooled",
        ExecMode::ThreadPerWorker => "threads",
    }
}

/// Per-operator breakdown of one run, from the executor's metrics.
fn operators_json(metrics: &RunMetrics) -> Json {
    Json::Array(
        metrics
            .operators
            .iter()
            .map(|m| {
                Json::Object(vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("workers".into(), Json::Int(m.workers as i64)),
                    ("inputTuples".into(), Json::Int(m.input_tuples as i64)),
                    ("outputTuples".into(), Json::Int(m.output_tuples as i64)),
                    ("batchesSkipped".into(), Json::Int(m.batches_skipped as i64)),
                    ("spilledBlocks".into(), Json::Int(m.spilled_blocks as i64)),
                    ("cacheHits".into(), Json::Int(m.cache_hits as i64)),
                    ("busySecs".into(), Json::Float(m.busy.as_secs_f64())),
                    ("state".into(), Json::Str(m.state.label().into())),
                ])
            })
            .collect(),
    )
}

/// Best-of-`reps` tuples/sec for one configuration.
#[allow(clippy::too_many_arguments)]
fn measure(
    workload: &str,
    mode: ExecMode,
    columnar: bool,
    memory_budget: Option<usize>,
    parallelism: usize,
    tuples: i64,
    reps: usize,
    build: impl Fn() -> Workflow,
) -> Json {
    let exec = backend::live_executor(backend::LIVE_BATCH)
        .with_mode(mode)
        .with_columnar(columnar)
        .with_memory_budget(memory_budget);
    // Warm-up run (thread spawn, allocator churn) not measured.
    exec.run(&build()).expect("bench workflow must run");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let wf = build();
        let start = Instant::now();
        last = Some(exec.run(&wf).expect("bench workflow must run"));
        best = best.min(start.elapsed().as_secs_f64());
    }
    let last = last.expect("at least one rep");
    let layout = if columnar { "columnar" } else { "row" };
    let skipped = last.pool.as_ref().map_or(0, |p| p.batches_skipped);
    let spilled = last.pool.as_ref().map_or(0, |p| p.spilled_blocks);
    let tps = tuples as f64 / best.max(1e-9);
    println!(
        "{workload:>16}  {:>8}  {layout:>8}  p={parallelism}  {tuples:>8} tuples  {:>10.3} ms  {:>12.0} tuples/s  {skipped:>5} skipped  {spilled:>5} spilled",
        mode_name(mode),
        best * 1e3,
        tps
    );
    let mut fields = vec![
        ("workload".into(), Json::Str(workload.into())),
        ("mode".into(), Json::Str(mode_name(mode).into())),
        ("batchLayout".into(), Json::Str(layout.into())),
        (
            "memoryBudget".into(),
            memory_budget.map_or(Json::Null, |b| Json::Int(b as i64)),
        ),
        ("parallelism".into(), Json::Int(parallelism as i64)),
        ("tuples".into(), Json::Int(tuples)),
        ("elapsed_secs".into(), Json::Float(best)),
        ("tuples_per_sec".into(), Json::Float(tps)),
        ("batchesSkipped".into(), Json::Int(skipped as i64)),
        ("spilledBlocks".into(), Json::Int(spilled as i64)),
        ("operators".into(), operators_json(&last.metrics)),
    ];
    // One extra observed run (untimed) to archive a sampled trace; only
    // the pooled executor has the live observability layer.
    if mode == ExecMode::Pooled {
        let res = exec
            .with_trace(Duration::from_millis(1))
            .run(&build())
            .expect("bench workflow must run");
        fields.push((
            "trace".into(),
            TraceJson::from_trace(&res.trace).into_document(),
        ));
    }
    Json::Object(fields)
}

/// The incremental re-execution acceptance workload: the same DAG run
/// twice on the pooled executor against one shared result cache. The
/// cold leg computes everything and publishes sealed segments
/// (`cacheHits == 0`, `cachePublished > 0`); the warm leg serves its
/// frontier from the cache (`cacheHits > 0`) and skips the rest. A
/// third, budgeted leg replays the cold run against a cache whose byte
/// budget sits just under what the cold leg published, so committing
/// must evict (`cacheEvictions > 0`) and the byte identity
/// `cacheLiveBytes == cachePublished − cacheEvictedBytes` holds —
/// `scripts/ci.sh`'s bench smoke asserts both.
fn measure_edit_rerun(parallelism: usize, tuples: i64) -> Vec<Json> {
    let cache = Arc::new(ResultCache::new());
    let exec = backend::live_executor(backend::LIVE_BATCH).with_result_cache(cache);
    let mut out = Vec::new();
    let mut cold_published = 0u64;
    for leg in ["cold", "warm"] {
        let wf = filter_pipeline(tuples, parallelism);
        let start = Instant::now();
        let res = exec.run(&wf).expect("bench workflow must run");
        let secs = start.elapsed().as_secs_f64();
        let pool = res.pool.as_ref().expect("pooled run reports pool stats");
        if leg == "cold" {
            cold_published = res.cache_published;
        }
        println!(
            "{:>16}  {:>8}  leg={leg:<4}  p={parallelism}  {tuples:>8} tuples  {:>10.3} ms  {:>3} hits  {:>3} misses  {:>9} bytes published",
            "edit_rerun",
            "pooled",
            secs * 1e3,
            pool.cache_hits,
            pool.cache_misses,
            res.cache_published,
        );
        out.push(Json::Object(vec![
            ("workload".into(), Json::Str("edit_rerun".into())),
            ("mode".into(), Json::Str("pooled".into())),
            ("leg".into(), Json::Str(leg.into())),
            ("parallelism".into(), Json::Int(parallelism as i64)),
            ("tuples".into(), Json::Int(tuples)),
            ("elapsed_secs".into(), Json::Float(secs)),
            ("cacheHits".into(), Json::Int(pool.cache_hits as i64)),
            ("cacheMisses".into(), Json::Int(pool.cache_misses as i64)),
            ("cacheBytes".into(), Json::Int(pool.cache_bytes as i64)),
            ("cachePublished".into(), Json::Int(res.cache_published as i64)),
            ("operators".into(), operators_json(&res.metrics)),
        ]));
    }
    // Budgeted leg: a fresh cache one byte short of holding the whole
    // cold publish, so the commit's cost-aware eviction must fire.
    let budget = cold_published.saturating_sub(1).max(1);
    let cache = Arc::new(ResultCache::new().with_byte_budget(budget));
    let exec =
        backend::live_executor(backend::LIVE_BATCH).with_result_cache(Arc::clone(&cache));
    let wf = filter_pipeline(tuples, parallelism);
    let start = Instant::now();
    let res = exec.run(&wf).expect("bench workflow must run");
    let secs = start.elapsed().as_secs_f64();
    let pool = res.pool.as_ref().expect("pooled run reports pool stats");
    println!(
        "{:>16}  {:>8}  leg=budg  p={parallelism}  {tuples:>8} tuples  {:>10.3} ms  {:>3} evictions  {:>9} live / {:>9} budget bytes",
        "edit_rerun",
        "pooled",
        secs * 1e3,
        pool.cache_evictions,
        cache.bytes(),
        budget,
    );
    out.push(Json::Object(vec![
        ("workload".into(), Json::Str("edit_rerun".into())),
        ("mode".into(), Json::Str("pooled".into())),
        ("leg".into(), Json::Str("budgeted".into())),
        ("parallelism".into(), Json::Int(parallelism as i64)),
        ("tuples".into(), Json::Int(tuples)),
        ("elapsed_secs".into(), Json::Float(secs)),
        ("cacheHits".into(), Json::Int(pool.cache_hits as i64)),
        ("cacheMisses".into(), Json::Int(pool.cache_misses as i64)),
        ("cacheBudget".into(), Json::Int(budget as i64)),
        ("cachePublished".into(), Json::Int(res.cache_published as i64)),
        ("cacheEvictions".into(), Json::Int(pool.cache_evictions as i64)),
        ("cacheLiveBytes".into(), Json::Int(cache.bytes() as i64)),
        (
            "cacheEvictedBytes".into(),
            Json::Int(cache.evicted_bytes() as i64),
        ),
        ("operators".into(), operators_json(&res.metrics)),
    ]));
    out
}

/// A virtual-clock reference point for one workload: the same DAG run
/// once on the simulator, reporting virtual seconds instead of measured
/// wall-clock.
fn measure_sim(workload: &str, parallelism: usize, tuples: i64, wf: &Workflow) -> Json {
    let run = backend::engine_of(BackendKind::Sim, EngineConfig::default())
        .run_detached(wf)
        .expect("bench workflow must run");
    let secs = run.seconds();
    println!(
        "{workload:>16}  {:>8}  p={parallelism}  {tuples:>8} tuples  {:>10.3} ms (virtual)",
        "sim",
        secs * 1e3
    );
    Json::Object(vec![
        ("workload".into(), Json::Str(workload.into())),
        ("mode".into(), Json::Str("sim".into())),
        ("parallelism".into(), Json::Int(parallelism as i64)),
        ("tuples".into(), Json::Int(tuples)),
        ("virtual_secs".into(), Json::Float(secs)),
        ("operators".into(), operators_json(&run.metrics)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The engine bench defaults to the live executor (that is what it
    // measures); `--backend both` adds a virtual-clock reference row per
    // workload, `--backend sim` runs only those.
    let choice = match backend::parse_backend_flag(&args) {
        Ok(flag) => flag.unwrap_or(BackendChoice::Live),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let quick = std::env::var("BENCH_ENGINE_QUICK").is_ok();
    let (n, reps) = if quick {
        (5_000i64, 2)
    } else {
        (100_000i64, 5)
    };

    let mut configs = Vec::new();
    if choice.includes(BackendKind::Sim) {
        for &workers in &[1usize, 2, 4, 8] {
            configs.push(measure_sim(
                "filter_pipeline",
                workers,
                n,
                &filter_pipeline(n, workers),
            ));
        }
        configs.push(measure_sim("broadcast_join", 4, n, &broadcast_join(n, 4)));
        configs.push(measure_sim(
            "selective_filter",
            4,
            n,
            &selective_filter(n, 4),
        ));
    }
    if choice.includes(BackendKind::Live) {
        for &workers in &[1usize, 2, 4, 8] {
            for &mode in &[ExecMode::Pooled, ExecMode::ThreadPerWorker] {
                configs.push(measure(
                    "filter_pipeline",
                    mode,
                    false,
                    None,
                    workers,
                    n,
                    reps,
                    || filter_pipeline(n, workers),
                ));
            }
        }
        for &mode in &[ExecMode::Pooled, ExecMode::ThreadPerWorker] {
            configs.push(measure(
                "broadcast_join",
                mode,
                false,
                None,
                4,
                n,
                reps,
                || broadcast_join(n, 4),
            ));
        }
        // Row-vs-columnar acceptance pair: same DAG, same pooled
        // executor, only the batch layout differs. The columnar row must
        // show non-zero batchesSkipped (zone maps pruning the sorted
        // scan) and higher throughput.
        for &columnar in &[false, true] {
            configs.push(measure(
                "selective_filter",
                ExecMode::Pooled,
                columnar,
                None,
                4,
                n,
                reps,
                || selective_filter(n, 4),
            ));
        }
        // Bounded-memory acceptance pair: same grace hash join, once
        // unbounded and once under a budget far below the build side's
        // footprint. The budgeted row must show non-zero spilledBlocks
        // (build partitions sealed to the compressed block store) while
        // both rows produce the same join output.
        let spill_n = n.min(20_000);
        for &budget in &[None, Some(4usize << 10)] {
            configs.push(measure(
                "spill_join",
                ExecMode::Pooled,
                false,
                budget,
                4,
                spill_n,
                reps,
                || spill_join(spill_n, 4),
            ));
        }
        // Incremental re-execution acceptance pair: cold run publishes,
        // warm rerun of the identical DAG serves from sealed segments.
        configs.extend(measure_edit_rerun(4, n));
    }

    let doc = Json::Object(vec![
        ("bench".into(), Json::Str("engine".into())),
        ("quick".into(), Json::Bool(quick)),
        ("backend".into(), Json::Str(choice.label().into())),
        ("configs".into(), Json::Array(configs)),
    ]);
    let path = "BENCH_engine.json";
    match std::fs::write(path, doc.to_string_compact()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
