//! Multi-tenant service harness: closed-loop clients on one shared pool.
//!
//! `N` client threads each submit `M` workflows back-to-back (one
//! outstanding run per client — a classic closed loop) against a single
//! process-wide [`WorkflowService`]. The harness sweeps the tenant
//! count and reports per-submission latency percentiles and aggregate
//! throughput, so the latency-vs-tenant-count curve of the service's
//! weighted-fair time-slicing is machine-readable:
//!
//! ```text
//! cargo run --release -p scriptflow-bench --bin bench_service
//! BENCH_SERVICE_QUICK=1 cargo run --release -p scriptflow-bench --bin bench_service
//! ```
//!
//! Every submission's sink rows are asserted byte-identical to a solo
//! [`LiveExecutor`] anchor of the same DAG — sharing the pool must
//! never change what a run computes, only when it finishes. Results
//! merge into `BENCH_engine.json` under a `"service"` key, preserving
//! whatever `bench_engine` already wrote there.

use std::sync::Arc;
use std::time::{Duration, Instant};

use scriptflow_datakit::codec::Json;
use scriptflow_datakit::{Batch, DataType, Schema, Value};
use scriptflow_workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow_workflow::service::{RunOptions, ServiceConfig, WorkflowService};
use scriptflow_workflow::{LiveExecutor, PartitionStrategy, Workflow, WorkflowBuilder};

/// Concurrent submissions per client: the closed loop's depth.
const SUBMISSIONS_PER_CLIENT: usize = 8;

/// Tenant counts swept for the latency curve.
const TENANT_COUNTS: [usize; 3] = [1, 2, 4];

fn int_batch(n: i64) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int)]);
    Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
}

/// The per-submission workload: scan → mod3 → mod5 → sink, a fresh
/// sink per build so concurrent runs never clash on shared state.
fn pipeline(n: i64, workers: usize) -> (Workflow, SinkHandle) {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), workers);
    let f1 = b.add(
        Arc::new(FilterOp::new("mod3", |t| Ok(t.get_int("id")? % 3 != 0))),
        workers,
    );
    let f2 = b.add(
        Arc::new(FilterOp::new("mod5", |t| Ok(t.get_int("id")? % 5 != 0))),
        workers,
    );
    let sink_op = Arc::new(SinkOp::new("sink"));
    let handle = sink_op.handle();
    let sink = b.add(sink_op, 1);
    b.connect(scan, f1, 0, PartitionStrategy::RoundRobin);
    b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
    b.connect(f2, sink, 0, PartitionStrategy::Single);
    (b.build().unwrap(), handle)
}

fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

/// Index-based percentile over pre-sorted latencies.
fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// One point on the curve: `tenants` closed-loop clients sharing one
/// service, every submission checked against the solo anchor.
fn sweep_point(tenants: usize, rows: i64, anchor: &[String]) -> Json {
    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_max_active_runs(tenants.max(4))
            .with_queue_capacity(tenants * SUBMISSIONS_PER_CLIENT),
    );
    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|c| {
                let svc = &svc;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(SUBMISSIONS_PER_CLIENT);
                    for _ in 0..SUBMISSIONS_PER_CLIENT {
                        let (wf, handle) = pipeline(rows, 2);
                        let t0 = Instant::now();
                        let run = svc
                            .submit(&format!("client-{c}"), &wf, RunOptions::default())
                            .expect("closed loop stays under quota");
                        let report = run.wait();
                        lats.push(t0.elapsed());
                        report.result.expect("bench workflow must run");
                        assert_eq!(
                            sorted_rows(&handle),
                            anchor,
                            "client-{c}: shared-pool rows diverged from the solo anchor"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let stats = svc.service_stats();
    assert_eq!(
        stats.completed_runs as usize,
        tenants * SUBMISSIONS_PER_CLIENT
    );
    assert_eq!(stats.rejected_runs, 0, "closed loop must never be rejected");
    svc.shutdown();

    latencies.sort();
    let p50 = percentile(&latencies, 50).as_secs_f64() * 1e3;
    let p99 = percentile(&latencies, 99).as_secs_f64() * 1e3;
    let submissions = tenants * SUBMISSIONS_PER_CLIENT;
    let tps = (submissions as i64 * rows) as f64 / wall.max(1e-9);
    println!(
        "tenants={tenants}  submissions={submissions:>3}  p50={p50:>9.3} ms  p99={p99:>9.3} ms  {tps:>12.0} tuples/s  anchor rows={}",
        anchor.len()
    );
    Json::Object(vec![
        ("tenants".into(), Json::Int(tenants as i64)),
        ("submissions".into(), Json::Int(submissions as i64)),
        ("p50_ms".into(), Json::Float(p50)),
        ("p99_ms".into(), Json::Float(p99)),
        ("tuples_per_sec".into(), Json::Float(tps)),
        ("rows_per_run".into(), Json::Int(anchor.len() as i64)),
        ("rows_match_anchor".into(), Json::Bool(true)),
    ])
}

/// Merge `service` into `BENCH_engine.json`, preserving any fields an
/// earlier `bench_engine` run wrote; start a fresh document otherwise.
fn merge_into_bench_json(service: Json) -> Json {
    let existing = std::fs::read_to_string("BENCH_engine.json")
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let mut fields = match existing {
        Some(Json::Object(fields)) => fields.into_iter().filter(|(k, _)| k != "service").collect(),
        _ => vec![("bench".into(), Json::Str("engine".into()))],
    };
    fields.push(("service".into(), service));
    Json::Object(fields)
}

fn main() {
    let quick = std::env::var("BENCH_SERVICE_QUICK").is_ok();
    let rows = if quick { 1_500i64 } else { 20_000i64 };

    // Solo anchor: the same DAG once through the plain live executor.
    let (anchor_wf, anchor_sink) = pipeline(rows, 2);
    LiveExecutor::new(256)
        .run(&anchor_wf)
        .expect("anchor workflow must run");
    let anchor = sorted_rows(&anchor_sink);

    let points: Vec<Json> = TENANT_COUNTS
        .iter()
        .map(|&tenants| sweep_point(tenants, rows, &anchor))
        .collect();

    let service = Json::Object(vec![
        ("quick".into(), Json::Bool(quick)),
        (
            "submissions_per_client".into(),
            Json::Int(SUBMISSIONS_PER_CLIENT as i64),
        ),
        ("rows_per_submission".into(), Json::Int(rows)),
        ("anchor_rows".into(), Json::Int(anchor.len() as i64)),
        ("points".into(), Json::Array(points)),
    ]);

    let doc = merge_into_bench_json(service);
    let path = "BENCH_engine.json";
    match std::fs::write(path, doc.to_string_compact()) {
        Ok(()) => println!("merged service results into {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
