//! Print the generated markdown experiment report (the live counterpart
//! of EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p scriptflow-bench --bin report > report.md
//! ```

use scriptflow_study::{registry, report};

fn main() {
    print!("{}", report::generate_markdown(&registry()));
}
