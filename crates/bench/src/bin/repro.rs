//! Regenerate every table and figure of the paper, side by side with the
//! paper's reference numbers.
//!
//! ```text
//! cargo run --release -p scriptflow-bench --bin repro            # everything
//! cargo run --release -p scriptflow-bench --bin repro fig13a    # one artifact
//! cargo run --release -p scriptflow-bench --bin repro --ablations
//! cargo run --release -p scriptflow-bench --bin repro --fault    # §III-A fault comparison
//! cargo run --release -p scriptflow-bench --bin repro --service  # multi-tenant isolation
//! cargo run --release -p scriptflow-bench --bin repro --spill    # bounded-memory extension
//! cargo run --release -p scriptflow-bench --bin repro --cache    # incremental edit-rerun + edit-loop
//! cargo run --release -p scriptflow-bench --bin repro edit-loop  # cross-session edit loop only
//! cargo run --release -p scriptflow-bench --bin repro --csv     # + artifacts/*.csv
//! cargo run --release -p scriptflow-bench --bin repro fig12a --backend both
//! ```
//!
//! `--backend {sim,live,both}` re-runs the workflow side of each
//! experiment on the chosen engine(s): `sim` reports virtual seconds
//! from the calibrated cost model (the default; reproduces the paper),
//! `live` reports measured wall-clock from the pooled executor, and
//! `both` prints the two side by side. Any live selection also runs the
//! four paper tasks on both engines at probe scale and archives each
//! live run's sampled trace under `artifacts/trace_live_<task>.json`.

use scriptflow_bench::{backend, render_side_by_side};
use scriptflow_core::{BackendChoice, BackendKind, Calibration, Table};
use scriptflow_study::{
    ablation_registry, conclusions, fault_registry, incremental_registry, registry,
    service_registry, spill_registry,
};
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::wef::{self, WefParams};
use scriptflow_tasks::BackendRun;

/// Run the four paper tasks at probe scale on every selected backend,
/// print virtual vs wall-clock seconds side by side, and archive the
/// live traces.
fn backend_comparison(choice: BackendChoice) {
    let cal = Calibration::paper();
    let runs: [(&str, Box<dyn Fn(BackendKind) -> BackendRun>); 4] = [
        (
            "dice",
            Box::new(|k| {
                dice::workflow::run_workflow_on(&DiceParams::new(10, 1), &cal, k)
                    .expect("DICE runs")
            }),
        ),
        (
            "wef",
            Box::new(|k| {
                wef::workflow::run_workflow_on(&WefParams::new(80), &cal, k).expect("WEF runs")
            }),
        ),
        (
            "gotta",
            Box::new(|k| {
                gotta::workflow::run_workflow_on(&GottaParams::new(1, 1), &cal, k)
                    .expect("GOTTA runs")
            }),
        ),
        (
            "kge",
            Box::new(|k| {
                kge::workflow::run_workflow_on(&KgeParams::new(600, 1), &cal, k).expect("KGE runs")
            }),
        ),
    ];

    let headers: Vec<String> = std::iter::once("task".to_owned())
        .chain(
            choice
                .kinds()
                .iter()
                .map(|k| format!("{} ({})", k.label(), k.time_unit())),
        )
        .chain(["rows".to_owned(), "skips".to_owned()])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("probe-scale tasks [backend: {choice}]"),
        &header_refs,
    );

    for (task, run_on) in &runs {
        let mut cells = vec![(*task).to_owned()];
        let mut rows = None;
        let mut skips = 0u64;
        for kind in choice.kinds() {
            let run = run_on(*kind);
            cells.push(format!("{:.3}", run.seconds()));
            rows = Some(run.run.output.len());
            skips = skips.max(run.batches_skipped);
            if *kind == BackendKind::Live {
                match backend::archive_live_trace(task, &run.trace) {
                    Ok(path) => eprintln!("archived live trace: {path}"),
                    Err(err) => eprintln!("could not archive live trace for {task}: {err}"),
                }
            }
        }
        cells.push(rows.unwrap_or(0).to_string());
        cells.push(skips.to_string());
        t.push_row(cells);
    }
    println!("{t}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_ablations = args.iter().any(|a| a == "--ablations");
    let want_fault = args.iter().any(|a| a == "--fault");
    let want_service = args.iter().any(|a| a == "--service");
    let want_spill = args.iter().any(|a| a == "--spill");
    let want_cache = args.iter().any(|a| a == "--cache");
    let want_csv = args.iter().any(|a| a == "--csv");
    let backend_flag = match backend::parse_backend_flag(&args) {
        Ok(flag) => flag,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let choice = backend_flag.unwrap_or_default();
    let filter: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip the value of a space-separated `--backend <value>`.
            BackendChoice::parse(a).is_none() || backend_flag.is_none()
        })
        .collect();

    if want_csv {
        let _ = std::fs::create_dir_all("artifacts");
    }

    let reg = registry();
    for e in reg.experiments() {
        let meta = e.meta();
        if !filter.is_empty() && !filter.iter().any(|f| meta.id == f.as_str()) {
            continue;
        }
        let measured = e.run_on(choice);
        let paper = e.paper_reference();
        println!("{}", render_side_by_side(&meta, &measured, &paper));
        if want_csv {
            if let scriptflow_core::Artifact::Figure(fig) = &measured {
                let path = format!("artifacts/{}.csv", meta.id);
                if let Err(err) = std::fs::write(&path, fig.to_csv()) {
                    eprintln!("could not write {path}: {err}");
                } else {
                    println!("wrote {path}");
                }
            }
        }
    }

    if choice.includes(BackendKind::Live) {
        println!("\n################ BACKEND COMPARISON (probe scale) ################\n");
        backend_comparison(choice);
    }

    if filter.is_empty() {
        println!("\n#################### §VI CONCLUSIONS ####################\n");
        let claims = conclusions::evaluate(&Calibration::paper());
        println!("{}", conclusions::as_table(&claims));
    }

    if want_fault || filter.iter().any(|f| f.as_str() == "fault") {
        println!("\n#################### FAULT TOLERANCE ####################\n");
        for e in fault_registry().experiments() {
            let meta = e.meta();
            let measured = e.run_on(choice);
            let paper = e.paper_reference();
            println!("{}", render_side_by_side(&meta, &measured, &paper));
        }
    }

    if want_service || filter.iter().any(|f| f.as_str() == "service") {
        println!("\n#################### MULTI-TENANT SERVICE ####################\n");
        for e in service_registry().experiments() {
            let meta = e.meta();
            let measured = e.run_on(choice);
            let paper = e.paper_reference();
            println!("{}", render_side_by_side(&meta, &measured, &paper));
        }
    }

    if want_spill || filter.iter().any(|f| f.as_str() == "fig13-spill") {
        println!("\n#################### BOUNDED MEMORY (spill) ####################\n");
        for e in spill_registry().experiments() {
            let meta = e.meta();
            let measured = e.run_on(choice);
            let paper = e.paper_reference();
            println!("{}", render_side_by_side(&meta, &measured, &paper));
        }
    }

    if want_cache
        || filter
            .iter()
            .any(|f| f.as_str() == "edit-rerun" || f.as_str() == "edit-loop")
    {
        println!("\n#################### INCREMENTAL RE-EXECUTION ####################\n");
        for e in incremental_registry().experiments() {
            let meta = e.meta();
            // `repro edit-loop` runs just that experiment; `--cache`
            // runs the whole suite (mirrors the ablation filtering).
            if !want_cache && !filter.iter().any(|f| meta.id == f.as_str()) {
                continue;
            }
            let measured = e.run_on(choice);
            let paper = e.paper_reference();
            println!("{}", render_side_by_side(&meta, &measured, &paper));
        }
    }

    if want_ablations || filter.iter().any(|f| f.starts_with("ablate")) {
        println!("\n######################## ABLATIONS ########################\n");
        for e in ablation_registry().experiments() {
            let meta = e.meta();
            if !filter.is_empty()
                && !want_ablations
                && !filter.iter().any(|f| meta.id == f.as_str())
            {
                continue;
            }
            let measured = e.run();
            println!(
                "================================================================\n\
                 {} — {}\n{}\n\n{measured}",
                meta.id, meta.paper_artifact, meta.description
            );
        }
    }
}
