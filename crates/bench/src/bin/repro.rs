//! Regenerate every table and figure of the paper, side by side with the
//! paper's reference numbers.
//!
//! ```text
//! cargo run --release -p scriptflow-bench --bin repro            # everything
//! cargo run --release -p scriptflow-bench --bin repro fig13a    # one artifact
//! cargo run --release -p scriptflow-bench --bin repro --ablations
//! cargo run --release -p scriptflow-bench --bin repro --fault    # §III-A fault comparison
//! cargo run --release -p scriptflow-bench --bin repro --csv     # + artifacts/*.csv
//! ```

use scriptflow_bench::render_side_by_side;
use scriptflow_study::{ablation_registry, conclusions, fault_registry, registry};
use scriptflow_core::Calibration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_ablations = args.iter().any(|a| a == "--ablations");
    let want_fault = args.iter().any(|a| a == "--fault");
    let want_csv = args.iter().any(|a| a == "--csv");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if want_csv {
        let _ = std::fs::create_dir_all("artifacts");
    }

    let reg = registry();
    for e in reg.experiments() {
        let meta = e.meta();
        if !filter.is_empty() && !filter.iter().any(|f| meta.id == f.as_str()) {
            continue;
        }
        let measured = e.run();
        let paper = e.paper_reference();
        println!("{}", render_side_by_side(&meta, &measured, &paper));
        if want_csv {
            if let scriptflow_core::Artifact::Figure(fig) = &measured {
                let path = format!("artifacts/{}.csv", meta.id);
                if let Err(err) = std::fs::write(&path, fig.to_csv()) {
                    eprintln!("could not write {path}: {err}");
                } else {
                    println!("wrote {path}");
                }
            }
        }
    }

    if filter.is_empty() {
        println!("\n#################### §VI CONCLUSIONS ####################\n");
        let claims = conclusions::evaluate(&Calibration::paper());
        println!("{}", conclusions::as_table(&claims));
    }

    if want_fault || filter.iter().any(|f| f.as_str() == "fault") {
        println!("\n#################### FAULT TOLERANCE ####################\n");
        for e in fault_registry().experiments() {
            let meta = e.meta();
            let measured = e.run();
            let paper = e.paper_reference();
            println!("{}", render_side_by_side(&meta, &measured, &paper));
        }
    }

    if want_ablations || filter.iter().any(|f| f.starts_with("ablate")) {
        println!("\n######################## ABLATIONS ########################\n");
        for e in ablation_registry().experiments() {
            let meta = e.meta();
            if !filter.is_empty()
                && !want_ablations
                && !filter.iter().any(|f| meta.id == f.as_str())
            {
                continue;
            }
            let measured = e.run();
            println!(
                "================================================================\n\
                 {} — {}\n{}\n\n{measured}",
                meta.id, meta.paper_artifact, meta.description
            );
        }
    }
}
