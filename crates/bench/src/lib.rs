//! # scriptflow-bench
//!
//! Benchmark harness. Two entry points:
//!
//! * `cargo run --release -p scriptflow-bench --bin repro` — regenerates
//!   **every table and figure** of the paper (Fig. 12a/b, Table I,
//!   Fig. 13a–d, Fig. 14a–c) plus the mechanism ablations, printing each
//!   measured artifact next to the paper's reference numbers.
//! * `cargo bench` — Criterion benches, one target per experiment family,
//!   measuring the wall-clock cost of regenerating each artifact (the
//!   simulated experiments are deterministic, so Criterion tracks harness
//!   performance regressions rather than cluster noise), plus a live
//!   threaded-engine micro-benchmark.

#![warn(missing_docs)]

use scriptflow_core::{Artifact, ExperimentMeta};

pub mod backend {
    //! Backend selection shared by the bench binaries.
    //!
    //! `repro` and `bench_engine` both grew out of ad-hoc
    //! `LiveExecutor::new(...)` construction; this module is the one
    //! place that decides how a CLI `--backend` flag becomes an
    //! [`ExecBackend`] and how a live run's trace is archived.

    use scriptflow_core::{BackendChoice, BackendKind};
    use scriptflow_workflow::{EngineConfig, ExecBackend, LiveExecutor, ProgressTrace, TraceJson};

    /// Batch size the bench binaries hand the live executor.
    pub const LIVE_BATCH: usize = 1024;

    /// The pooled live executor every bench entry point starts from;
    /// callers layer mode/trace options on top.
    pub fn live_executor(batch_size: usize) -> LiveExecutor {
        LiveExecutor::new(batch_size)
    }

    /// An [`ExecBackend`] of `kind`, wired the way the bench binaries
    /// use it (the live side gets [`live_executor`] plus the config's
    /// retry policy, columnar flag, memory budget and result cache —
    /// the only other [`EngineConfig`] knobs with a wall-clock
    /// analogue).
    pub fn engine_of(kind: BackendKind, config: EngineConfig) -> ExecBackend {
        match kind {
            BackendKind::Sim => ExecBackend::sim(config),
            BackendKind::Live => {
                let mut exec = live_executor(config.batch_size.max(1))
                    .with_retry(config.retry.clone())
                    .with_columnar(config.columnar)
                    .with_memory_budget(config.memory_budget);
                if let Some(cache) = config.result_cache.clone() {
                    exec = exec.with_result_cache(cache);
                }
                ExecBackend::from_live(exec)
            }
        }
    }

    /// Extract a `--backend <sim|live|both>` (or `--backend=...`) flag
    /// from a CLI arg list. `Ok(None)` when the flag is absent; `Err`
    /// carries a usage message for unknown values.
    pub fn parse_backend_flag(args: &[String]) -> Result<Option<BackendChoice>, String> {
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let value = if let Some(v) = a.strip_prefix("--backend=") {
                v.to_owned()
            } else if a == "--backend" {
                it.next()
                    .ok_or("--backend requires a value: sim, live or both")?
                    .clone()
            } else {
                continue;
            };
            return match BackendChoice::parse(&value) {
                Some(c) => Ok(Some(c)),
                None => Err(format!(
                    "unknown backend `{value}` (expected sim, live or both)"
                )),
            };
        }
        Ok(None)
    }

    /// Archive a live run's trace as `artifacts/trace_live_<id>.json`;
    /// returns the path written. The JSON round-trips through
    /// [`TraceJson::parse`].
    pub fn archive_live_trace(id: &str, trace: &ProgressTrace) -> std::io::Result<String> {
        std::fs::create_dir_all("artifacts")?;
        let path = format!("artifacts/trace_live_{id}.json");
        std::fs::write(&path, TraceJson::from_trace(trace).to_string_compact())?;
        Ok(path)
    }
}

/// Render one experiment's measured-vs-paper pair as a text block.
pub fn render_side_by_side(meta: &ExperimentMeta, measured: &Artifact, paper: &Artifact) -> String {
    format!(
        "================================================================\n\
         {} — {}\n{}\n\n--- measured ---\n{measured}\n--- paper ---\n{paper}\n",
        meta.id, meta.paper_artifact, meta.description
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_core::Table;

    #[test]
    fn backend_flag_parsing() {
        use scriptflow_core::{BackendChoice, BackendKind};
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(backend::parse_backend_flag(&args(&["fig12a"])), Ok(None));
        assert_eq!(
            backend::parse_backend_flag(&args(&["fig12a", "--backend", "both"])),
            Ok(Some(BackendChoice::Both))
        );
        assert_eq!(
            backend::parse_backend_flag(&args(&["--backend=live"])),
            Ok(Some(BackendChoice::Live))
        );
        assert!(backend::parse_backend_flag(&args(&["--backend", "bogus"])).is_err());
        assert!(backend::parse_backend_flag(&args(&["--backend"])).is_err());
        let cfg = scriptflow_workflow::EngineConfig::default();
        assert_eq!(
            backend::engine_of(BackendKind::Live, cfg.clone()).kind(),
            BackendKind::Live
        );
        assert_eq!(
            backend::engine_of(BackendKind::Sim, cfg).kind(),
            BackendKind::Sim
        );
    }

    #[test]
    fn render_includes_both_sides() {
        let meta = ExperimentMeta {
            id: "x",
            paper_artifact: "Fig. 0",
            description: "d",
        };
        let a = Artifact::Table(Table::new("A", &["h"]));
        let b = Artifact::Table(Table::new("B", &["h"]));
        let text = render_side_by_side(&meta, &a, &b);
        assert!(text.contains("--- measured ---"));
        assert!(text.contains("--- paper ---"));
        assert!(text.contains('A') && text.contains('B'));
    }
}
