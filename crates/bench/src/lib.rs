//! # scriptflow-bench
//!
//! Benchmark harness. Two entry points:
//!
//! * `cargo run --release -p scriptflow-bench --bin repro` — regenerates
//!   **every table and figure** of the paper (Fig. 12a/b, Table I,
//!   Fig. 13a–d, Fig. 14a–c) plus the mechanism ablations, printing each
//!   measured artifact next to the paper's reference numbers.
//! * `cargo bench` — Criterion benches, one target per experiment family,
//!   measuring the wall-clock cost of regenerating each artifact (the
//!   simulated experiments are deterministic, so Criterion tracks harness
//!   performance regressions rather than cluster noise), plus a live
//!   threaded-engine micro-benchmark.

#![warn(missing_docs)]

use scriptflow_core::{Artifact, ExperimentMeta};

/// Render one experiment's measured-vs-paper pair as a text block.
pub fn render_side_by_side(meta: &ExperimentMeta, measured: &Artifact, paper: &Artifact) -> String {
    format!(
        "================================================================\n\
         {} — {}\n{}\n\n--- measured ---\n{measured}\n--- paper ---\n{paper}\n",
        meta.id, meta.paper_artifact, meta.description
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_core::Table;

    #[test]
    fn render_includes_both_sides() {
        let meta = ExperimentMeta {
            id: "x",
            paper_artifact: "Fig. 0",
            description: "d",
        };
        let a = Artifact::Table(Table::new("A", &["h"]));
        let b = Artifact::Table(Table::new("B", &["h"]));
        let text = render_side_by_side(&meta, &a, &b);
        assert!(text.contains("--- measured ---"));
        assert!(text.contains("--- paper ---"));
        assert!(text.contains('A') && text.contains('B'));
    }
}
