//! Execution-backend vocabulary shared by every layer.
//!
//! The reproduction has two ways to execute the same workflow DAG: the
//! deterministic virtual-clock simulator (`SimExecutor`) that produces
//! the paper's figures, and the pooled live executor (`LiveExecutor`)
//! that runs the same operators on real OS threads and measures
//! wall-clock time. [`BackendKind`] names one of those substrates;
//! [`BackendChoice`] is the CLI-facing selection (`sim`, `live`, or
//! `both`) threaded from `repro`/`bench_engine` flags down through the
//! study experiments and the task drivers.
//!
//! This module deliberately lives in `core` (which knows nothing about
//! either executor) so experiment configs can carry a backend choice
//! without depending on the workflow engine.

use std::fmt;

/// One execution substrate for a workflow DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The deterministic virtual-clock simulator: results are exact and
    /// repeatable, `seconds` are *virtual* seconds from the calibrated
    /// cost model.
    Sim,
    /// The pooled live executor: the same operators run on real OS
    /// threads, `seconds` are measured wall-clock on the host.
    Live,
}

impl BackendKind {
    /// Every backend, in reporting order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Live];

    /// Stable lowercase label (`"sim"` / `"live"`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Live => "live",
        }
    }

    /// What the backend's seconds mean, for column headers.
    pub fn time_unit(self) -> &'static str {
        match self {
            BackendKind::Sim => "virtual s",
            BackendKind::Live => "wall-clock s",
        }
    }

    /// Parse a label produced by [`BackendKind::label`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "live" => Some(BackendKind::Live),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A CLI-level backend selection: one backend, or both side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Simulator only (the default everywhere).
    Sim,
    /// Live executor only.
    Live,
    /// Both, reported as paired virtual/wall-clock columns.
    Both,
}

impl BackendChoice {
    /// Parse a `--backend` flag value (`sim` / `live` / `both`).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s {
            "sim" => Some(BackendChoice::Sim),
            "live" => Some(BackendChoice::Live),
            "both" => Some(BackendChoice::Both),
            _ => None,
        }
    }

    /// The backends the choice selects, in reporting order.
    pub fn kinds(self) -> &'static [BackendKind] {
        match self {
            BackendChoice::Sim => &[BackendKind::Sim],
            BackendChoice::Live => &[BackendKind::Live],
            BackendChoice::Both => &BackendKind::ALL,
        }
    }

    /// True if the choice includes `kind`.
    pub fn includes(self, kind: BackendKind) -> bool {
        self.kinds().contains(&kind)
    }

    /// Stable lowercase label (`"sim"` / `"live"` / `"both"`).
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Sim => "sim",
            BackendChoice::Live => "live",
            BackendChoice::Both => "both",
        }
    }
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::Sim
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    #[test]
    fn choice_expands_to_kinds() {
        assert_eq!(BackendChoice::Sim.kinds(), &[BackendKind::Sim]);
        assert_eq!(BackendChoice::Live.kinds(), &[BackendKind::Live]);
        assert_eq!(
            BackendChoice::Both.kinds(),
            &[BackendKind::Sim, BackendKind::Live]
        );
        assert!(BackendChoice::Both.includes(BackendKind::Live));
        assert!(!BackendChoice::Sim.includes(BackendKind::Live));
    }

    #[test]
    fn choice_parses_flag_values() {
        assert_eq!(BackendChoice::parse("both"), Some(BackendChoice::Both));
        assert_eq!(BackendChoice::parse("sim"), Some(BackendChoice::Sim));
        assert_eq!(BackendChoice::parse("live"), Some(BackendChoice::Live));
        assert_eq!(BackendChoice::parse(""), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Sim);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(BackendKind::Live.to_string(), "live");
        assert_eq!(BackendChoice::Both.to_string(), "both");
        assert_eq!(BackendKind::Sim.time_unit(), "virtual s");
        assert_eq!(BackendKind::Live.time_unit(), "wall-clock s");
    }
}
