//! Calibrated cost constants for the task implementations.
//!
//! Every virtual-time constant the four tasks charge lives here, with the
//! paper anchor it was fitted against. The experiment suite reads these
//! through [`Calibration::paper`]; ablation studies perturb individual
//! fields. Times are *Python-calibrated* — the language table scales
//! them for operators implemented in other languages.
//!
//! Fitting notes (all anchors from §IV of the paper):
//!
//! * **DICE** — script is linear at ≈1.18 s/file-pair with ≈3 s fixed
//!   (Fig. 13a: 14.71 s @10 → 239.54 s @200); the workflow's pipelined
//!   stages overlap to ≈0.54 s/pair (10.73 → 107.83).
//! * **WEF** — both paradigms are linear at ≈6.44 s/tweet with no
//!   parallelism (Fig. 13b), Texera ≈2% ahead.
//! * **GOTTA** — script ≈100 s/paragraph with a ≈63 s floor from putting
//!   the 1.59 GB model in the object store and paying a get per task
//!   (Fig. 13d); Texera broadcasts once and lets the kernel use the
//!   machine (≈26 s/paragraph, ≈40 s floor).
//! * **KGE** — script ≈13.4–14.4 ms/product (Fig. 13c); the workflow's
//!   dominant scoring operator plus per-tuple serde makes it ≈28–50%
//!   slower; swapping the Python join pipeline for Scala recovers ≈28 s
//!   at 6.8 k but is hidden behind the scoring bottleneck at 68 k
//!   (Table I).

use scriptflow_simcluster::SimDuration;

/// The complete constant table.
#[derive(Debug, Clone)]
pub struct Calibration {
    // ----- DICE (data wrangling) ------------------------------------
    /// Script: parse one annotation+text file pair (I/O + regex).
    pub dice_script_parse_per_pair: SimDuration,
    /// Script: wrangle (filter/join/link) one file pair's annotations.
    pub dice_script_wrangle_per_pair: SimDuration,
    /// Script: per-pair driver-side result collection (not distributed).
    pub dice_script_collect_per_pair: SimDuration,
    /// Script: fixed driver setup.
    pub dice_script_setup: SimDuration,
    /// Workflow: per-annotation cost of the parse operator.
    pub dice_wf_parse_per_annotation: SimDuration,
    /// Workflow: per-annotation cost of the event-entity join (probe).
    pub dice_wf_join_per_annotation: SimDuration,
    /// Workflow: per-sentence cost of building the link operator's
    /// boundary index (paid by every link worker — sentences broadcast).
    pub dice_wf_link_build_per_sentence: SimDuration,
    /// Workflow: per-annotation cost of probing the link operator.
    pub dice_wf_link_probe_per_annotation: SimDuration,

    // ----- WEF (model training) -------------------------------------
    /// Fine-tuning work per (tweet × epoch × model-head).
    pub wef_work_per_tweet_epoch: SimDuration,
    /// Training epochs (paper-equivalent fine-tuning budget).
    pub wef_epochs: usize,
    /// Fixed cost of loading one pre-trained base model.
    pub wef_model_load: SimDuration,
    /// Multiplier on the workflow engine's training throughput relative
    /// to the notebook (Texera's iterative feeding beats the hand-built
    /// DataLoader by ≈2%, Fig. 13b).
    pub wef_wf_train_discount: f64,

    // ----- GOTTA (one-step inference) --------------------------------
    /// Generation work per question at 1 CPU, before batching
    /// amortization.
    pub gotta_work_per_question: SimDuration,
    /// Questions prepared per paragraph.
    pub gotta_questions_per_paragraph: usize,
    /// Script: fixed driver setup (tokenizer init, model load from disk
    /// before the object-store put).
    pub gotta_script_setup: SimDuration,
    /// Workflow: one-time model load/init per inference worker.
    pub gotta_wf_model_setup: SimDuration,
    /// Kernel batching amortization: total generation work scales as
    /// `P^exponent` in the paragraph count (both paradigms' Fig. 13d
    /// curves are sublinear — larger inputs fill the generation batches
    /// better).
    pub gotta_script_batch_exponent: f64,
    /// Same amortization exponent for the workflow engine's feeding.
    pub gotta_wf_batch_exponent: f64,
    /// Malleable-kernel utilization exponent (PyTorch on `c` CPUs runs at
    /// `c^u` effective parallelism when Texera leaves it unrestricted).
    pub gotta_malleable_utilization: f64,
    /// Serialized model size (the paper's 1.59 GB BART checkpoint).
    pub gotta_model_bytes: u64,

    // ----- KGE (multi-step inference) ---------------------------------
    /// Script per-product cost (vectorized pandas pipeline + scoring).
    pub kge_script_per_product: SimDuration,
    /// Workflow: per-product cost of the dominant scoring operator.
    pub kge_wf_score_per_product: SimDuration,
    /// Workflow: per-product cost of the stock filter operator.
    pub kge_wf_filter_per_product: SimDuration,
    /// Workflow: steady-state per-product cost of the embedding join
    /// (probe side), in Python — the Table I swap target.
    pub kge_wf_join_per_product: SimDuration,
    /// Python join vectorization warm-up: extra per-tuple cost for the
    /// first [`Calibration::kge_py_warmup_tuples`] probes. This is what
    /// makes the Scala swap matter at 6.8k but vanish at 68k (Table I).
    pub kge_py_join_warmup: SimDuration,
    /// Number of probe tuples the warm-up penalty covers.
    pub kge_py_warmup_tuples: u64,
    /// Workflow: per-product cost of the top-k ranking operator.
    pub kge_wf_rank_per_product: SimDuration,
    /// Workflow: per-product cost of the reverse-lookup operator.
    pub kge_wf_lookup_per_product: SimDuration,
    /// Workflow: per-entry cost of building the embedding hash table.
    pub kge_wf_build_per_entry: SimDuration,
    /// Per-worker setup of a Python UDF operator (interpreter boot +
    /// numpy/torch imports).
    pub kge_py_op_setup: SimDuration,
    /// Per-worker setup of a built-in Scala operator.
    pub kge_scala_op_setup: SimDuration,
    /// Embedding vector dimensionality in the synthetic catalogue.
    pub kge_embedding_dim: usize,
    /// Results returned (top-k).
    pub kge_top_k: usize,

    // ----- Engine-level -----------------------------------------------
    /// Per-tuple (de)serialization cost at every workflow operator
    /// boundary, Python side (§III-D runtime overhead).
    pub wf_serde_per_tuple: SimDuration,
    /// Workflow edge batch size.
    pub wf_batch_size: usize,
    /// Workflow pipelining (ablation knob: false inserts a stage barrier
    /// on every edge).
    pub wf_pipelining: bool,
    /// Workflow columnar batch path (zone-map skipping + column
    /// kernels). False for the paper fit — every Fig. 13/Table I anchor
    /// was calibrated against the row engine — so enabling it is an
    /// explicit ablation, not a drift of the baselines.
    pub wf_columnar: bool,
    /// Fraction of the row-path per-tuple compute cost remaining on the
    /// columnar path (simulator discount; fitted against the live
    /// engine's measured row-vs-columnar throughput ratio on the
    /// relational kernels).
    pub wf_columnar_discount: f64,
    /// Memory budget (bytes) for every blocking workflow operator.
    /// `None` for the paper fit — every anchor ran fully in RAM — so a
    /// budget is an explicit ablation (the fig13-spill study), never a
    /// drift of the baselines.
    pub wf_memory_budget: Option<usize>,
    /// Virtual I/O charged per compressed spill block written (flush to
    /// the block store). Inert while `wf_memory_budget` is `None`.
    pub wf_spill_write_per_block: SimDuration,
    /// Virtual I/O charged per spilled block read back (partition joins,
    /// run merges).
    pub wf_spill_read_per_block: SimDuration,
    /// Fingerprint-keyed operator result cache (incremental
    /// re-execution). False for the paper fit — every anchor is a cold,
    /// memoization-free run — so enabling it is an explicit edit-rerun
    /// study, never a drift of the baselines.
    pub wf_result_cache: bool,
    /// Virtual I/O charged per compressed cached block decoded when a
    /// cache hit serves an operator's sealed output. Inert while
    /// `wf_result_cache` is false.
    pub wf_cache_read_per_block: SimDuration,
    /// Byte budget for the result cache; `None` (the paper fit and the
    /// default) leaves it unbounded. When set, the cache evicts
    /// big-and-cheap-to-recompute entries first (cost-aware, priced by
    /// this calibration's per-operator cost model). Inert while
    /// `wf_result_cache` is false.
    pub wf_cache_byte_budget: Option<u64>,
}

impl Calibration {
    /// The constants fitted to the paper's reported numbers.
    pub fn paper() -> Self {
        Calibration {
            dice_script_parse_per_pair: SimDuration::from_millis(430),
            dice_script_wrangle_per_pair: SimDuration::from_millis(635),
            dice_script_collect_per_pair: SimDuration::from_millis(120),
            dice_script_setup: SimDuration::from_millis(2_500),
            dice_wf_parse_per_annotation: SimDuration::from_micros(16_000),
            dice_wf_join_per_annotation: SimDuration::from_micros(11_000),
            dice_wf_link_build_per_sentence: SimDuration::from_micros(25_000),
            dice_wf_link_probe_per_annotation: SimDuration::from_micros(10_000),

            wef_work_per_tweet_epoch: SimDuration::from_micros(533_000),
            wef_epochs: 3,
            wef_model_load: SimDuration::from_millis(1_500),
            wef_wf_train_discount: 0.978,

            gotta_work_per_question: SimDuration::from_micros(47_930_000),
            gotta_questions_per_paragraph: 3,
            gotta_script_setup: SimDuration::from_micros(17_400_000),
            gotta_wf_model_setup: SimDuration::from_secs(30),
            gotta_script_batch_exponent: 0.811,
            gotta_wf_batch_exponent: 0.932,
            gotta_malleable_utilization: 0.72,
            gotta_model_bytes: 1_590_000_000,

            kge_script_per_product: SimDuration::from_micros(14_150),
            kge_wf_score_per_product: SimDuration::from_micros(18_000),
            kge_wf_filter_per_product: SimDuration::from_micros(500),
            kge_wf_join_per_product: SimDuration::from_micros(1_500),
            kge_py_join_warmup: SimDuration::from_micros(18_000),
            kge_py_warmup_tuples: 6_800,
            kge_wf_rank_per_product: SimDuration::from_micros(900),
            kge_wf_lookup_per_product: SimDuration::from_micros(850),
            kge_wf_build_per_entry: SimDuration::from_micros(280),
            kge_py_op_setup: SimDuration::from_micros(2_500_000),
            kge_scala_op_setup: SimDuration::from_micros(200_000),
            kge_embedding_dim: 16,
            kge_top_k: 10,

            wf_serde_per_tuple: SimDuration::from_micros(950),
            wf_batch_size: 400,
            wf_pipelining: true,
            wf_columnar: false,
            wf_columnar_discount: 0.55,
            wf_memory_budget: None,
            wf_spill_write_per_block: SimDuration::from_micros(2_500),
            wf_spill_read_per_block: SimDuration::from_micros(1_200),
            wf_result_cache: false,
            wf_cache_read_per_block: SimDuration::from_micros(900),
            wf_cache_byte_budget: None,
        }
    }

    /// The paper constants with the columnar batch path enabled (the
    /// EXPERIMENTS.md columnar on/off ablation).
    pub fn paper_columnar() -> Self {
        Calibration {
            wf_columnar: true,
            ..Calibration::paper()
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_positive() {
        let c = Calibration::paper();
        assert!(c.dice_script_parse_per_pair > SimDuration::ZERO);
        assert!(c.wef_epochs > 0);
        assert!(c.gotta_questions_per_paragraph > 0);
        assert!(c.kge_embedding_dim > 0);
        assert!(c.kge_top_k > 0);
        assert!(c.wf_batch_size > 0);
        assert!(c.wf_columnar_discount > 0.0 && c.wf_columnar_discount < 1.0);
    }

    #[test]
    fn paper_fit_keeps_memory_unbounded() {
        let c = Calibration::paper();
        assert!(
            c.wf_memory_budget.is_none(),
            "every Fig. 13/Table I anchor ran fully in RAM"
        );
        assert!(c.wf_spill_write_per_block > SimDuration::ZERO);
        assert!(c.wf_spill_read_per_block > SimDuration::ZERO);
    }

    #[test]
    fn paper_fit_keeps_result_cache_off() {
        let c = Calibration::paper();
        assert!(
            !c.wf_result_cache,
            "every Fig. 13/Table I anchor is a cold, memoization-free run"
        );
        assert!(c.wf_cache_read_per_block > SimDuration::ZERO);
        // Serving a cached block must be cheaper than the write/read
        // spill round-trip it replaces, or memoization could never pay.
        assert!(c.wf_cache_read_per_block < c.wf_spill_write_per_block);
    }

    #[test]
    fn paper_fit_keeps_columnar_off() {
        assert!(
            !Calibration::paper().wf_columnar,
            "the Fig. 13/Table I anchors were fitted against the row engine"
        );
        let on = Calibration::paper_columnar();
        assert!(on.wf_columnar);
        assert_eq!(on.wf_batch_size, Calibration::paper().wf_batch_size);
    }

    #[test]
    fn script_kge_anchor_is_close_to_fig13c() {
        // 68k products at the calibrated per-product rate must land near
        // the paper's 975.46 s (within a scheduling-overhead margin).
        let c = Calibration::paper();
        let total = c.kge_script_per_product.as_secs_f64() * 68_000.0;
        assert!((900.0..1050.0).contains(&total), "total {total}");
    }

    #[test]
    fn wef_anchor_matches_fig13b_slope() {
        // ≈6.44 s/tweet over 4 heads: per-head-epoch cost × heads ×
        // epochs should be near that slope.
        let c = Calibration::paper();
        let per_tweet = c.wef_work_per_tweet_epoch.as_secs_f64() * 4.0 * c.wef_epochs as f64;
        assert!((6.0..7.0).contains(&per_tweet), "per tweet {per_tweet}");
    }
}
