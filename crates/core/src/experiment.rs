//! Experiment registry: each experiment regenerates one paper artifact.

use std::fmt;

use crate::backend::BackendChoice;
use crate::report::{Figure, Table};

/// What an experiment produces: a table or a figure.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A table (the paper's Table I).
    Table(Table),
    /// A figure (the paper's Figs. 12–14).
    Figure(Figure),
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Artifact::Table(t) => t.fmt(f),
            Artifact::Figure(g) => g.fmt(f),
        }
    }
}

/// Static description of an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentMeta {
    /// Stable identifier, e.g. `"fig13a"`.
    pub id: &'static str,
    /// The paper artifact it reproduces.
    pub paper_artifact: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// A runnable experiment.
pub trait Experiment {
    /// Static metadata.
    fn meta(&self) -> ExperimentMeta;

    /// Run (deterministically) and produce the artifact.
    fn run(&self) -> Artifact;

    /// Run on a specific execution backend (simulator, live pooled
    /// executor, or both side by side). Experiments that execute
    /// workflows override this to add per-backend columns/series;
    /// backend-independent experiments (e.g. lines-of-code counts) keep
    /// the default, which ignores the choice and delegates to
    /// [`Experiment::run`].
    fn run_on(&self, backend: BackendChoice) -> Artifact {
        let _ = backend;
        self.run()
    }

    /// The paper's own numbers for the same artifact, for side-by-side
    /// reporting in EXPERIMENTS.md.
    fn paper_reference(&self) -> Artifact;
}

/// An ordered collection of experiments.
#[derive(Default)]
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register an experiment.
    pub fn register(&mut self, e: Box<dyn Experiment>) {
        self.experiments.push(e);
    }

    /// All experiments in registration order.
    pub fn experiments(&self) -> &[Box<dyn Experiment>] {
        &self.experiments
    }

    /// Find by id.
    pub fn by_id(&self, id: &str) -> Option<&dyn Experiment> {
        self.experiments
            .iter()
            .find(|e| e.meta().id == id)
            .map(Box::as_ref)
    }

    /// Run every experiment, returning `(meta, measured, reference)`.
    pub fn run_all(&self) -> Vec<(ExperimentMeta, Artifact, Artifact)> {
        self.run_all_on(BackendChoice::Sim)
    }

    /// Run every experiment on an explicit backend choice.
    pub fn run_all_on(&self, backend: BackendChoice) -> Vec<(ExperimentMeta, Artifact, Artifact)> {
        self.experiments
            .iter()
            .map(|e| (e.meta(), e.run_on(backend), e.paper_reference()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    struct Dummy;
    impl Experiment for Dummy {
        fn meta(&self) -> ExperimentMeta {
            ExperimentMeta {
                id: "dummy",
                paper_artifact: "Fig. 0",
                description: "a test experiment",
            }
        }
        fn run(&self) -> Artifact {
            let mut f = Figure::new("dummy", "t", "x", "y");
            f.push_series(Series::new("s", vec![(1.0, 2.0)]));
            Artifact::Figure(f)
        }
        fn paper_reference(&self) -> Artifact {
            self.run()
        }
    }

    #[test]
    fn registry_lookup_and_run() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy));
        assert!(r.by_id("dummy").is_some());
        assert!(r.by_id("nope").is_none());
        let all = r.run_all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0.id, "dummy");
        assert_eq!(all[0].1, all[0].2);
    }

    #[test]
    fn run_on_defaults_to_backend_agnostic_run() {
        assert_eq!(Dummy.run_on(BackendChoice::Both), Dummy.run());
        assert_eq!(Dummy.run_on(BackendChoice::Live), Dummy.run());
    }

    #[test]
    fn artifact_display() {
        let t = Table::new("T", &["a"]);
        assert!(Artifact::Table(t).to_string().contains('T'));
    }
}
