//! Stable content hashing for incremental re-execution.
//!
//! Every workflow operator carries an [`OpFingerprint`]: a 128-bit
//! content address of *what the operator computes* — its spec and
//! parameters, its calibration-relevant configuration (language, cost
//! profile), and, folded in Merkle-style by the DAG builder, the
//! fingerprints of everything upstream. Two nodes with equal
//! fingerprints produce the same output multiset, so a result cache can
//! serve one's sealed output to the other and skip its whole upstream
//! cone.
//!
//! The hash must be **stable across runs and processes** (cache entries
//! outlive the workflow object that produced them), so this module
//! avoids `std`'s randomly-seeded hashers entirely: [`Fingerprinter`]
//! is a pair of independently-seeded FNV-1a streams over a
//! length-prefixed, type-tagged byte encoding.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-stream seed: the FNV offset basis run through one round of
/// splitmix64, giving the high lane an independent starting point.
const HI_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15 ^ FNV_OFFSET;

/// A 128-bit stable fingerprint of an operator's computed content.
///
/// Displayed as 32 lowercase hex digits. Equal fingerprints mean "same
/// spec, same parameters, same upstream inputs" and license a result
/// cache to reuse sealed output across runs, backends, and tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpFingerprint(pub u128);

impl OpFingerprint {
    /// The zero fingerprint: the identity of
    /// [`OpFingerprint::fold_unordered`].
    pub const ZERO: OpFingerprint = OpFingerprint(0);

    /// Combine fingerprints **order-independently** (wrapping add of
    /// each element's lanes). Used for commutative inputs — a union's
    /// ports are interchangeable, so reordering them must not change
    /// the downstream fingerprint.
    pub fn fold_unordered(fps: impl IntoIterator<Item = OpFingerprint>) -> OpFingerprint {
        let mut acc = OpFingerprint::ZERO;
        for fp in fps {
            acc.0 = acc.0.wrapping_add(fp.0);
        }
        acc
    }
}

impl fmt::Display for OpFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental builder of an [`OpFingerprint`].
///
/// Writes are type-tagged and length-prefixed, so `("ab", "c")` and
/// `("a", "bc")` hash differently, and a written `u64` can never
/// collide with a written string of the same bytes.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    lo: u64,
    hi: u64,
}

impl Fingerprinter {
    /// A fresh hasher, domain-separated by `domain` (e.g. `"op"` for a
    /// spec digest, `"node"` for the Merkle fold) so the two kinds of
    /// digest can never alias.
    pub fn new(domain: &str) -> Self {
        let mut h = Fingerprinter {
            lo: FNV_OFFSET,
            hi: HI_OFFSET,
        };
        h.write_str(domain);
        h
    }

    fn mix(&mut self, byte: u8) {
        self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        // The high lane sees each byte rotated so the two lanes stay
        // decorrelated even on runs of equal bytes.
        self.hi = (self.hi ^ u64::from(byte.rotate_left(3))).wrapping_mul(FNV_PRIME);
        self.hi = self.hi.rotate_left(5);
    }

    /// Write raw bytes (length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.mix(b'B');
        for b in (bytes.len() as u64).to_le_bytes() {
            self.mix(b);
        }
        for &b in bytes {
            self.mix(b);
        }
    }

    /// Write a string (length-prefixed UTF-8).
    pub fn write_str(&mut self, s: &str) {
        self.mix(b'S');
        for b in (s.len() as u64).to_le_bytes() {
            self.mix(b);
        }
        for &b in s.as_bytes() {
            self.mix(b);
        }
    }

    /// Write an unsigned integer.
    pub fn write_u64(&mut self, x: u64) {
        self.mix(b'U');
        for b in x.to_le_bytes() {
            self.mix(b);
        }
    }

    /// Write a signed integer.
    pub fn write_i64(&mut self, x: i64) {
        self.mix(b'I');
        for b in x.to_le_bytes() {
            self.mix(b);
        }
    }

    /// Write a `usize` (hashed as `u64`, so 32- and 64-bit builds
    /// agree).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Write a float by its bit pattern (`-0.0` and `0.0` hash
    /// differently; `NaN` hashes by payload — fingerprints demand
    /// bit-stability, not numeric equivalence).
    pub fn write_f64(&mut self, x: f64) {
        self.mix(b'F');
        for b in x.to_bits().to_le_bytes() {
            self.mix(b);
        }
    }

    /// Write a boolean.
    pub fn write_bool(&mut self, x: bool) {
        self.mix(if x { b'T' } else { b'f' });
    }

    /// Fold a previously-computed fingerprint into this one (the
    /// Merkle-link write).
    pub fn write_fingerprint(&mut self, fp: OpFingerprint) {
        self.mix(b'P');
        for b in fp.0.to_le_bytes() {
            self.mix(b);
        }
    }

    /// Seal the digest.
    pub fn finish(&self) -> OpFingerprint {
        // Final avalanche (splitmix64-style) on each lane so short
        // inputs still diffuse into all 128 bits.
        let fin = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        OpFingerprint((u128::from(fin(self.hi)) << 64) | u128::from(fin(self.lo)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_of(f: impl FnOnce(&mut Fingerprinter)) -> OpFingerprint {
        let mut h = Fingerprinter::new("test");
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        let a = fp_of(|h| h.write_str("scan"));
        let b = fp_of(|h| h.write_str("scan"));
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_every_write_kind() {
        let base = fp_of(|h| h.write_str("x"));
        assert_ne!(base, fp_of(|h| h.write_str("y")));
        assert_ne!(fp_of(|h| h.write_u64(1)), fp_of(|h| h.write_u64(2)));
        assert_ne!(fp_of(|h| h.write_i64(1)), fp_of(|h| h.write_u64(1)));
        assert_ne!(fp_of(|h| h.write_f64(0.0)), fp_of(|h| h.write_f64(-0.0)));
        assert_ne!(fp_of(|h| h.write_bool(true)), fp_of(|h| h.write_bool(false)));
        assert_ne!(
            fp_of(|h| h.write_bytes(b"ab")),
            fp_of(|h| h.write_str("ab")),
            "byte and string writes are type-tagged apart"
        );
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let a = fp_of(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let b = fp_of(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn domains_separate() {
        let a = Fingerprinter::new("op").finish();
        let b = Fingerprinter::new("node").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn unordered_fold_commutes_ordered_link_does_not() {
        let x = fp_of(|h| h.write_str("x"));
        let y = fp_of(|h| h.write_str("y"));
        assert_eq!(
            OpFingerprint::fold_unordered([x, y]),
            OpFingerprint::fold_unordered([y, x])
        );
        let xy = fp_of(|h| {
            h.write_fingerprint(x);
            h.write_fingerprint(y);
        });
        let yx = fp_of(|h| {
            h.write_fingerprint(y);
            h.write_fingerprint(x);
        });
        assert_ne!(xy, yx);
    }

    #[test]
    fn display_is_32_hex_digits() {
        let fp = fp_of(|h| h.write_str("scan"));
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(OpFingerprint::ZERO.to_string(), "0".repeat(32));
    }
}
