//! # scriptflow-core
//!
//! The paper's primary contribution, as a library: a framework for
//! comparing data-science platform paradigms.
//!
//! The paper compares the script paradigm (Jupyter + Ray) and the
//! GUI-workflow paradigm (Texera) across four tasks and four experiment
//! families. This crate defines the comparison vocabulary everything
//! else plugs into:
//!
//! * [`paradigm::Paradigm`] — which side of the comparison a run belongs
//!   to,
//! * [`metrics::ExecutionMetrics`] / [`metrics::RunReport`] — the paper's
//!   §IV-B measurement set (total execution time, number of parallel
//!   processes, lines of code, number of operators),
//! * [`report`] — tables and figure series rendered exactly like the
//!   paper's artifacts (Table I, Figs. 12–14),
//! * [`experiment`] — a registry of runnable experiments, each producing
//!   one paper artifact plus the paper's reference numbers for
//!   side-by-side comparison,
//! * [`backend`] — the execution-substrate vocabulary
//!   ([`backend::BackendKind`]: deterministic simulator vs pooled live
//!   executor) that experiment configs and CLI flags thread down to the
//!   task drivers,
//! * [`calibration`] — the single home of every tunable cost constant
//!   used by the task implementations,
//! * [`fingerprint`] — the stable content-hashing vocabulary behind
//!   incremental re-execution (operator memoization keyed by
//!   [`fingerprint::OpFingerprint`]).

#![warn(missing_docs)]

pub mod backend;
pub mod calibration;
pub mod experiment;
pub mod fingerprint;
pub mod metrics;
pub mod paradigm;
pub mod report;

pub use backend::{BackendChoice, BackendKind};
pub use calibration::Calibration;
pub use fingerprint::{Fingerprinter, OpFingerprint};
pub use experiment::{Artifact, Experiment, ExperimentMeta, Registry};
pub use metrics::{ExecutionMetrics, RunReport};
pub use paradigm::Paradigm;
pub use report::{Figure, Series, Table};
