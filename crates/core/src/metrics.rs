//! The paper's performance metrics (§IV-B).

use scriptflow_simcluster::SimTime;

use crate::paradigm::Paradigm;

/// The four metrics the paper reports for every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionMetrics {
    /// Total execution time in (virtual) seconds.
    pub total_seconds: f64,
    /// Number of parallel processes used.
    pub parallel_processes: usize,
    /// Lines of code of the implementation.
    pub lines_of_code: usize,
    /// Number of operators / logically separable subtasks.
    pub operator_count: usize,
}

impl ExecutionMetrics {
    /// Metrics with only a time measurement (the other fields default to
    /// the degenerate single-process, unknown-size values).
    pub fn from_time(makespan: SimTime) -> Self {
        ExecutionMetrics {
            total_seconds: makespan.as_secs_f64(),
            parallel_processes: 1,
            lines_of_code: 0,
            operator_count: 1,
        }
    }
}

/// One comparable run: a task under a paradigm at some configuration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Task name (`DICE`, `WEF`, `GOTTA`, `KGE`).
    pub task: String,
    /// Which paradigm executed.
    pub paradigm: Paradigm,
    /// Human-readable configuration (e.g. `"200 pairs, 4 workers"`).
    pub config: String,
    /// The measurements.
    pub metrics: ExecutionMetrics,
}

impl RunReport {
    /// Speedup of `self` relative to `other` (how many times faster self
    /// finished). > 1 means self won.
    pub fn speedup_vs(&self, other: &RunReport) -> f64 {
        other.metrics.total_seconds / self.metrics.total_seconds
    }

    /// The paper's "% slower" phrasing: how much slower `other` is than
    /// `self`, as a percentage (the paper writes "Texera took X seconds
    /// (N% slower)" meaning the *other* system was N% slower than the
    /// winner).
    pub fn percent_slower(&self, other: &RunReport) -> f64 {
        (other.metrics.total_seconds / self.metrics.total_seconds - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_simcluster::SimTime;

    fn report(paradigm: Paradigm, secs: f64) -> RunReport {
        RunReport {
            task: "KGE".into(),
            paradigm,
            config: "test".into(),
            metrics: ExecutionMetrics {
                total_seconds: secs,
                parallel_processes: 1,
                lines_of_code: 100,
                operator_count: 3,
            },
        }
    }

    #[test]
    fn speedup_math() {
        let fast = report(Paradigm::Workflow, 50.0);
        let slow = report(Paradigm::Script, 100.0);
        assert_eq!(fast.speedup_vs(&slow), 2.0);
        assert_eq!(fast.percent_slower(&slow), 100.0);
        assert_eq!(slow.percent_slower(&fast), -50.0);
    }

    #[test]
    fn from_time() {
        let m = ExecutionMetrics::from_time(SimTime::from_micros(2_500_000));
        assert_eq!(m.total_seconds, 2.5);
        assert_eq!(m.parallel_processes, 1);
    }
}
