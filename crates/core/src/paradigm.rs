//! The two platform paradigms under comparison.

use std::fmt;

/// Which paradigm produced a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Code-based scripts: Jupyter Notebook + Ray in the paper; the
    /// `scriptflow-notebook` + `scriptflow-raysim` engines here.
    Script,
    /// GUI-based workflows: Texera in the paper; the
    /// `scriptflow-workflow` engine here.
    Workflow,
}

impl Paradigm {
    /// Both paradigms, script first (the paper's column order).
    pub const BOTH: [Paradigm; 2] = [Paradigm::Script, Paradigm::Workflow];

    /// The representative system the paper used for this paradigm.
    pub fn paper_system(&self) -> &'static str {
        match self {
            Paradigm::Script => "Jupyter Notebook",
            Paradigm::Workflow => "Texera",
        }
    }
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Paradigm::Script => f.write_str("script"),
            Paradigm::Workflow => f.write_str("workflow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming() {
        assert_eq!(Paradigm::Script.to_string(), "script");
        assert_eq!(Paradigm::Workflow.paper_system(), "Texera");
        assert_eq!(Paradigm::BOTH.len(), 2);
    }
}
