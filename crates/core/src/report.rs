//! Paper-style tables and figures, rendered as text.

use std::fmt;

/// A table like the paper's Table I: headers plus string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// One line series of a figure: `(x, y)` points with a label.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"Jupyter Notebook"`).
    pub label: String,
    /// Data points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// A figure like the paper's Fig. 13: several series over a shared axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier (`"fig13a"`).
    pub id: String,
    /// Caption.
    pub title: String,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Look up a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Export the figure as CSV: one `x` column plus one column per
    /// series (empty cells where a series lacks the x).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup();
        let mut out = String::from(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {}", self.id, self.title)?;
        writeln!(f, "  x: {}, y: {}", self.x_label, self.y_label)?;
        for s in &self.series {
            write!(f, "  {:<24}", s.label)?;
            for (x, y) in &s.points {
                write!(f, " ({x:.6}, {y:.6})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("TABLE I: times", &["config", "6.8K", "68K"]);
        t.push_row(vec!["Scala".into(), "98.67".into(), "1159.82".into()]);
        t.push_row(vec!["Python".into(), "126.28".into(), "1170.57".into()]);
        let text = t.to_string();
        assert!(text.contains("TABLE I"));
        assert!(text.contains("| Scala "));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn series_lookup() {
        let s = Series::new("JN", vec![(10.0, 14.71), (200.0, 239.54)]);
        assert_eq!(s.y_at(10.0), Some(14.71));
        assert_eq!(s.y_at(11.0), None);
    }

    #[test]
    fn figure_csv_aligns_series_by_x() {
        let mut fig = Figure::new("f", "t", "n", "seconds");
        fig.push_series(Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]));
        fig.push_series(Series::new("b", vec![(2.0, 7.0)]));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,7");
    }

    #[test]
    fn figure_roundtrip() {
        let mut fig = Figure::new("fig13a", "DICE scaling", "pairs", "seconds");
        fig.push_series(Series::new("JN", vec![(10.0, 14.7)]));
        fig.push_series(Series::new("Texera", vec![(10.0, 10.7)]));
        assert!(fig.series_by_label("Texera").is_some());
        assert!(fig.to_string().contains("fig13a"));
    }
}
