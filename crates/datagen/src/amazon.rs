//! Amazon-like product catalogue + user knowledge graph (the KGE data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scriptflow_datakit::{Batch, BatchBuilder, DataType, Schema, SchemaRef, Value};
use scriptflow_mlkit::kge::{EmbeddingTable, ReverseLookup};

/// One candidate product.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Product id (the KG entity id).
    pub id: i64,
    /// Display name.
    pub name: String,
    /// Category label.
    pub category: String,
    /// Whether the product is currently available (the KGE filter step
    /// removes out-of-stock candidates).
    pub in_stock: bool,
}

/// A generated catalogue plus the user-side KG vectors.
#[derive(Debug, Clone)]
pub struct AmazonCatalog {
    /// Candidate products.
    pub products: Vec<Product>,
    /// Product embeddings (the 375 MB table of the paper, in miniature).
    pub embeddings: EmbeddingTable,
    /// The target user's embedding.
    pub user_embedding: Vec<f32>,
    /// The "likely to purchase" relation embedding.
    pub relation_embedding: Vec<f32>,
}

const CATEGORIES: [&str; 6] = [
    "Kitchen", "Books", "Electronics", "Garden", "Sports", "Toys",
];
const NOUNS: [&str; 8] = [
    "Espresso Maker",
    "Trail Guide",
    "Noise-Cancelling Headphones",
    "Herb Planter",
    "Yoga Mat",
    "Puzzle Set",
    "Desk Lamp",
    "Water Bottle",
];

impl AmazonCatalog {
    /// Generate `n_products` candidates with `dim`-dimensional
    /// embeddings. Roughly 12% of products are out of stock.
    pub fn generate(n_products: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut products = Vec::with_capacity(n_products);
        for id in 0..n_products {
            let noun = NOUNS[rng.random_range(0..NOUNS.len())];
            let category = CATEGORIES[rng.random_range(0..CATEGORIES.len())];
            products.push(Product {
                id: id as i64,
                name: format!("{noun} #{id}"),
                category: category.to_owned(),
                in_stock: !rng.random_bool(0.12),
            });
        }
        let embeddings = EmbeddingTable::random(dim, 0..n_products as i64, seed ^ 0xE1B);
        let user_embedding = unit_vector(dim, &mut rng);
        let relation_embedding = unit_vector(dim, &mut rng);
        AmazonCatalog {
            products,
            embeddings,
            user_embedding,
            relation_embedding,
        }
    }

    /// In-stock product count.
    pub fn in_stock_count(&self) -> usize {
        self.products.iter().filter(|p| p.in_stock).count()
    }

    /// Reverse id→name lookup table.
    pub fn reverse_lookup(&self) -> ReverseLookup {
        ReverseLookup::from_pairs(self.products.iter().map(|p| (p.id, p.name.clone())))
    }

    /// Schema of [`AmazonCatalog::product_batch`].
    pub fn product_schema() -> SchemaRef {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("category", DataType::Str),
            ("in_stock", DataType::Bool),
        ])
    }

    /// The candidates as one batch.
    pub fn product_batch(&self) -> Batch {
        let mut bb = BatchBuilder::new(Self::product_schema());
        for p in &self.products {
            bb.push_row(vec![
                Value::Int(p.id),
                Value::Str(p.name.clone()),
                Value::Str(p.category.clone()),
                Value::Bool(p.in_stock),
            ])
            .expect("generator rows conform to schema");
        }
        bb.build()
    }

    /// Schema of [`AmazonCatalog::embedding_batch`].
    pub fn embedding_schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int), ("embedding", DataType::List)])
    }

    /// The embedding table as one batch (one row per entity), for tasks
    /// that join products with embeddings relationally.
    pub fn embedding_batch(&self) -> Batch {
        let mut bb = BatchBuilder::new(Self::embedding_schema());
        for p in &self.products {
            let e = self
                .embeddings
                .get(p.id)
                .expect("every product has an embedding");
            bb.push_row(vec![
                Value::Int(p.id),
                Value::List(e.iter().map(|x| Value::Float(f64::from(*x))).collect()),
            ])
            .expect("generator rows conform to schema");
        }
        bb.build()
    }
}

fn unit_vector(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    for x in &mut v {
        *x /= n;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = AmazonCatalog::generate(100, 8, 4);
        let b = AmazonCatalog::generate(100, 8, 4);
        assert_eq!(a.products, b.products);
        assert_eq!(a.user_embedding, b.user_embedding);
    }

    #[test]
    fn stock_mix() {
        let c = AmazonCatalog::generate(1000, 4, 7);
        let in_stock = c.in_stock_count();
        assert!(in_stock > 800 && in_stock < 950, "in_stock = {in_stock}");
    }

    #[test]
    fn every_product_has_embedding() {
        let c = AmazonCatalog::generate(50, 6, 1);
        for p in &c.products {
            assert_eq!(c.embeddings.get(p.id).unwrap().len(), 6);
        }
        assert_eq!(c.embeddings.len(), 50);
    }

    #[test]
    fn reverse_lookup_resolves_names() {
        let c = AmazonCatalog::generate(10, 4, 2);
        let rl = c.reverse_lookup();
        assert_eq!(rl.name(3), Some(c.products[3].name.as_str()));
    }

    #[test]
    fn batches() {
        let c = AmazonCatalog::generate(20, 4, 3);
        assert_eq!(c.product_batch().len(), 20);
        let eb = c.embedding_batch();
        assert_eq!(eb.len(), 20);
        let first = eb.tuples()[0].get("embedding").unwrap().as_list().unwrap();
        assert_eq!(first.len(), 4);
    }
}
