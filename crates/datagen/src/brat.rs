//! Parser for the brat-style `.ann` annotation format the MACCROBAT
//! corpus uses (and our generator renders).
//!
//! Entity lines: `T1<TAB>Type start end<TAB>covered text`
//! Event lines:  `E1<TAB>Type:T3` (or a bare key for trigger-less events)
//!
//! The DICE task's first stage is exactly this parse; having a real
//! parser lets the repository round-trip datasets through files like the
//! paper's pipeline does.

use crate::maccrobat::{Annotation, AnnotationKind, CaseReport, MaccrobatDataset};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BratError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BratError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "brat parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BratError {}

/// Parse one `.ann` file against its report text. Entity spans are
/// validated against the text; event annotations inherit their trigger's
/// span (or stay empty when trigger-less).
pub fn parse_ann_file(ann: &str, text: &str) -> Result<Vec<Annotation>, BratError> {
    let mut annotations: Vec<Annotation> = Vec::new();
    for (idx, line) in ann.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| BratError {
            line: lineno,
            message,
        };
        let (key, rest) = line
            .split_once('\t')
            .ok_or_else(|| err("expected a tab after the key".into()))?;
        if key.starts_with('T') {
            let (meta, covered) = rest
                .split_once('\t')
                .ok_or_else(|| err("entity lines need `Type start end<TAB>text`".into()))?;
            let mut parts = meta.split_whitespace();
            let ann_type = parts
                .next()
                .ok_or_else(|| err("missing entity type".into()))?;
            let start: usize = parts
                .next()
                .ok_or_else(|| err("missing start offset".into()))?
                .parse()
                .map_err(|e| err(format!("bad start offset: {e}")))?;
            let end: usize = parts
                .next()
                .ok_or_else(|| err("missing end offset".into()))?
                .parse()
                .map_err(|e| err(format!("bad end offset: {e}")))?;
            if end < start || end > text.len() {
                return Err(err(format!("span {start}..{end} out of bounds")));
            }
            if &text[start..end] != covered {
                return Err(err(format!(
                    "span text mismatch: file says `{covered}`, text has `{}`",
                    &text[start..end]
                )));
            }
            annotations.push(Annotation {
                key: key.to_owned(),
                ann_type: ann_type.to_owned(),
                kind: AnnotationKind::Entity,
                start,
                end,
                text: covered.to_owned(),
                trigger: None,
            });
        } else if key.starts_with('E') {
            let (ann_type, trigger) = match rest.split_once(':') {
                Some((t, tr)) if tr != "?" => (t.to_owned(), Some(tr.to_owned())),
                Some((t, _)) => (t.to_owned(), None),
                None => (rest.to_owned(), None),
            };
            annotations.push(Annotation {
                key: key.to_owned(),
                ann_type,
                kind: AnnotationKind::Event,
                start: 0,
                end: 0,
                text: String::new(),
                trigger,
            });
        } else {
            return Err(err(format!("unknown annotation key `{key}`")));
        }
    }

    // Resolve event spans through their triggers.
    let spans: Vec<(String, usize, usize, String)> = annotations
        .iter()
        .filter(|a| a.kind == AnnotationKind::Entity)
        .map(|a| (a.key.clone(), a.start, a.end, a.text.clone()))
        .collect();
    for a in &mut annotations {
        if a.kind == AnnotationKind::Event {
            if let Some(trigger) = &a.trigger {
                let (_, start, end, covered) = spans
                    .iter()
                    .find(|(k, ..)| k == trigger)
                    .ok_or(BratError {
                        line: 0,
                        message: format!("event {} references missing trigger {trigger}", a.key),
                    })?;
                a.start = *start;
                a.end = *end;
                a.text = covered.clone();
            }
        }
    }
    Ok(annotations)
}

/// Sentence boundaries recovered from the report text (the generator
/// joins sentences with single spaces after `.`-terminated sentences).
pub fn split_sentences(text: &str) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut start = 0usize;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'.' {
            let end = i + 1;
            bounds.push((start, end));
            // Skip the separating space.
            i = end;
            while i < bytes.len() && bytes[i] == b' ' {
                i += 1;
            }
            start = i;
            continue;
        }
        i += 1;
    }
    if start < text.len() {
        bounds.push((start, text.len()));
    }
    bounds
}

/// Reconstruct a [`CaseReport`] from its two rendered files.
pub fn parse_report(doc_id: i64, txt: &str, ann: &str) -> Result<CaseReport, BratError> {
    Ok(CaseReport {
        doc_id,
        text: txt.to_owned(),
        sentences: split_sentences(txt),
        annotations: parse_ann_file(ann, txt)?,
    })
}

/// Round-trip a whole dataset through its file representations.
pub fn roundtrip(dataset: &MaccrobatDataset) -> Result<MaccrobatDataset, BratError> {
    let reports = dataset
        .reports
        .iter()
        .map(|r| parse_report(r.doc_id, &r.to_txt_file(), &r.to_ann_file()))
        .collect::<Result<_, _>>()?;
    Ok(MaccrobatDataset { reports })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_roundtrips_through_files() {
        let ds = MaccrobatDataset::generate(12, 6, 0xB1A7);
        let back = roundtrip(&ds).expect("roundtrip parses");
        assert_eq!(ds.reports.len(), back.reports.len());
        for (a, b) in ds.reports.iter().zip(&back.reports) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.sentences, b.sentences, "doc {}", a.doc_id);
            assert_eq!(a.annotations, b.annotations, "doc {}", a.doc_id);
        }
    }

    #[test]
    fn entity_parse_validates_spans() {
        let text = "A fever case.";
        let good = "T1\tSign_symptom 2 7\tfever\n";
        let anns = parse_ann_file(good, text).unwrap();
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].text, "fever");

        let mismatch = "T1\tSign_symptom 2 7\tcough\n";
        let err = parse_ann_file(mismatch, text).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");

        let out_of_bounds = "T1\tSign_symptom 2 99\tfever\n";
        assert!(parse_ann_file(out_of_bounds, text).is_err());
    }

    #[test]
    fn event_parse_resolves_triggers() {
        let text = "A fever case.";
        let ann = "T1\tSign_symptom 2 7\tfever\nE1\tClinical_event:T1\nE2\tClinical_event:?\n";
        let anns = parse_ann_file(ann, text).unwrap();
        let e1 = anns.iter().find(|a| a.key == "E1").unwrap();
        assert_eq!(e1.start, 2);
        assert_eq!(e1.text, "fever");
        let e2 = anns.iter().find(|a| a.key == "E2").unwrap();
        assert!(e2.trigger.is_none());
    }

    #[test]
    fn missing_trigger_is_an_error() {
        let text = "A fever case.";
        let ann = "E1\tClinical_event:T9\n";
        let err = parse_ann_file(ann, text).unwrap_err();
        assert!(err.to_string().contains("missing trigger"), "{err}");
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let text = "x.";
        let err = parse_ann_file("T1 no tabs here\n", text).unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_ann_file("T1\tType nonsense 5\tx\n", text).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_ann_file("Z1\twhat\n", text).unwrap_err();
        assert!(err.to_string().contains("unknown annotation key"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "A fever case.";
        let ann = "# comment\n\nT1\tSign_symptom 2 7\tfever\n";
        assert_eq!(parse_ann_file(ann, text).unwrap().len(), 1);
    }

    #[test]
    fn sentence_splitting_matches_generator() {
        let ds = MaccrobatDataset::generate(5, 7, 99);
        for r in &ds.reports {
            assert_eq!(split_sentences(&r.text), r.sentences, "doc {}", r.doc_id);
        }
    }
}
