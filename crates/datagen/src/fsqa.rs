//! Few-shot QA paragraphs with cloze questions (the GOTTA inference
//! data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scriptflow_datakit::{Batch, BatchBuilder, DataType, Schema, SchemaRef, Value};
use scriptflow_mlkit::transformer::ClozeQuestion;

/// One paragraph with its cloze questions.
#[derive(Debug, Clone)]
pub struct FsqaExample {
    /// Paragraph id.
    pub id: i64,
    /// The passage.
    pub paragraph: String,
    /// Cloze questions with gold answers drawn from the passage.
    pub questions: Vec<ClozeQuestion>,
}

/// A generated FSQA dataset.
#[derive(Debug, Clone)]
pub struct FsqaDataset {
    /// The examples.
    pub examples: Vec<FsqaExample>,
}

const SUBJECTS: [&str; 5] = ["patient", "traveler", "student", "engineer", "athlete"];
const SYMPTOMS: [&str; 6] = ["fever", "cough", "fatigue", "rash", "nausea", "headache"];
const TREATMENTS: [&str; 4] = ["antibiotics", "rest", "fluids", "surgery"];
const DURATIONS: [&str; 4] = ["days", "weeks", "months", "hours"];

impl FsqaDataset {
    /// Generate `n_paragraphs` passages with `questions_per_paragraph`
    /// cloze questions each.
    pub fn generate(n_paragraphs: usize, questions_per_paragraph: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::with_capacity(n_paragraphs);
        for id in 0..n_paragraphs {
            let subject = SUBJECTS[rng.random_range(0..SUBJECTS.len())];
            let symptom = SYMPTOMS[rng.random_range(0..SYMPTOMS.len())];
            let treatment = TREATMENTS[rng.random_range(0..TREATMENTS.len())];
            let duration = DURATIONS[rng.random_range(0..DURATIONS.len())];
            let paragraph = format!(
                "The {subject} reported {symptom} lasting several {duration}. \
                 Doctors recommended {treatment} as the first response. \
                 After follow up the {subject} recovered fully."
            );
            // Cloze questions mask one known span each; the context words
            // around the mask appear verbatim in the passage.
            let candidates = [
                (
                    format!("The {subject} reported [MASK] lasting several {duration}."),
                    symptom,
                ),
                (
                    "Doctors recommended [MASK] as the first response.".to_owned(),
                    treatment,
                ),
                (
                    format!("The {subject} reported {symptom} lasting several [MASK]."),
                    duration,
                ),
            ];
            let questions = candidates
                .iter()
                .cycle()
                .take(questions_per_paragraph)
                .map(|(m, a)| ClozeQuestion {
                    masked: m.clone(),
                    answer: (*a).to_owned(),
                })
                .collect();
            examples.push(FsqaExample {
                id: id as i64,
                paragraph,
                questions,
            });
        }
        FsqaDataset { examples }
    }

    /// Total questions across paragraphs.
    pub fn question_count(&self) -> usize {
        self.examples.iter().map(|e| e.questions.len()).sum()
    }

    /// Schema of [`FsqaDataset::question_batch`]: one row per (paragraph,
    /// question).
    pub fn question_schema() -> SchemaRef {
        Schema::of(&[
            ("paragraph_id", DataType::Int),
            ("question_idx", DataType::Int),
            ("paragraph", DataType::Str),
            ("masked", DataType::Str),
            ("answer", DataType::Str),
        ])
    }

    /// All questions as one batch.
    pub fn question_batch(&self) -> Batch {
        let mut bb = BatchBuilder::new(Self::question_schema());
        for e in &self.examples {
            for (qi, q) in e.questions.iter().enumerate() {
                bb.push_row(vec![
                    Value::Int(e.id),
                    Value::Int(qi as i64),
                    Value::Str(e.paragraph.clone()),
                    Value::Str(q.masked.clone()),
                    Value::Str(q.answer.clone()),
                ])
                .expect("generator rows conform to schema");
            }
        }
        bb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_mlkit::ClozeAnswerer;

    #[test]
    fn deterministic() {
        let a = FsqaDataset::generate(4, 3, 9);
        let b = FsqaDataset::generate(4, 3, 9);
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.paragraph, y.paragraph);
            assert_eq!(x.questions, y.questions);
        }
    }

    #[test]
    fn answers_come_from_passage() {
        let ds = FsqaDataset::generate(10, 3, 3);
        for e in &ds.examples {
            for q in &e.questions {
                assert!(
                    e.paragraph.contains(&q.answer),
                    "answer `{}` missing from `{}`",
                    q.answer,
                    e.paragraph
                );
            }
        }
    }

    #[test]
    fn extractive_model_solves_most_questions() {
        // End-to-end sanity: the real ClozeAnswerer must beat random
        // guessing by a wide margin on this data.
        let ds = FsqaDataset::generate(20, 3, 5);
        let model = ClozeAnswerer::new();
        let mut hits = 0usize;
        let mut total = 0usize;
        for e in &ds.examples {
            for q in &e.questions {
                total += 1;
                if model.answer(&e.paragraph, &q.masked) == q.answer {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 2 > total,
            "answerer solved only {hits}/{total} cloze questions"
        );
    }

    #[test]
    fn batch_shape() {
        let ds = FsqaDataset::generate(4, 3, 1);
        let b = ds.question_batch();
        assert_eq!(b.len(), 12);
        assert_eq!(ds.question_count(), 12);
    }
}
