//! # scriptflow-datagen
//!
//! Seeded synthetic datasets with the shape of the paper's four task
//! inputs. The originals (MACCROBAT clinical reports, human-labelled
//! wildfire tweets, FSQA corpora, Amazon product/user knowledge graphs)
//! are gated or proprietary; these generators produce structurally
//! equivalent data that exercises the identical code paths:
//!
//! * [`maccrobat`] — clinical case reports with entity (`T<i>`) and event
//!   (`E<i>`) annotation files whose character offsets really index into
//!   the report text (Fig. 3 of the paper).
//! * [`wildfire`] — tweets labelled with one to four climate framings
//!   (§II-B).
//! * [`fsqa`] — paragraphs with cloze questions and gold answers drawn
//!   from the passage (§II-C).
//! * [`amazon`] — a product catalogue with stock state, a user purchase
//!   relation, and entity names for reverse lookup (§II-D).
//!
//! Every generator takes an explicit seed and is deterministic.

#![warn(missing_docs)]

pub mod amazon;
pub mod brat;
pub mod fsqa;
pub mod maccrobat;
pub mod wildfire;

pub use amazon::{AmazonCatalog, Product};
pub use brat::{parse_ann_file, parse_report, BratError};
pub use fsqa::{FsqaDataset, FsqaExample};
pub use maccrobat::{Annotation, AnnotationKind, CaseReport, MaccrobatDataset};
pub use wildfire::{Tweet, WildfireDataset, FRAMINGS};
