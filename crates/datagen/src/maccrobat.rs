//! MACCROBAT-like clinical case reports with annotation files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scriptflow_datakit::{Batch, BatchBuilder, DataType, Schema, SchemaRef, Value};

/// Annotation category, following the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// Entity annotation (`T<i>`): a typed text span.
    Entity,
    /// Event annotation (`E<i>`): references a trigger entity.
    Event,
}

/// One annotation row of an `.ann` file.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// `T1`, `T2`, … or `E1`, `E2`, …
    pub key: String,
    /// Entity/event type label (`Age`, `Sex`, `Sign_symptom`,
    /// `Clinical_event`, …).
    pub ann_type: String,
    /// Entity vs event.
    pub kind: AnnotationKind,
    /// Character span start in the report text (entities only; events
    /// carry the span of their trigger).
    pub start: usize,
    /// Character span end (exclusive).
    pub end: usize,
    /// The covered text.
    pub text: String,
    /// For events: the key of the trigger entity (`T<i>`).
    pub trigger: Option<String>,
}

/// One case report: free text plus its annotations.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Document id (file stem).
    pub doc_id: i64,
    /// The report text: sentences separated by single spaces.
    pub text: String,
    /// Sentence boundaries: `(start, end)` char offsets into `text`.
    pub sentences: Vec<(usize, usize)>,
    /// All annotations (entities then events).
    pub annotations: Vec<Annotation>,
}

impl CaseReport {
    /// Render the `.txt` file content.
    pub fn to_txt_file(&self) -> String {
        self.text.clone()
    }

    /// Render the `.ann` file content (brat-like format).
    pub fn to_ann_file(&self) -> String {
        let mut out = String::new();
        for a in &self.annotations {
            match a.kind {
                AnnotationKind::Entity => {
                    out.push_str(&format!(
                        "{}\t{} {} {}\t{}\n",
                        a.key, a.ann_type, a.start, a.end, a.text
                    ));
                }
                AnnotationKind::Event => {
                    out.push_str(&format!(
                        "{}\t{}:{}\n",
                        a.key,
                        a.ann_type,
                        a.trigger.as_deref().unwrap_or("?")
                    ));
                }
            }
        }
        out
    }

    /// The sentence index containing char offset `pos`, if any.
    pub fn sentence_of(&self, pos: usize) -> Option<usize> {
        self.sentences
            .iter()
            .position(|(s, e)| *s <= pos && pos < *e)
    }
}

/// A generated dataset of case-report file pairs.
#[derive(Debug, Clone)]
pub struct MaccrobatDataset {
    /// The reports (one per text/annotation file pair).
    pub reports: Vec<CaseReport>,
}

const AGES: [&str; 4] = ["34-yr-old", "52-yr-old", "8-yr-old", "71-yr-old"];
const SEXES: [&str; 2] = ["man", "woman"];
const SYMPTOMS: [&str; 8] = [
    "fever",
    "cough",
    "fatigue",
    "dyspnea",
    "headache",
    "nausea",
    "rash",
    "dizziness",
];
const EVENTS: [&str; 4] = ["presented", "admitted", "discharged", "treated"];
const EVENT_TYPES: [&str; 2] = ["Clinical_event", "Therapeutic_procedure"];

impl MaccrobatDataset {
    /// Generate `n_pairs` file pairs with `sentences_per_report` sentences
    /// each.
    pub fn generate(n_pairs: usize, sentences_per_report: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = (0..n_pairs)
            .map(|doc| Self::generate_report(doc as i64, sentences_per_report, &mut rng))
            .collect();
        MaccrobatDataset { reports }
    }

    fn generate_report(doc_id: i64, n_sentences: usize, rng: &mut StdRng) -> CaseReport {
        let mut text = String::new();
        let mut sentences = Vec::with_capacity(n_sentences);
        let mut annotations: Vec<Annotation> = Vec::new();
        let mut t_counter = 0usize;
        let mut e_counter = 0usize;

        for s in 0..n_sentences {
            let start = text.len();
            if s == 0 {
                // Demographic lead sentence (like the paper's sample).
                let age = AGES[rng.random_range(0..AGES.len())];
                let sex = SEXES[rng.random_range(0..SEXES.len())];
                let event = EVENTS[rng.random_range(0..EVENTS.len())];
                let symptom = SYMPTOMS[rng.random_range(0..SYMPTOMS.len())];

                text.push_str("The patient was a ");
                push_entity(&mut text, &mut annotations, &mut t_counter, "Age", age);
                text.push(' ');
                push_entity(&mut text, &mut annotations, &mut t_counter, "Sex", sex);
                text.push_str(" who ");
                let trigger_key = push_entity(
                    &mut text,
                    &mut annotations,
                    &mut t_counter,
                    "Clinical_event",
                    event,
                );
                text.push_str(" with complaints of ");
                push_entity(
                    &mut text,
                    &mut annotations,
                    &mut t_counter,
                    "Sign_symptom",
                    symptom,
                );
                text.push('.');
                push_event(
                    &mut annotations,
                    &mut e_counter,
                    EVENT_TYPES[rng.random_range(0..EVENT_TYPES.len())],
                    &trigger_key,
                );
            } else {
                let event = EVENTS[rng.random_range(0..EVENTS.len())];
                let symptom = SYMPTOMS[rng.random_range(0..SYMPTOMS.len())];
                text.push_str("Later the patient was ");
                let trigger_key = push_entity(
                    &mut text,
                    &mut annotations,
                    &mut t_counter,
                    "Clinical_event",
                    event,
                );
                text.push_str(" after reporting ");
                push_entity(
                    &mut text,
                    &mut annotations,
                    &mut t_counter,
                    "Sign_symptom",
                    symptom,
                );
                text.push('.');
                // Some events lack a resolvable trigger (the condition the
                // DICE filter step tests for).
                if rng.random_bool(0.8) {
                    push_event(
                        &mut annotations,
                        &mut e_counter,
                        EVENT_TYPES[rng.random_range(0..EVENT_TYPES.len())],
                        &trigger_key,
                    );
                } else {
                    annotations.push(Annotation {
                        key: format!("E{}", {
                            e_counter += 1;
                            e_counter
                        }),
                        ann_type: EVENT_TYPES[rng.random_range(0..EVENT_TYPES.len())].to_owned(),
                        kind: AnnotationKind::Event,
                        start: 0,
                        end: 0,
                        text: String::new(),
                        trigger: None,
                    });
                }
            }
            let end = text.len();
            sentences.push((start, end));
            text.push(' ');
        }
        let text = text.trim_end().to_owned();

        // Events inherit their trigger's span so they can be located.
        let spans: Vec<(String, usize, usize, String)> = annotations
            .iter()
            .filter(|a| a.kind == AnnotationKind::Entity)
            .map(|a| (a.key.clone(), a.start, a.end, a.text.clone()))
            .collect();
        for a in &mut annotations {
            if a.kind == AnnotationKind::Event {
                if let Some(tr) = &a.trigger {
                    if let Some((_, s, e, t)) = spans.iter().find(|(k, ..)| k == tr) {
                        a.start = *s;
                        a.end = *e;
                        a.text = t.clone();
                    }
                }
            }
        }

        CaseReport {
            doc_id,
            text,
            sentences,
            annotations,
        }
    }

    /// Total annotations across reports.
    pub fn annotation_count(&self) -> usize {
        self.reports.iter().map(|r| r.annotations.len()).sum()
    }

    /// Schema of [`MaccrobatDataset::annotation_batch`].
    pub fn annotation_schema() -> SchemaRef {
        Schema::of(&[
            ("doc_id", DataType::Int),
            ("key", DataType::Str),
            ("kind", DataType::Str),
            ("ann_type", DataType::Str),
            ("start", DataType::Int),
            ("end", DataType::Int),
            ("text", DataType::Str),
            ("trigger", DataType::Str),
        ])
    }

    /// All annotations as one batch (one row per annotation).
    ///
    /// Event rows deliberately carry **null** span/text columns: resolving
    /// an event's location through its trigger entity is the DICE task's
    /// join, so the raw input must not leak the answer.
    pub fn annotation_batch(&self) -> Batch {
        let schema = Self::annotation_schema();
        let mut bb = BatchBuilder::new(schema);
        for r in &self.reports {
            for a in &r.annotations {
                let is_entity = a.kind == AnnotationKind::Entity;
                bb.push_row(vec![
                    Value::Int(r.doc_id),
                    Value::Str(a.key.clone()),
                    Value::Str(if is_entity { "T" } else { "E" }.to_owned()),
                    Value::Str(a.ann_type.clone()),
                    if is_entity { Value::Int(a.start as i64) } else { Value::Null },
                    if is_entity { Value::Int(a.end as i64) } else { Value::Null },
                    if is_entity { Value::Str(a.text.clone()) } else { Value::Null },
                    match &a.trigger {
                        Some(t) => Value::Str(t.clone()),
                        None => Value::Null,
                    },
                ])
                .expect("generator rows conform to schema");
            }
        }
        bb.build()
    }

    /// Schema of [`MaccrobatDataset::sentence_batch`].
    pub fn sentence_schema() -> SchemaRef {
        Schema::of(&[
            ("doc_id", DataType::Int),
            ("sent_idx", DataType::Int),
            ("start", DataType::Int),
            ("end", DataType::Int),
            ("sentence", DataType::Str),
        ])
    }

    /// All sentences as one batch (one row per sentence).
    pub fn sentence_batch(&self) -> Batch {
        let schema = Self::sentence_schema();
        let mut bb = BatchBuilder::new(schema);
        for r in &self.reports {
            for (i, (s, e)) in r.sentences.iter().enumerate() {
                bb.push_row(vec![
                    Value::Int(r.doc_id),
                    Value::Int(i as i64),
                    Value::Int(*s as i64),
                    Value::Int(*e as i64),
                    Value::Str(r.text[*s..*e].to_owned()),
                ])
                .expect("generator rows conform to schema");
            }
        }
        bb.build()
    }
}

fn push_entity(
    text: &mut String,
    annotations: &mut Vec<Annotation>,
    t_counter: &mut usize,
    ann_type: &str,
    span_text: &str,
) -> String {
    *t_counter += 1;
    let key = format!("T{t_counter}");
    let start = text.len();
    text.push_str(span_text);
    annotations.push(Annotation {
        key: key.clone(),
        ann_type: ann_type.to_owned(),
        kind: AnnotationKind::Entity,
        start,
        end: start + span_text.len(),
        text: span_text.to_owned(),
        trigger: None,
    });
    key
}

fn push_event(
    annotations: &mut Vec<Annotation>,
    e_counter: &mut usize,
    ann_type: &str,
    trigger: &str,
) {
    *e_counter += 1;
    annotations.push(Annotation {
        key: format!("E{e_counter}"),
        ann_type: ann_type.to_owned(),
        kind: AnnotationKind::Event,
        start: 0,
        end: 0,
        text: String::new(),
        trigger: Some(trigger.to_owned()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = MaccrobatDataset::generate(5, 4, 11);
        let b = MaccrobatDataset::generate(5, 4, 11);
        assert_eq!(a.reports.len(), 5);
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.text, rb.text);
            assert_eq!(ra.annotations, rb.annotations);
        }
        let c = MaccrobatDataset::generate(5, 4, 12);
        assert_ne!(a.reports[0].text, c.reports[0].text);
    }

    #[test]
    fn entity_spans_index_into_text() {
        let ds = MaccrobatDataset::generate(10, 5, 3);
        for r in &ds.reports {
            for a in &r.annotations {
                if a.kind == AnnotationKind::Entity {
                    assert_eq!(&r.text[a.start..a.end], a.text, "doc {}", r.doc_id);
                }
            }
        }
    }

    #[test]
    fn events_reference_existing_triggers() {
        let ds = MaccrobatDataset::generate(10, 5, 3);
        for r in &ds.reports {
            let entity_keys: Vec<&str> = r
                .annotations
                .iter()
                .filter(|a| a.kind == AnnotationKind::Entity)
                .map(|a| a.key.as_str())
                .collect();
            for a in &r.annotations {
                if let Some(tr) = &a.trigger {
                    assert!(entity_keys.contains(&tr.as_str()));
                }
            }
        }
    }

    #[test]
    fn some_events_lack_triggers() {
        let ds = MaccrobatDataset::generate(30, 6, 3);
        let dangling = ds
            .reports
            .iter()
            .flat_map(|r| &r.annotations)
            .filter(|a| a.kind == AnnotationKind::Event && a.trigger.is_none())
            .count();
        assert!(dangling > 0, "the DICE filter needs some dangling events");
    }

    #[test]
    fn sentences_partition_the_text() {
        let ds = MaccrobatDataset::generate(5, 4, 9);
        for r in &ds.reports {
            assert_eq!(r.sentences.len(), 4);
            for w in r.sentences.windows(2) {
                assert!(w[0].1 <= w[1].0);
            }
            // Every entity lands in exactly one sentence.
            for a in &r.annotations {
                if a.kind == AnnotationKind::Entity {
                    assert!(r.sentence_of(a.start).is_some());
                }
            }
        }
    }

    #[test]
    fn batches_have_expected_shape() {
        let ds = MaccrobatDataset::generate(4, 3, 1);
        let ann = ds.annotation_batch();
        assert_eq!(ann.len(), ds.annotation_count());
        let sent = ds.sentence_batch();
        assert_eq!(sent.len(), 4 * 3);
        assert_eq!(
            sent.schema().to_string(),
            "doc_id: Int, sent_idx: Int, start: Int, end: Int, sentence: Str"
        );
    }

    #[test]
    fn ann_file_rendering() {
        let ds = MaccrobatDataset::generate(1, 2, 5);
        let ann = ds.reports[0].to_ann_file();
        assert!(ann.contains("T1\t"));
        assert!(ann.contains("E1\t"));
        let txt = ds.reports[0].to_txt_file();
        assert!(txt.starts_with("The patient was a"));
    }
}
