//! Wildfire tweets with climate framings (the WEF training data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scriptflow_datakit::{Batch, BatchBuilder, DataType, Schema, SchemaRef, Value};

/// The four climate framings of §II-B, in label order.
pub const FRAMINGS: [&str; 4] = [
    "climate_link",      // explicit link between wildfire and climate change
    "climate_action",    // suggests climate actions
    "other_adversity",   // attributes climate change to other adversities
    "not_relevant",      // not relevant
];

/// One labelled tweet.
#[derive(Debug, Clone, PartialEq)]
pub struct Tweet {
    /// Tweet id.
    pub id: i64,
    /// Tweet text.
    pub text: String,
    /// Active framings (1–4 of [`FRAMINGS`]).
    pub framings: Vec<String>,
}

/// A generated tweet dataset.
#[derive(Debug, Clone)]
pub struct WildfireDataset {
    /// The labelled tweets.
    pub tweets: Vec<Tweet>,
}

const FIRES: [&str; 6] = ["Camp", "Dixie", "Caldor", "Kincade", "Glass", "Creek"];

const LINK_PHRASES: [&str; 3] = [
    "this wildfire is climate change in action",
    "hotter summers from climate change feed these wildfires",
    "the link between the fire and global warming is undeniable",
];
const ACTION_PHRASES: [&str; 3] = [
    "we must cut emissions now",
    "vote for climate policy before the next fire season",
    "invest in renewables to stop this cycle",
];
const ADVERSITY_PHRASES: [&str; 3] = [
    "droughts and floods share the same climate cause",
    "heat waves and crop failures are the same story",
    "rising seas will follow the burning hills",
];
const IRRELEVANT_PHRASES: [&str; 3] = [
    "traffic was terrible near the evacuation route",
    "sending hugs to everyone tonight",
    "my favorite cafe finally reopened",
];

impl WildfireDataset {
    /// Generate `n` tweets.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tweets = Vec::with_capacity(n);
        for id in 0..n {
            let fire = FIRES[rng.random_range(0..FIRES.len())];
            let mut framings = Vec::new();
            let mut parts: Vec<String> = vec![format!("{fire} fire update:")];
            // Not-relevant tweets are exclusive; others can combine (the
            // paper: "one to four climate framings").
            if rng.random_bool(0.25) {
                framings.push(FRAMINGS[3].to_owned());
                parts.push(IRRELEVANT_PHRASES[rng.random_range(0..3)].to_owned());
            } else {
                if rng.random_bool(0.7) {
                    framings.push(FRAMINGS[0].to_owned());
                    parts.push(LINK_PHRASES[rng.random_range(0..3)].to_owned());
                }
                if rng.random_bool(0.5) {
                    framings.push(FRAMINGS[1].to_owned());
                    parts.push(ACTION_PHRASES[rng.random_range(0..3)].to_owned());
                }
                if rng.random_bool(0.3) {
                    framings.push(FRAMINGS[2].to_owned());
                    parts.push(ADVERSITY_PHRASES[rng.random_range(0..3)].to_owned());
                }
                if framings.is_empty() {
                    framings.push(FRAMINGS[0].to_owned());
                    parts.push(LINK_PHRASES[rng.random_range(0..3)].to_owned());
                }
            }
            tweets.push(Tweet {
                id: id as i64,
                text: parts.join(" "),
                framings,
            });
        }
        WildfireDataset { tweets }
    }

    /// `(text, labels)` training pairs for
    /// [`scriptflow_mlkit::MultiLabelModel::fit`].
    pub fn training_pairs(&self) -> Vec<(String, Vec<String>)> {
        self.tweets
            .iter()
            .map(|t| (t.text.clone(), t.framings.clone()))
            .collect()
    }

    /// Schema of [`WildfireDataset::batch`].
    pub fn schema() -> SchemaRef {
        Schema::of(&[
            ("id", DataType::Int),
            ("text", DataType::Str),
            ("framings", DataType::List),
        ])
    }

    /// The tweets as one batch.
    pub fn batch(&self) -> Batch {
        let mut bb = BatchBuilder::new(Self::schema());
        for t in &self.tweets {
            bb.push_row(vec![
                Value::Int(t.id),
                Value::Str(t.text.clone()),
                Value::List(
                    t.framings
                        .iter()
                        .map(|f| Value::Str(f.clone()))
                        .collect(),
                ),
            ])
            .expect("generator rows conform to schema");
        }
        bb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = WildfireDataset::generate(100, 5);
        let b = WildfireDataset::generate(100, 5);
        assert_eq!(a.tweets, b.tweets);
        assert_ne!(
            a.tweets[0].text,
            WildfireDataset::generate(100, 6).tweets[0].text
        );
    }

    #[test]
    fn every_tweet_has_one_to_four_framings() {
        let ds = WildfireDataset::generate(500, 2);
        for t in &ds.tweets {
            assert!((1..=4).contains(&t.framings.len()), "{:?}", t.framings);
            for f in &t.framings {
                assert!(FRAMINGS.contains(&f.as_str()));
            }
        }
    }

    #[test]
    fn all_framings_represented() {
        let ds = WildfireDataset::generate(500, 2);
        for f in FRAMINGS {
            assert!(
                ds.tweets.iter().any(|t| t.framings.iter().any(|g| g == f)),
                "framing {f} never generated"
            );
        }
    }

    #[test]
    fn not_relevant_is_exclusive() {
        let ds = WildfireDataset::generate(500, 2);
        for t in &ds.tweets {
            if t.framings.iter().any(|f| f == "not_relevant") {
                assert_eq!(t.framings.len(), 1);
            }
        }
    }

    #[test]
    fn batch_shape() {
        let ds = WildfireDataset::generate(10, 1);
        let b = ds.batch();
        assert_eq!(b.len(), 10);
        assert_eq!(b.tuples()[0].get_int("id").unwrap(), 0);
        assert!(b.tuples()[0].get("framings").unwrap().as_list().is_some());
    }

    #[test]
    fn training_pairs_align() {
        let ds = WildfireDataset::generate(10, 1);
        let pairs = ds.training_pairs();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[3].0, ds.tweets[3].text);
    }
}
