//! Schema-homogeneous groups of tuples.

use std::sync::Arc;

use crate::column::ColumnarBatch;
use crate::error::{DataError, DataResult};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::Value;

/// A group of tuples sharing one schema.
///
/// Batches are the pipelining unit of the workflow engine: Texera moves
/// data between operators in batches whose size the system tunes, which is
/// exactly the knob the paper contrasts with hand-tuned `DataLoader`
/// batching in the notebook (Fig. 10). The simulator charges serialization
/// per batch boundary crossing.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
}

impl Batch {
    /// An empty batch of the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Batch {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Build a batch, verifying every tuple carries the same schema.
    pub fn new(schema: SchemaRef, tuples: Vec<Tuple>) -> DataResult<Self> {
        for t in &tuples {
            if **t.schema() != *schema {
                return Err(DataError::SchemaMismatch {
                    left: schema.to_string(),
                    right: t.schema().to_string(),
                });
            }
        }
        Ok(Batch { schema, tuples })
    }

    /// Build from already-validated tuples without re-walking them.
    ///
    /// [`Batch::new`] re-checks every tuple's schema, which profiling
    /// shows re-walks the whole batch at every operator boundary even
    /// though internal producers (operators whose output schema was
    /// verified at DAG-build time, [`ColumnarBatch::to_batch`], chunk
    /// re-assembly) have already proven conformance. Those paths use
    /// this constructor; the check survives as a `debug_assert`.
    pub fn new_unchecked(schema: SchemaRef, tuples: Vec<Tuple>) -> Self {
        debug_assert!(
            tuples.iter().all(|t| **t.schema() == *schema),
            "new_unchecked requires schema-homogeneous tuples"
        );
        Batch { schema, tuples }
    }

    /// Build from rows of raw values, validating each against the schema.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> DataResult<Self> {
        let mut tuples = Vec::with_capacity(rows.len());
        for row in rows {
            tuples.push(Tuple::new(schema.clone(), row)?);
        }
        Ok(Batch { schema, tuples })
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total wire size of all tuples (serde/network cost accounting).
    pub fn encoded_len(&self) -> usize {
        self.tuples.iter().map(Tuple::encoded_len).sum()
    }

    /// Split into chunks of at most `size` tuples, preserving order.
    ///
    /// This is how the workflow engine re-batches data between operators
    /// with differing tuning.
    pub fn chunks(&self, size: usize) -> Vec<Batch> {
        assert!(size > 0, "chunk size must be positive");
        self.tuples
            .chunks(size)
            .map(|c| Batch {
                schema: self.schema.clone(),
                tuples: c.to_vec(),
            })
            .collect()
    }

    /// Concatenate batches of identical schema.
    pub fn concat(batches: Vec<Batch>) -> DataResult<Batch> {
        let mut iter = batches.into_iter();
        let mut first = match iter.next() {
            Some(b) => b,
            None => {
                return Err(DataError::SchemaMismatch {
                    left: "<no batches>".into(),
                    right: "<no batches>".into(),
                })
            }
        };
        for b in iter {
            if *b.schema != *first.schema {
                return Err(DataError::SchemaMismatch {
                    left: first.schema.to_string(),
                    right: b.schema.to_string(),
                });
            }
            first.tuples.extend(b.tuples);
        }
        Ok(first)
    }

    /// Sorted multiset fingerprint of the batch contents, used by tests to
    /// assert that both paradigms produced the same data regardless of
    /// tuple order (pipelined execution does not preserve global order).
    pub fn fingerprint(&self) -> Vec<String> {
        let mut rows: Vec<String> = self.tuples.iter().map(|t| t.to_string()).collect();
        rows.sort_unstable();
        rows
    }
}

/// An immutable, reference-counted group of tuples.
///
/// This is the zero-copy unit the workflow engine's live executor routes
/// along DAG edges: a broadcast edge (or any multi-consumer fan-out)
/// clones the `Arc`, not the tuples, so every downstream worker reads the
/// same allocation. A consumer that holds the only reference can reclaim
/// the owned tuples without copying via [`SharedBatch::into_tuples`].
///
/// The payload is either row-oriented (`Vec<Tuple>`) or a sealed
/// [`ColumnarBatch`]; the columnar form travels through the scheduler
/// untouched, so a producer's seal (and its statistics) reach the
/// consumer zero-copy. Consumers without a columnar kernel fall back to
/// [`SharedBatch::into_tuples`], which materializes rows on demand.
#[derive(Debug, Clone)]
pub struct SharedBatch {
    payload: SharedPayload,
}

#[derive(Debug, Clone)]
enum SharedPayload {
    Rows(Arc<Vec<Tuple>>),
    Columnar(Arc<ColumnarBatch>),
}

impl SharedBatch {
    /// Wrap owned tuples into a shareable batch (no copy).
    pub fn new(tuples: Vec<Tuple>) -> Self {
        SharedBatch {
            payload: SharedPayload::Rows(Arc::new(tuples)),
        }
    }

    /// Wrap a sealed columnar batch (no copy): its statistics travel
    /// with it to every consumer.
    pub fn from_columnar(batch: ColumnarBatch) -> Self {
        SharedBatch {
            payload: SharedPayload::Columnar(Arc::new(batch)),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.payload {
            SharedPayload::Rows(t) => t.len(),
            SharedPayload::Columnar(c) => c.len(),
        }
    }

    /// True if the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The columnar payload, if this batch carries one.
    pub fn columnar(&self) -> Option<&Arc<ColumnarBatch>> {
        match &self.payload {
            SharedPayload::Columnar(c) => Some(c),
            SharedPayload::Rows(_) => None,
        }
    }

    /// Number of live references to this allocation (diagnostics).
    pub fn ref_count(&self) -> usize {
        match &self.payload {
            SharedPayload::Rows(t) => Arc::strong_count(t),
            SharedPayload::Columnar(c) => Arc::strong_count(c),
        }
    }

    /// Reclaim the owned tuples.
    ///
    /// For row payloads: free when this is the sole reference (the
    /// common case for hash/round-robin routed batches, whose consumer
    /// is unique); clones only when the allocation is still shared
    /// (broadcast edges, where every consumer but the last pays the copy
    /// it actually needs to mutate independently). Columnar payloads
    /// materialize rows.
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self.payload {
            SharedPayload::Rows(tuples) => {
                Arc::try_unwrap(tuples).unwrap_or_else(|shared| (*shared).clone())
            }
            SharedPayload::Columnar(c) => c.to_tuples(),
        }
    }
}

impl From<Vec<Tuple>> for SharedBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        SharedBatch::new(tuples)
    }
}

/// Push-style batch construction.
#[derive(Debug)]
pub struct BatchBuilder {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
}

impl BatchBuilder {
    /// Start an empty builder.
    pub fn new(schema: SchemaRef) -> Self {
        BatchBuilder {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Start with capacity for `n` tuples.
    pub fn with_capacity(schema: SchemaRef, n: usize) -> Self {
        BatchBuilder {
            schema,
            tuples: Vec::with_capacity(n),
        }
    }

    /// Append a pre-built tuple, checking its schema matches.
    pub fn push(&mut self, tuple: Tuple) -> DataResult<()> {
        if **tuple.schema() != *self.schema {
            return Err(DataError::SchemaMismatch {
                left: self.schema.to_string(),
                right: tuple.schema().to_string(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Append a row of raw values, validating against the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> DataResult<()> {
        self.tuples.push(Tuple::new(self.schema.clone(), row)?);
        Ok(())
    }

    /// Number of tuples buffered so far.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Finish into a batch.
    pub fn build(self) -> Batch {
        Batch {
            schema: self.schema,
            tuples: self.tuples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int), ("tag", DataType::Str)])
    }

    fn batch(n: i64) -> Batch {
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::Str(format!("t{i}"))])
            .collect();
        Batch::from_rows(schema(), rows).unwrap()
    }

    #[test]
    fn from_rows_validates() {
        let bad = Batch::from_rows(schema(), vec![vec![Value::Str("x".into()), Value::Null]]);
        assert!(bad.is_err());
        assert_eq!(batch(3).len(), 3);
    }

    #[test]
    fn chunks_preserve_order_and_cover_all() {
        let b = batch(10);
        let cs = b.chunks(3);
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].len(), 3);
        assert_eq!(cs[3].len(), 1);
        let total: usize = cs.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
        let rejoined = Batch::concat(cs).unwrap();
        assert_eq!(rejoined, b);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunks_rejects_zero() {
        batch(1).chunks(0);
    }

    #[test]
    fn concat_checks_schema() {
        let other = Batch::from_rows(
            Schema::of(&[("x", DataType::Int)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(Batch::concat(vec![batch(1), other]).is_err());
        assert!(Batch::concat(vec![]).is_err());
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let a = batch(5);
        let mut tuples = a.tuples().to_vec();
        tuples.reverse();
        let b = Batch::new(schema(), tuples).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.tuples(), b.tuples());
    }

    #[test]
    fn builder_roundtrip() {
        let mut bb = BatchBuilder::with_capacity(schema(), 2);
        assert!(bb.is_empty());
        bb.push_row(vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        bb.push(batch(1).tuples()[0].clone()).unwrap();
        assert_eq!(bb.len(), 2);
        let b = bb.build();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn builder_rejects_foreign_schema() {
        let mut bb = BatchBuilder::new(schema());
        let foreign = Batch::from_rows(
            Schema::of(&[("x", DataType::Int)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(bb.push(foreign.tuples()[0].clone()).is_err());
    }

    #[test]
    fn encoded_len_sums() {
        let b = batch(2);
        let expect: usize = b.tuples().iter().map(Tuple::encoded_len).sum();
        assert_eq!(b.encoded_len(), expect);
    }

    #[test]
    fn shared_batch_shares_and_unwraps() {
        let tuples = batch(4).into_tuples();
        let shared = SharedBatch::new(tuples.clone());
        assert_eq!(shared.len(), 4);
        assert!(!shared.is_empty());
        let second = shared.clone();
        assert_eq!(shared.ref_count(), 2);
        // Shared reference: into_tuples falls back to a clone.
        assert_eq!(second.into_tuples(), tuples);
        // Sole reference: into_tuples reclaims without copying.
        assert_eq!(shared.ref_count(), 1);
        assert_eq!(shared.into_tuples(), tuples);
    }
}
