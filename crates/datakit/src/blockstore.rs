//! Compressed block store for sealed columnar batches.
//!
//! Blocking operators that outgrow their memory budget persist state here:
//! a sealed [`ColumnarBatch`] becomes a [`CompressedBlock`] — a run-length
//! compressed byte payload plus the batch's per-column min/max/null
//! statistics carried into the block header — and a [`BlockAppender`]
//! groups consecutive blocks under a [`SegmentManifest`] holding the block
//! count, row count, byte totals, and the *merged* column statistics
//! (databend's `BlockAppender`/`SegmentInfo` layout). The manifest stats
//! double as a zone map: a probe-side batch whose key range is disjoint
//! from a spilled partition's merged range can skip that partition without
//! decompressing a single block.
//!
//! The value codec is a byte-exact binary encoding (floats round-trip by
//! bit pattern, so NaN and signed zeros survive), and the compressor is a
//! dependency-free PackBits-style RLE. Neither aims to win benchmarks;
//! both are deterministic, which is what the calibrated spill cost model
//! and the exactly-once replay tests rely on.

use std::cmp::Ordering;

use crate::column::{cmp_values, BatchStats, ColStats, ColumnarBatch};
use crate::error::{DataError, DataResult};
use crate::schema::SchemaRef;
use crate::value::Value;

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_LIST: u8 = 6;

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::List(vs) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                encode_value(v, out);
            }
        }
    }
}

fn decode_err(message: impl Into<String>) -> DataError {
    DataError::Decode {
        line: 0,
        message: message.into(),
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> DataResult<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| decode_err("truncated block payload"))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> DataResult<usize> {
    let b = take(buf, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
}

fn decode_value(buf: &[u8], pos: &mut usize) -> DataResult<Value> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(take(buf, pos, 1)?[0] != 0),
        TAG_INT => {
            let b = take(buf, pos, 8)?;
            Value::Int(i64::from_le_bytes(b.try_into().expect("8 bytes")))
        }
        TAG_FLOAT => {
            let b = take(buf, pos, 8)?;
            Value::Float(f64::from_bits(u64::from_le_bytes(
                b.try_into().expect("8 bytes"),
            )))
        }
        TAG_STR => {
            let len = take_u32(buf, pos)?;
            let b = take(buf, pos, len)?;
            Value::Str(
                std::str::from_utf8(b)
                    .map_err(|_| decode_err("invalid utf-8 in string cell"))?
                    .to_owned(),
            )
        }
        TAG_BYTES => {
            let len = take_u32(buf, pos)?;
            Value::Bytes(bytes::Bytes::from(take(buf, pos, len)?.to_vec()))
        }
        TAG_LIST => {
            let len = take_u32(buf, pos)?;
            let mut vs = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                vs.push(decode_value(buf, pos)?);
            }
            Value::List(vs)
        }
        other => return Err(decode_err(format!("unknown value tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// PackBits-style run-length compression
// ---------------------------------------------------------------------------

/// Compress a byte stream with PackBits-style run-length encoding.
///
/// Control byte `n <= 127` copies `n + 1` literal bytes; `n >= 129`
/// repeats the following byte `257 - n` times; `128` is reserved. Runs of
/// three or more identical bytes are folded; everything else is emitted as
/// literal spans of at most 128 bytes.
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 8);
    let mut i = 0;
    while i < raw.len() {
        // Length of the run starting at `i`.
        let mut run = 1;
        while run < 128 && i + run < raw.len() && raw[i + run] == raw[i] {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(raw[i]);
            i += run;
            continue;
        }
        // Literal span: scan until a foldable run begins or we hit 128.
        let start = i;
        i += run;
        while i < raw.len() && i - start < 128 {
            let mut r = 1;
            while r < 3 && i + r < raw.len() && raw[i + r] == raw[i] {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            i += 1;
        }
        let span = (i - start).min(128);
        out.push((span - 1) as u8);
        out.extend_from_slice(&raw[start..start + span]);
        i = start + span;
    }
    out
}

/// Invert [`compress`]. Fails on truncated payloads or the reserved
/// control byte.
pub fn decompress(data: &[u8]) -> DataResult<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut pos = 0;
    while pos < data.len() {
        let control = data[pos];
        pos += 1;
        if control <= 127 {
            let n = control as usize + 1;
            out.extend_from_slice(take(data, &mut pos, n)?);
        } else if control == 128 {
            return Err(decode_err("reserved PackBits control byte 128"));
        } else {
            let n = 257 - control as usize;
            let b = take(data, &mut pos, 1)?[0];
            out.resize(out.len() + n, b);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Blocks, appender, segments
// ---------------------------------------------------------------------------

/// One sealed batch, compressed, with its statistics in the header.
#[derive(Debug, Clone)]
pub struct CompressedBlock {
    schema: SchemaRef,
    rows: usize,
    raw_bytes: usize,
    data: Vec<u8>,
    stats: BatchStats,
}

impl CompressedBlock {
    /// Seal a columnar batch into a compressed block, carrying the batch's
    /// per-column statistics into the block header.
    pub fn seal(batch: &ColumnarBatch) -> CompressedBlock {
        let mut raw = Vec::new();
        for row in batch.to_rows() {
            for v in &row {
                encode_value(v, &mut raw);
            }
        }
        CompressedBlock {
            schema: batch.schema().clone(),
            rows: batch.len(),
            raw_bytes: raw.len(),
            data: compress(&raw),
            stats: batch.stats().clone(),
        }
    }

    /// Decompress and decode back into a columnar batch (statistics are
    /// re-sealed from the decoded rows and match the header).
    pub fn decode(&self) -> DataResult<ColumnarBatch> {
        let raw = decompress(&self.data)?;
        if raw.len() != self.raw_bytes {
            return Err(decode_err(format!(
                "block decompressed to {} bytes, expected {}",
                raw.len(),
                self.raw_bytes
            )));
        }
        let arity = self.schema.arity();
        let mut pos = 0;
        let mut rows = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(decode_value(&raw, &mut pos)?);
            }
            rows.push(row);
        }
        if pos != raw.len() {
            return Err(decode_err("trailing bytes after last row"));
        }
        ColumnarBatch::from_rows(self.schema.clone(), rows)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Uncompressed payload size in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Compressed payload size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Per-column statistics sealed into the block header.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Schema of the stored rows.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

/// Summary of a sealed [`Segment`]: block count, row count, byte totals,
/// and merged per-column statistics (databend's `SegmentInfo` shape).
#[derive(Debug, Clone)]
pub struct SegmentManifest {
    /// Number of blocks in the segment.
    pub block_count: u64,
    /// Total rows across all blocks.
    pub row_count: u64,
    /// Total uncompressed bytes.
    pub raw_bytes: u64,
    /// Total compressed bytes.
    pub compressed_bytes: u64,
    /// Column statistics merged over every block; `None` for an empty
    /// segment.
    pub stats: Option<BatchStats>,
}

impl SegmentManifest {
    /// Merged statistics of column `i`, if the segment is non-empty.
    pub fn column_stats(&self, i: usize) -> Option<&ColStats> {
        self.stats.as_ref().map(|s| s.column(i))
    }
}

/// True when no value in `a`'s `[min, max]` range can equal a value in
/// `b`'s — the zone-map partition-skip rule. Conservative: unknown or
/// incomparable ranges are never disjoint. Null semantics are the
/// caller's: this compares ranges only, and null keys carry no range.
pub fn ranges_disjoint(a: &ColStats, b: &ColStats) -> bool {
    let (Some(amin), Some(amax)) = (&a.min, &a.max) else {
        return false;
    };
    let (Some(bmin), Some(bmax)) = (&b.min, &b.max) else {
        return false;
    };
    matches!(cmp_values(amax, bmin), Some(Ordering::Less))
        || matches!(cmp_values(amin, bmax), Some(Ordering::Greater))
}

/// Accumulates sealed blocks and folds their header statistics into the
/// running segment totals (databend's `BlockAppender` role).
#[derive(Debug, Default)]
pub struct BlockAppender {
    blocks: Vec<CompressedBlock>,
    row_count: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
    merged: Option<BatchStats>,
    /// Columns whose merged range became unknowable (a block held valid
    /// rows but no range, or ranges were incomparable across blocks).
    poisoned: Vec<bool>,
}

impl BlockAppender {
    /// An empty appender; the schema is taken from the first block.
    pub fn new() -> BlockAppender {
        BlockAppender::default()
    }

    /// Seal `batch` into a block, append it, and return the compressed
    /// size of the new block in bytes.
    pub fn append(&mut self, batch: &ColumnarBatch) -> usize {
        let block = CompressedBlock::seal(batch);
        let compressed = block.compressed_bytes();
        self.fold_stats(&block);
        self.row_count += block.rows() as u64;
        self.raw_bytes += block.raw_bytes() as u64;
        self.compressed_bytes += compressed as u64;
        self.blocks.push(block);
        compressed
    }

    fn fold_stats(&mut self, block: &CompressedBlock) {
        let stats = block.stats();
        let Some(merged) = self.merged.as_mut() else {
            self.merged = Some(stats.clone());
            self.poisoned = stats
                .columns
                .iter()
                .map(|c| {
                    let valid = block.rows() as u64 - c.null_count;
                    valid > 0 && (c.min.is_none() || c.max.is_none())
                })
                .collect();
            return;
        };
        for (i, col) in stats.columns.iter().enumerate() {
            let acc = &mut merged.columns[i];
            acc.null_count += col.null_count;
            let valid = block.rows() as u64 - col.null_count;
            if valid == 0 {
                continue; // all-null block: identity for the range fold
            }
            match (&col.min, &col.max) {
                (Some(min), Some(max)) => {
                    if !self.poisoned[i] {
                        match &acc.min {
                            Some(m) => match cmp_values(min, m) {
                                Some(Ordering::Less) => acc.min = Some(min.clone()),
                                Some(_) => {}
                                None => self.poisoned[i] = true,
                            },
                            None => acc.min = Some(min.clone()),
                        }
                    }
                    if !self.poisoned[i] {
                        match &acc.max {
                            Some(m) => match cmp_values(max, m) {
                                Some(Ordering::Greater) => acc.max = Some(max.clone()),
                                Some(_) => {}
                                None => self.poisoned[i] = true,
                            },
                            None => acc.max = Some(max.clone()),
                        }
                    }
                }
                _ => self.poisoned[i] = true,
            }
        }
        for (i, &p) in self.poisoned.iter().enumerate() {
            if p {
                merged.columns[i].min = None;
                merged.columns[i].max = None;
            }
        }
    }

    /// Rows appended so far.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Blocks appended so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Seal the appender into an immutable segment with its manifest.
    pub fn seal(self) -> Segment {
        let mut stats = self.merged;
        if let Some(s) = stats.as_mut() {
            for (i, &p) in self.poisoned.iter().enumerate() {
                if p {
                    s.columns[i].min = None;
                    s.columns[i].max = None;
                }
            }
        }
        Segment {
            manifest: SegmentManifest {
                block_count: self.blocks.len() as u64,
                row_count: self.row_count,
                raw_bytes: self.raw_bytes,
                compressed_bytes: self.compressed_bytes,
                stats,
            },
            blocks: self.blocks,
        }
    }
}

/// An immutable, sealed group of compressed blocks plus its manifest.
#[derive(Debug, Clone)]
pub struct Segment {
    manifest: SegmentManifest,
    blocks: Vec<CompressedBlock>,
}

impl Segment {
    /// The segment manifest.
    pub fn manifest(&self) -> &SegmentManifest {
        &self.manifest
    }

    /// The sealed blocks, in append order.
    pub fn blocks(&self) -> &[CompressedBlock] {
        &self.blocks
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.manifest.row_count == 0
    }

    /// Serialize the segment — schema, manifest, blocks, statistics —
    /// into a self-contained byte image ending in an FNV-1a checksum.
    /// [`Segment::decode`] inverts it exactly; any mutation of the image
    /// (truncation, bit flips, a forged manifest count) fails decoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.manifest.compressed_bytes as usize + 256);
        out.extend_from_slice(SEGMENT_MAGIC);
        let schema = self
            .blocks
            .first()
            .map(|b| b.schema().clone())
            .unwrap_or_else(crate::schema::Schema::empty);
        encode_schema(&schema, &mut out);
        out.extend_from_slice(&self.manifest.block_count.to_le_bytes());
        out.extend_from_slice(&self.manifest.row_count.to_le_bytes());
        out.extend_from_slice(&self.manifest.raw_bytes.to_le_bytes());
        out.extend_from_slice(&self.manifest.compressed_bytes.to_le_bytes());
        encode_opt_stats(self.manifest.stats.as_ref(), &mut out);
        for block in &self.blocks {
            out.extend_from_slice(&(block.rows as u32).to_le_bytes());
            out.extend_from_slice(&(block.raw_bytes as u32).to_le_bytes());
            out.extend_from_slice(&(block.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&block.data);
            encode_opt_stats(Some(&block.stats), &mut out);
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse a byte image produced by [`Segment::encode`], validating the
    /// trailing checksum, the magic header, and every cross-count (block
    /// count, row sums, byte sums) against the embedded manifest. Returns
    /// a [`DataError::Decode`] on any mismatch — callers treat that as a
    /// cache miss, never a panic.
    pub fn decode(buf: &[u8]) -> DataResult<Segment> {
        if buf.len() < SEGMENT_MAGIC.len() + 8 {
            return Err(decode_err("segment image too short"));
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let want = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a64(body) != want {
            return Err(decode_err("segment checksum mismatch"));
        }
        let mut pos = 0;
        if take(body, &mut pos, SEGMENT_MAGIC.len())? != SEGMENT_MAGIC {
            return Err(decode_err("bad segment magic"));
        }
        let schema = decode_schema(body, &mut pos)?;
        let block_count = take_u64(body, &mut pos)?;
        let row_count = take_u64(body, &mut pos)?;
        let raw_bytes = take_u64(body, &mut pos)?;
        let compressed_bytes = take_u64(body, &mut pos)?;
        let stats = decode_opt_stats(body, &mut pos, schema.arity())?;
        // Never trust the manifest's count for preallocation: cap by what
        // the remaining bytes could plausibly hold (each block needs at
        // least its 12-byte header).
        let cap = (block_count as usize).min(body.len().saturating_sub(pos) / 12 + 1);
        let mut blocks = Vec::with_capacity(cap);
        let (mut rows_sum, mut raw_sum, mut comp_sum) = (0u64, 0u64, 0u64);
        for _ in 0..block_count {
            let rows = take_u32(body, &mut pos)?;
            let block_raw = take_u32(body, &mut pos)?;
            let data_len = take_u32(body, &mut pos)?;
            let data = take(body, &mut pos, data_len)?.to_vec();
            let bstats = decode_opt_stats(body, &mut pos, schema.arity())?
                .ok_or_else(|| decode_err("block missing statistics"))?;
            rows_sum += rows as u64;
            raw_sum += block_raw as u64;
            comp_sum += data.len() as u64;
            blocks.push(CompressedBlock {
                schema: schema.clone(),
                rows,
                raw_bytes: block_raw,
                data,
                stats: bstats,
            });
        }
        if pos != body.len() {
            return Err(decode_err("trailing bytes after last block"));
        }
        if rows_sum != row_count || raw_sum != raw_bytes || comp_sum != compressed_bytes {
            return Err(decode_err(format!(
                "segment manifest disagrees with blocks: rows {rows_sum}/{row_count}, \
                 raw {raw_sum}/{raw_bytes}, compressed {comp_sum}/{compressed_bytes}"
            )));
        }
        Ok(Segment {
            manifest: SegmentManifest {
                block_count,
                row_count,
                raw_bytes,
                compressed_bytes,
                stats,
            },
            blocks,
        })
    }
}

// ---------------------------------------------------------------------------
// Segment persistence codec
// ---------------------------------------------------------------------------

/// Magic + version prefix of an encoded segment image.
const SEGMENT_MAGIC: &[u8] = b"SFSEG1";

/// FNV-1a over `bytes` — the trailing integrity checksum of an encoded
/// segment. Deterministic and dependency-free, like the rest of the
/// codec.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn take_u64(buf: &[u8], pos: &mut usize) -> DataResult<u64> {
    let b = take(buf, pos, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn dtype_tag(dt: crate::value::DataType) -> u8 {
    use crate::value::DataType::*;
    match dt {
        Null => TAG_NULL,
        Bool => TAG_BOOL,
        Int => TAG_INT,
        Float => TAG_FLOAT,
        Str => TAG_STR,
        Bytes => TAG_BYTES,
        List => TAG_LIST,
    }
}

fn dtype_from_tag(tag: u8) -> DataResult<crate::value::DataType> {
    use crate::value::DataType::*;
    Ok(match tag {
        TAG_NULL => Null,
        TAG_BOOL => Bool,
        TAG_INT => Int,
        TAG_FLOAT => Float,
        TAG_STR => Str,
        TAG_BYTES => Bytes,
        TAG_LIST => List,
        other => return Err(decode_err(format!("unknown dtype tag {other}"))),
    })
}

fn encode_schema(schema: &SchemaRef, out: &mut Vec<u8>) {
    out.extend_from_slice(&(schema.arity() as u32).to_le_bytes());
    for f in schema.fields() {
        out.extend_from_slice(&(f.name().len() as u32).to_le_bytes());
        out.extend_from_slice(f.name().as_bytes());
        out.push(dtype_tag(f.dtype()));
    }
}

fn decode_schema(buf: &[u8], pos: &mut usize) -> DataResult<SchemaRef> {
    let arity = take_u32(buf, pos)?;
    let mut fields = Vec::with_capacity(arity.min(4096));
    for _ in 0..arity {
        let len = take_u32(buf, pos)?;
        let name = std::str::from_utf8(take(buf, pos, len)?)
            .map_err(|_| decode_err("invalid utf-8 in field name"))?
            .to_owned();
        let dtype = dtype_from_tag(take(buf, pos, 1)?[0])?;
        fields.push(crate::schema::Field::new(name, dtype));
    }
    crate::schema::Schema::new(fields)
        .map(std::sync::Arc::new)
        .map_err(|e| decode_err(format!("invalid persisted schema: {e}")))
}

fn encode_opt_value(v: Option<&Value>, out: &mut Vec<u8>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            encode_value(v, out);
        }
    }
}

fn decode_opt_value(buf: &[u8], pos: &mut usize) -> DataResult<Option<Value>> {
    match take(buf, pos, 1)?[0] {
        0 => Ok(None),
        1 => Ok(Some(decode_value(buf, pos)?)),
        other => Err(decode_err(format!("bad option tag {other}"))),
    }
}

fn encode_opt_stats(stats: Option<&BatchStats>, out: &mut Vec<u8>) {
    let Some(stats) = stats else {
        out.push(0);
        return;
    };
    out.push(1);
    out.extend_from_slice(&(stats.columns.len() as u32).to_le_bytes());
    for c in &stats.columns {
        encode_opt_value(c.min.as_ref(), out);
        encode_opt_value(c.max.as_ref(), out);
        out.extend_from_slice(&c.null_count.to_le_bytes());
    }
}

fn decode_opt_stats(
    buf: &[u8],
    pos: &mut usize,
    arity: usize,
) -> DataResult<Option<BatchStats>> {
    match take(buf, pos, 1)?[0] {
        0 => Ok(None),
        1 => {
            let cols = take_u32(buf, pos)?;
            if cols != arity {
                return Err(decode_err(format!(
                    "statistics cover {cols} columns, schema has {arity}"
                )));
            }
            let mut columns = Vec::with_capacity(cols.min(4096));
            for _ in 0..cols {
                let min = decode_opt_value(buf, pos)?;
                let max = decode_opt_value(buf, pos)?;
                let null_count = take_u64(buf, pos)?;
                columns.push(ColStats {
                    min,
                    max,
                    null_count,
                });
            }
            Ok(Some(BatchStats { columns }))
        }
        other => Err(decode_err(format!("bad stats tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::DataType;

    fn batch(rows: &[(i64, &str, f64)]) -> ColumnarBatch {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ]);
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(i, n, s)| {
                Tuple::new(
                    schema.clone(),
                    vec![Value::Int(*i), Value::Str((*n).into()), Value::Float(*s)],
                )
                .unwrap()
            })
            .collect();
        ColumnarBatch::from_tuples(schema, &tuples)
    }

    #[test]
    fn packbits_roundtrip_with_runs_and_literals() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![1, 2, 3],
            vec![0; 1000],
            (0..=255u8).collect(),
            [vec![9u8; 200], (0..100u8).collect(), vec![9u8; 2]].concat(),
        ];
        for raw in cases {
            let packed = compress(&raw);
            assert_eq!(decompress(&packed).unwrap(), raw);
        }
    }

    #[test]
    fn packbits_compresses_runs() {
        let raw = vec![42u8; 10_000];
        let packed = compress(&raw);
        assert!(packed.len() < raw.len() / 10);
    }

    #[test]
    fn decompress_rejects_reserved_control() {
        assert!(decompress(&[128]).is_err());
        assert!(decompress(&[5, 1, 2]).is_err()); // truncated literal span
    }

    #[test]
    fn block_roundtrip_preserves_rows_and_stats() {
        let b = batch(&[(3, "c", 0.5), (1, "a", -2.0), (2, "b", f64::MAX)]);
        let block = CompressedBlock::seal(&b);
        assert_eq!(block.rows(), 3);
        let decoded = block.decode().unwrap();
        assert_eq!(decoded.to_rows(), b.to_rows());
        assert_eq!(decoded.stats(), block.stats());
    }

    #[test]
    fn block_roundtrip_preserves_float_bit_patterns() {
        let schema = Schema::of(&[("x", DataType::Float)]);
        let rows = vec![
            vec![Value::Float(f64::NAN)],
            vec![Value::Float(-0.0)],
            vec![Value::Float(f64::INFINITY)],
            vec![Value::Null],
        ];
        let b = ColumnarBatch::from_rows(schema, rows).unwrap();
        let decoded = CompressedBlock::seal(&b).decode().unwrap();
        let out = decoded.to_rows();
        match &out[0][0] {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
        match &out[1][0] {
            Value::Float(x) => assert!(x.to_bits() == (-0.0f64).to_bits()),
            other => panic!("expected -0.0, got {other:?}"),
        }
        assert_eq!(out[2][0], Value::Float(f64::INFINITY));
        assert!(out[3][0].is_null());
    }

    #[test]
    fn appender_merges_stats_across_blocks() {
        let mut app = BlockAppender::new();
        app.append(&batch(&[(5, "m", 1.0), (9, "z", 2.0)]));
        app.append(&batch(&[(1, "a", -3.0)]));
        let seg = app.seal();
        let m = seg.manifest();
        assert_eq!(m.block_count, 2);
        assert_eq!(m.row_count, 3);
        assert!(m.raw_bytes >= m.row_count * 3);
        let id = m.column_stats(0).unwrap();
        assert_eq!(id.min, Some(Value::Int(1)));
        assert_eq!(id.max, Some(Value::Int(9)));
        assert_eq!(id.null_count, 0);
        let name = m.column_stats(1).unwrap();
        assert_eq!(name.min, Some(Value::Str("a".into())));
        assert_eq!(name.max, Some(Value::Str("z".into())));
    }

    #[test]
    fn nan_block_poisons_merged_range_but_keeps_null_counts() {
        let schema = Schema::of(&[("x", DataType::Float)]);
        let clean = ColumnarBatch::from_rows(
            schema.clone(),
            vec![vec![Value::Float(1.0)], vec![Value::Null]],
        )
        .unwrap();
        let nan =
            ColumnarBatch::from_rows(schema, vec![vec![Value::Float(f64::NAN)]]).unwrap();
        let mut app = BlockAppender::new();
        app.append(&clean);
        app.append(&nan);
        let seg = app.seal();
        let st = seg.manifest().column_stats(0).unwrap();
        assert_eq!(st.min, None);
        assert_eq!(st.max, None);
        assert_eq!(st.null_count, 1);
    }

    #[test]
    fn all_null_block_is_identity_for_range_merge() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let vals =
            ColumnarBatch::from_rows(schema.clone(), vec![vec![Value::Int(4)]]).unwrap();
        let nulls = ColumnarBatch::from_rows(schema, vec![vec![Value::Null]]).unwrap();
        let mut app = BlockAppender::new();
        app.append(&vals);
        app.append(&nulls);
        let seg = app.seal();
        let st = seg.manifest().column_stats(0).unwrap();
        assert_eq!(st.min, Some(Value::Int(4)));
        assert_eq!(st.max, Some(Value::Int(4)));
        assert_eq!(st.null_count, 1);
    }

    #[test]
    fn empty_segment_has_no_stats() {
        let seg = BlockAppender::new().seal();
        assert!(seg.is_empty());
        assert_eq!(seg.manifest().block_count, 0);
        assert!(seg.manifest().stats.is_none());
    }

    #[test]
    fn segment_image_roundtrips_blocks_manifest_and_stats() {
        let mut app = BlockAppender::new();
        app.append(&batch(&[(5, "m", 1.0), (9, "z", 2.0)]));
        app.append(&batch(&[(1, "a", -3.0)]));
        let seg = app.seal();
        let image = seg.encode();
        let back = Segment::decode(&image).unwrap();
        let (m, n) = (seg.manifest(), back.manifest());
        assert_eq!(m.block_count, n.block_count);
        assert_eq!(m.row_count, n.row_count);
        assert_eq!(m.raw_bytes, n.raw_bytes);
        assert_eq!(m.compressed_bytes, n.compressed_bytes);
        assert_eq!(m.column_stats(0).unwrap(), n.column_stats(0).unwrap());
        for (a, b) in seg.blocks().iter().zip(back.blocks()) {
            assert_eq!(a.decode().unwrap().to_rows(), b.decode().unwrap().to_rows());
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn empty_segment_image_roundtrips() {
        let image = BlockAppender::new().seal().encode();
        let back = Segment::decode(&image).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.manifest().block_count, 0);
    }

    #[test]
    fn segment_decode_rejects_every_single_byte_corruption() {
        let mut app = BlockAppender::new();
        app.append(&batch(&[(5, "m", 1.0), (9, "z", 2.0)]));
        let image = app.seal().encode();
        // Truncations at every length.
        for cut in 0..image.len() {
            assert!(
                Segment::decode(&image[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
        // Bit flips at every position (checksum catches body flips; a
        // flipped checksum byte mismatches the clean body).
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x40;
            assert!(Segment::decode(&bad).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn ranges_disjoint_rule() {
        let lo = ColStats {
            min: Some(Value::Int(1)),
            max: Some(Value::Int(10)),
            null_count: 0,
        };
        let hi = ColStats {
            min: Some(Value::Int(11)),
            max: Some(Value::Int(20)),
            null_count: 0,
        };
        let overlap = ColStats {
            min: Some(Value::Int(5)),
            max: Some(Value::Int(15)),
            null_count: 0,
        };
        let unknown = ColStats {
            min: None,
            max: None,
            null_count: 3,
        };
        assert!(ranges_disjoint(&lo, &hi));
        assert!(ranges_disjoint(&hi, &lo));
        assert!(!ranges_disjoint(&lo, &overlap));
        assert!(!ranges_disjoint(&lo, &unknown));
        assert!(!ranges_disjoint(&unknown, &hi));
    }
}
