//! CSV and JSONL codecs plus a minimal JSON document model.
//!
//! The synthetic datasets (MACCROBAT-like annotation files, tweet tables,
//! product catalogues) are materialized as text in these formats, and the
//! workflow engine's "GUI" is rendered as JSON documents. Both engines pay
//! decode costs proportional to the text they consume, so the codecs also
//! report byte counts.

use std::fmt::Write as _;

use crate::batch::{Batch, BatchBuilder};
use crate::error::{DataError, DataResult};
use crate::schema::SchemaRef;
use crate::value::{DataType, Value};

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Encode a batch as CSV with a header row.
///
/// Fields containing commas, quotes, or newlines are quoted; quotes are
/// doubled (RFC 4180 style). `Null` encodes as the empty field.
pub fn to_csv(batch: &Batch) -> String {
    let mut out = String::new();
    let names: Vec<&str> = batch.schema().fields().iter().map(|f| f.name()).collect();
    push_csv_row(&mut out, names.iter().copied());
    for t in batch.tuples() {
        let cells: Vec<String> = t.values().iter().map(csv_cell).collect();
        push_csv_row(&mut out, cells.iter().map(String::as_str));
    }
    out
}

fn csv_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

fn push_csv_row<'a>(out: &mut String, cells: impl Iterator<Item = &'a str>) {
    for (i, cell) in cells.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            for ch in cell.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Decode CSV text (with header) into a batch typed by `schema`.
///
/// The header must list exactly the schema's columns, in order. Empty
/// fields decode as `Null`; other fields parse according to the declared
/// column type.
pub fn from_csv(schema: SchemaRef, text: &str) -> DataResult<Batch> {
    let mut lines = split_csv_records(text);
    let header = match lines.next() {
        Some((_, h)) => h,
        None => return Ok(Batch::empty(schema)),
    };
    let expected: Vec<&str> = schema.fields().iter().map(|f| f.name()).collect();
    let got = parse_csv_record(&header, 1)?;
    if got != expected {
        return Err(DataError::Decode {
            line: 1,
            message: format!("header mismatch: expected {expected:?}, got {got:?}"),
        });
    }
    let mut bb = BatchBuilder::new(schema.clone());
    for (lineno, record) in lines {
        if record.trim().is_empty() {
            continue;
        }
        let cells = parse_csv_record(&record, lineno)?;
        if cells.len() != schema.arity() {
            return Err(DataError::Decode {
                line: lineno,
                message: format!("expected {} fields, found {}", schema.arity(), cells.len()),
            });
        }
        let mut row = Vec::with_capacity(cells.len());
        for (field, cell) in schema.fields().iter().zip(cells) {
            row.push(parse_typed(&cell, field.dtype(), lineno)?);
        }
        bb.push_row(row)?;
    }
    Ok(bb.build())
}

/// Split CSV text into records, honouring quoted newlines. Yields
/// `(1-based line number of record start, record text)`.
fn split_csv_records(text: &str) -> impl Iterator<Item = (usize, String)> + '_ {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut start_line = 1usize;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            '\n' if !in_quotes => {
                records.push((start_line, std::mem::take(&mut current)));
                line += 1;
                start_line = line;
            }
            '\n' => {
                line += 1;
                current.push(ch);
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        records.push((start_line, current));
    }
    records.into_iter()
}

fn parse_csv_record(record: &str, lineno: usize) -> DataResult<Vec<String>> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cell.is_empty() => in_quotes = true,
            '"' => {
                return Err(DataError::Decode {
                    line: lineno,
                    message: "quote in unquoted field".into(),
                })
            }
            ',' if !in_quotes => cells.push(std::mem::take(&mut cell)),
            _ => cell.push(ch),
        }
    }
    if in_quotes {
        return Err(DataError::Decode {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    cells.push(cell);
    Ok(cells)
}

fn parse_typed(cell: &str, dtype: DataType, lineno: usize) -> DataResult<Value> {
    if cell.is_empty() && dtype != DataType::Str {
        return Ok(Value::Null);
    }
    let err = |msg: String| DataError::Decode {
        line: lineno,
        message: msg,
    };
    Ok(match dtype {
        DataType::Null => Value::Null,
        DataType::Bool => match cell {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            other => return Err(err(format!("invalid bool `{other}`"))),
        },
        DataType::Int => Value::Int(
            cell.parse::<i64>()
                .map_err(|e| err(format!("invalid int `{cell}`: {e}")))?,
        ),
        DataType::Float => Value::Float(
            cell.parse::<f64>()
                .map_err(|e| err(format!("invalid float `{cell}`: {e}")))?,
        ),
        DataType::Str => Value::Str(cell.to_owned()),
        DataType::Bytes | DataType::List => {
            return Err(err(format!("{dtype} columns cannot be decoded from CSV")))
        }
    })
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

/// Encode a batch as JSON Lines: one object per tuple keyed by column name.
pub fn to_jsonl(batch: &Batch) -> String {
    let mut out = String::new();
    for t in batch.tuples() {
        let mut obj = Vec::with_capacity(t.values().len());
        for (field, v) in batch.schema().fields().iter().zip(t.values()) {
            obj.push((field.name().to_owned(), Json::from_value(v)));
        }
        Json::Object(obj).write(&mut out);
        out.push('\n');
    }
    out
}

/// Decode JSON Lines into a batch typed by `schema`. Missing keys decode
/// as `Null`; extra keys are an error (both engines treat unexpected
/// columns as a user bug worth surfacing).
pub fn from_jsonl(schema: SchemaRef, text: &str) -> DataResult<Batch> {
    let mut bb = BatchBuilder::new(schema.clone());
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|message| DataError::Decode {
            line: lineno,
            message,
        })?;
        let obj = match json {
            Json::Object(kv) => kv,
            other => {
                return Err(DataError::Decode {
                    line: lineno,
                    message: format!("expected object, got {}", other.type_name()),
                })
            }
        };
        let mut row = vec![Value::Null; schema.arity()];
        for (k, v) in obj {
            let col = schema.index_of(&k).map_err(|_| DataError::Decode {
                line: lineno,
                message: format!("unexpected key `{k}`"),
            })?;
            row[col] = v.into_value();
        }
        bb.push_row(row)?;
    }
    Ok(bb.build())
}

// ---------------------------------------------------------------------------
// Minimal JSON document model
// ---------------------------------------------------------------------------

/// A minimal JSON document, used for JSONL payloads and for rendering the
/// workflow "GUI" state as machine-readable documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convert a data [`Value`] into JSON. Byte blobs encode as their
    /// length (payloads never travel through JSON in this system).
    pub fn from_value(v: &Value) -> Json {
        match v {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::Int(i) => Json::Int(*i),
            Value::Float(x) => Json::Float(*x),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bytes(b) => Json::Object(vec![("$bytes".into(), Json::Int(b.len() as i64))]),
            Value::List(vs) => Json::Array(vs.iter().map(Json::from_value).collect()),
        }
    }

    /// Convert JSON back into a data [`Value`].
    pub fn into_value(self) -> Value {
        match self {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(b),
            Json::Int(i) => Value::Int(i),
            Json::Float(x) => Value::Float(x),
            Json::Str(s) => Value::Str(s),
            Json::Array(vs) => Value::List(vs.into_iter().map(Json::into_value).collect()),
            Json::Object(_) => Value::Null,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Serialize into `out` (compact form).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Ensure a decimal point so ints and floats roundtrip
                    // distinguishably.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Array(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(kv) => {
                out.push('{');
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a compact string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse a JSON document from text.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_json(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_json(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let ch = *b.get(*pos).ok_or("unexpected end of input")?;
    match ch {
        b'n' => expect_lit(b, pos, "null").map(|_| Json::Null),
        b't' => expect_lit(b, pos, "true").map(|_| Json::Bool(true)),
        b'f' => expect_lit(b, pos, "false").map(|_| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_json(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(kv));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_json(b, pos)?;
                kv.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(kv));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(format!("unexpected byte `{}` at {pos}", other as char)),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut s = String::new();
    // Work on chars: re-decode UTF-8 from the byte offset.
    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
    let mut chars = rest.char_indices().peekable();
    while let Some((i, ch)) = chars.next() {
        match ch {
            '"' => {
                *pos += i + 1;
                return Ok(s);
            }
            '\\' => {
                let (_, esc) = chars.next().ok_or("unterminated escape")?;
                match esc {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'b' => s.push('\u{8}'),
                    'f' => s.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + h.to_digit(16).ok_or("invalid \\u escape")?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape `\\{other}`")),
                }
            }
            c => s.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("invalid number `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("invalid number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("id", DataType::Int),
            ("text", DataType::Str),
            ("score", DataType::Float),
            ("flag", DataType::Bool),
        ])
    }

    fn batch() -> Batch {
        Batch::from_rows(
            schema(),
            vec![
                vec![
                    Value::Int(1),
                    Value::Str("hello, \"world\"\nbye".into()),
                    Value::Float(0.25),
                    Value::Bool(true),
                ],
                vec![
                    Value::Int(2),
                    Value::Str("plain".into()),
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let b = batch();
        let text = to_csv(&b);
        let back = from_csv(schema(), &text).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn csv_header_mismatch() {
        let text = "wrong,header\n1,2\n";
        assert!(from_csv(schema(), text).is_err());
    }

    #[test]
    fn csv_bad_int_reports_line() {
        let text = "id,text,score,flag\nnotanint,x,0.5,true\n";
        let err = from_csv(schema(), text).unwrap_err();
        assert!(matches!(err, DataError::Decode { line: 2, .. }), "{err}");
    }

    #[test]
    fn csv_empty_text_gives_empty_batch() {
        assert!(from_csv(schema(), "").unwrap().is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let b = batch();
        let text = to_jsonl(&b);
        let back = from_jsonl(schema(), &text).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn jsonl_missing_key_is_null_extra_is_error() {
        let ok = r#"{"id":5}"#;
        let b = from_jsonl(schema(), ok).unwrap();
        assert!(b.tuples()[0].get("text").unwrap().is_null());
        let bad = r#"{"id":5,"bogus":1}"#;
        assert!(from_jsonl(schema(), bad).is_err());
    }

    #[test]
    fn json_parse_nested() {
        let v = Json::parse(r#" {"a": [1, 2.5, "x\n", null, true], "b": {}} "#).unwrap();
        match &v {
            Json::Object(kv) => {
                assert_eq!(kv[0].0, "a");
                match &kv[0].1 {
                    Json::Array(items) => {
                        assert_eq!(items[0], Json::Int(1));
                        assert_eq!(items[1], Json::Float(2.5));
                        assert_eq!(items[2], Json::Str("x\n".into()));
                        assert_eq!(items[3], Json::Null);
                        assert_eq!(items[4], Json::Bool(true));
                    }
                    other => panic!("expected array, got {other:?}"),
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn json_string_escapes_roundtrip() {
        let original = "tab\t quote\" back\\ nl\n unicode✓";
        let doc = Json::Str(original.into());
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn json_unicode_escape() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn float_formatting_keeps_point() {
        let text = Json::Float(3.0).to_string_compact();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(3.0));
    }
}
