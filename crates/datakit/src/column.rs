//! Columnar batch representation with per-batch statistics.
//!
//! The row-oriented [`Batch`](crate::Batch) moves `Vec<Tuple>`s of boxed
//! [`Value`]s between operators, so every hot inner loop (filter
//! predicates, join key extraction, aggregate kernels) pays a dynamic
//! `Value` match per cell. [`ColumnarBatch`] stores the same data as one
//! typed vector per column ([`ColumnVec`]) plus a validity bitmap for
//! nulls, and seals per-column min/max/null-count statistics
//! ([`ColStats`]) exactly once at construction time. Operators can then:
//!
//! 1. consult the zone map ([`ColStats::range_excludes`]) and skip whole
//!    batches whose min/max range cannot satisfy a predicate, and
//! 2. run tight monomorphic loops over `Vec<i64>`/`Vec<f64>`/… instead of
//!    matching on `Value`.
//!
//! The row form remains the compatibility path: conversion goes both ways
//! ([`ColumnarBatch::from_rows`] / [`ColumnarBatch::to_rows`]) and is
//! round-trip tested, so an engine can freely mix representations.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::batch::Batch;
use crate::error::{DataError, DataResult};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// A packed validity bitmap: bit `i` set means row `i` is non-null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap {
            words: Vec::new(),
            len: 0,
        }
    }

    /// A bitmap of `len` bits, all valid.
    pub fn all_valid(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if len % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Append one bit.
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Whether row `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of invalid (null) rows.
    pub fn count_invalid(&self) -> u64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        self.len as u64 - u64::from(set)
    }
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::new()
    }
}

/// One column of a [`ColumnarBatch`]: a typed vector plus a validity
/// bitmap. Invalid rows hold an arbitrary placeholder in the data vector
/// and render as [`Value::Null`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// 64-bit integers.
    Int {
        /// Cell values (placeholder 0 where invalid).
        data: Vec<i64>,
        /// Per-row validity.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float {
        /// Cell values (placeholder 0.0 where invalid).
        data: Vec<f64>,
        /// Per-row validity.
        validity: Bitmap,
    },
    /// Booleans.
    Bool {
        /// Cell values (placeholder `false` where invalid).
        data: Vec<bool>,
        /// Per-row validity.
        validity: Bitmap,
    },
    /// UTF-8 strings.
    Str {
        /// Cell values (placeholder `""` where invalid).
        data: Vec<String>,
        /// Per-row validity.
        validity: Bitmap,
    },
    /// Fallback for column types without a dense representation
    /// (`Bytes`, `List`, `Null`-typed columns): the boxed values as-is.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// An empty column of the dense representation for `dtype`.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnVec::Int {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Float => ColumnVec::Float {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Bool => ColumnVec::Bool {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Str => ColumnVec::Str {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Null | DataType::Bytes | DataType::List => ColumnVec::Mixed(Vec::new()),
        }
    }

    /// Append one cell. The value must conform to the column's type
    /// (nulls are always accepted); enforced by the batch constructors.
    fn push(&mut self, v: &Value) {
        match self {
            ColumnVec::Int { data, validity } => match v {
                Value::Int(i) => {
                    data.push(*i);
                    validity.push(true);
                }
                _ => {
                    data.push(0);
                    validity.push(false);
                }
            },
            ColumnVec::Float { data, validity } => match v {
                Value::Float(x) => {
                    data.push(*x);
                    validity.push(true);
                }
                _ => {
                    data.push(0.0);
                    validity.push(false);
                }
            },
            ColumnVec::Bool { data, validity } => match v {
                Value::Bool(b) => {
                    data.push(*b);
                    validity.push(true);
                }
                _ => {
                    data.push(false);
                    validity.push(false);
                }
            },
            ColumnVec::Str { data, validity } => match v {
                Value::Str(s) => {
                    data.push(s.clone());
                    validity.push(true);
                }
                _ => {
                    data.push(String::new());
                    validity.push(false);
                }
            },
            ColumnVec::Mixed(data) => data.push(v.clone()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Str { data, .. } => data.len(),
            ColumnVec::Mixed(data) => data.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the cell at row `i` back into a boxed [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, validity } => {
                if validity.is_valid(i) {
                    Value::Int(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Float { data, validity } => {
                if validity.is_valid(i) {
                    Value::Float(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Bool { data, validity } => {
                if validity.is_valid(i) {
                    Value::Bool(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Str { data, validity } => {
                if validity.is_valid(i) {
                    Value::Str(data[i].clone())
                } else {
                    Value::Null
                }
            }
            ColumnVec::Mixed(data) => data[i].clone(),
        }
    }

    /// Seal the per-column statistics: min/max over valid rows plus the
    /// null count. Computed once at batch construction.
    fn seal_stats(&self) -> ColStats {
        match self {
            ColumnVec::Int { data, validity } => {
                let mut min = None::<i64>;
                let mut max = None::<i64>;
                for (i, &x) in data.iter().enumerate() {
                    if !validity.is_valid(i) {
                        continue;
                    }
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
                ColStats {
                    min: min.map(Value::Int),
                    max: max.map(Value::Int),
                    null_count: validity.count_invalid(),
                }
            }
            ColumnVec::Float { data, validity } => {
                let mut min = None::<f64>;
                let mut max = None::<f64>;
                let mut saw_nan = false;
                for (i, &x) in data.iter().enumerate() {
                    if !validity.is_valid(i) {
                        continue;
                    }
                    if x.is_nan() {
                        saw_nan = true;
                        break;
                    }
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
                if saw_nan {
                    // NaN breaks the ordering the zone map relies on;
                    // publish no range rather than a wrong one.
                    min = None;
                    max = None;
                }
                ColStats {
                    min: min.map(Value::Float),
                    max: max.map(Value::Float),
                    null_count: validity.count_invalid(),
                }
            }
            ColumnVec::Bool { data, validity } => {
                let mut min = None::<bool>;
                let mut max = None::<bool>;
                for (i, &b) in data.iter().enumerate() {
                    if !validity.is_valid(i) {
                        continue;
                    }
                    min = Some(min.map_or(b, |m| m & b));
                    max = Some(max.map_or(b, |m| m | b));
                }
                ColStats {
                    min: min.map(Value::Bool),
                    max: max.map(Value::Bool),
                    null_count: validity.count_invalid(),
                }
            }
            ColumnVec::Str { data, validity } => {
                let mut min = None::<&String>;
                let mut max = None::<&String>;
                for (i, s) in data.iter().enumerate() {
                    if !validity.is_valid(i) {
                        continue;
                    }
                    min = Some(min.map_or(s, |m| m.min(s)));
                    max = Some(max.map_or(s, |m| m.max(s)));
                }
                ColStats {
                    min: min.map(|s| Value::Str(s.clone())),
                    max: max.map(|s| Value::Str(s.clone())),
                    null_count: validity.count_invalid(),
                }
            }
            ColumnVec::Mixed(data) => ColStats {
                min: None,
                max: None,
                null_count: data.iter().filter(|v| v.is_null()).count() as u64,
            },
        }
    }
}

/// Comparison operator of a structured filter predicate, usable against
/// the zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the operator to an already-computed ordering of
    /// `left cmp right`.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }
}

/// Totally order two scalar values of compatible types, widening ints
/// against float comparands. `None` for nulls, NaNs, and type mixes the
/// zone map cannot reason about.
pub fn cmp_values(left: &Value, right: &Value) -> Option<Ordering> {
    match (left, right) {
        (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
        (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
        (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
        (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Value::Str(a), Value::Str(b)) => Some(a.as_str().cmp(b.as_str())),
        (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
        _ => None,
    }
}

/// Evaluate `value op literal` with SQL-ish null semantics: a null value
/// never satisfies a comparison, and incomparable type mixes are false.
pub fn cmp_value(value: &Value, op: CmpOp, literal: &Value) -> bool {
    cmp_values(value, literal).is_some_and(|ord| op.eval(ord))
}

/// Per-column statistics sealed when a [`ColumnarBatch`] is built.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    /// Smallest valid value, `None` when the column has no orderable
    /// values (all null, NaN present, or a `Mixed` column).
    pub min: Option<Value>,
    /// Largest valid value, under the same caveats as `min`.
    pub max: Option<Value>,
    /// Number of null rows.
    pub null_count: u64,
}

impl ColStats {
    /// Zone-map skip rule: true when **no** value in `[min, max]` can
    /// satisfy `value op literal`, i.e. the whole batch can be pruned
    /// without reading the column. Conservative: unknown ranges never
    /// exclude.
    pub fn range_excludes(&self, op: CmpOp, literal: &Value) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return false;
        };
        let (Some(min_ord), Some(max_ord)) = (cmp_values(min, literal), cmp_values(max, literal))
        else {
            return false;
        };
        match op {
            // v < lit fails for all v when min >= lit.
            CmpOp::Lt => min_ord != Ordering::Less,
            CmpOp::Le => min_ord == Ordering::Greater,
            CmpOp::Gt => max_ord != Ordering::Greater,
            CmpOp::Ge => max_ord == Ordering::Less,
            CmpOp::Eq => min_ord == Ordering::Greater || max_ord == Ordering::Less,
            // v != lit only fails everywhere when min == max == lit,
            // which `range_satisfies` handles; a range never excludes !=
            // unless it is that single point.
            CmpOp::Ne => min_ord == Ordering::Equal && max_ord == Ordering::Equal,
        }
    }

    /// Zone-map accept rule: true when **every** valid value in
    /// `[min, max]` satisfies `value op literal` and the column has no
    /// nulls, i.e. the whole batch passes without reading the column.
    pub fn range_satisfies(&self, op: CmpOp, literal: &Value) -> bool {
        if self.null_count > 0 {
            return false;
        }
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return false;
        };
        let (Some(min_ord), Some(max_ord)) = (cmp_values(min, literal), cmp_values(max, literal))
        else {
            return false;
        };
        match op {
            CmpOp::Lt => max_ord == Ordering::Less,
            CmpOp::Le => max_ord != Ordering::Greater,
            CmpOp::Gt => min_ord == Ordering::Greater,
            CmpOp::Ge => min_ord != Ordering::Less,
            CmpOp::Eq => min_ord == Ordering::Equal && max_ord == Ordering::Equal,
            CmpOp::Ne => min_ord == Ordering::Greater || max_ord == Ordering::Less,
        }
    }
}

/// All per-column statistics of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// One [`ColStats`] per schema column, in schema order.
    pub columns: Vec<ColStats>,
}

impl BatchStats {
    /// Statistics of column `i`.
    pub fn column(&self, i: usize) -> &ColStats {
        &self.columns[i]
    }
}

/// A schema-homogeneous group of rows in columnar layout, with sealed
/// per-column statistics.
///
/// This is the zero-copy payload the live executor routes along DAG
/// edges when columnar mode is on; operators with columnar kernels
/// consume it directly, everything else falls back to
/// [`ColumnarBatch::to_tuples`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    schema: SchemaRef,
    columns: Vec<ColumnVec>,
    stats: BatchStats,
    len: usize,
}

impl ColumnarBatch {
    /// Build from already-validated tuples (the internal seal path: the
    /// producing operator's output schema was checked at DAG-build time).
    /// Schema conformance is only re-checked under `debug_assert`.
    pub fn from_tuples(schema: SchemaRef, tuples: &[Tuple]) -> Self {
        debug_assert!(
            tuples.iter().all(|t| **t.schema() == *schema),
            "from_tuples requires schema-homogeneous input"
        );
        let mut columns: Vec<ColumnVec> = schema
            .fields()
            .iter()
            .map(|f| ColumnVec::empty(f.dtype()))
            .collect();
        for t in tuples {
            for (col, v) in columns.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        Self::seal(schema, columns, tuples.len())
    }

    /// Build from rows of raw values, validating each against the schema
    /// (the public, checked entry point — the columnar analogue of
    /// [`Batch::from_rows`]).
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> DataResult<Self> {
        let mut columns: Vec<ColumnVec> = schema
            .fields()
            .iter()
            .map(|f| ColumnVec::empty(f.dtype()))
            .collect();
        let len = rows.len();
        for row in &rows {
            if row.len() != schema.arity() {
                return Err(DataError::ArityMismatch {
                    expected: schema.arity(),
                    actual: row.len(),
                });
            }
            for ((field, col), v) in schema.fields().iter().zip(columns.iter_mut()).zip(row) {
                if !v.conforms_to(field.dtype()) {
                    return Err(DataError::TypeMismatch {
                        column: field.name().to_owned(),
                        expected: field.dtype().to_string(),
                        actual: v.dtype().to_string(),
                    });
                }
                col.push(v);
            }
        }
        Ok(Self::seal(schema, columns, len))
    }

    /// Convert a row batch.
    pub fn from_batch(batch: &Batch) -> Self {
        Self::from_tuples(batch.schema().clone(), batch.tuples())
    }

    fn seal(schema: SchemaRef, columns: Vec<ColumnVec>, len: usize) -> Self {
        let stats = BatchStats {
            columns: columns.iter().map(ColumnVec::seal_stats).collect(),
        };
        ColumnarBatch {
            schema,
            columns,
            stats,
            len,
        }
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The sealed statistics.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Column `i` in schema order.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materialize row `i` as a [`Tuple`] (schema shared, not cloned).
    pub fn tuple_at(&self, i: usize) -> Tuple {
        let values = self.columns.iter().map(|c| c.value_at(i)).collect();
        Tuple::new_unchecked(self.schema.clone(), values)
    }

    /// Materialize all rows back into raw value rows (round-trip inverse
    /// of [`ColumnarBatch::from_rows`]).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len)
            .map(|i| self.columns.iter().map(|c| c.value_at(i)).collect())
            .collect()
    }

    /// Materialize all rows as tuples (the row-compatibility path).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len).map(|i| self.tuple_at(i)).collect()
    }

    /// Convert back to a row [`Batch`].
    pub fn to_batch(&self) -> Batch {
        Batch::new_unchecked(self.schema.clone(), self.to_tuples())
    }

    /// Wrap into a shared, reference-counted handle.
    pub fn into_shared(self) -> Arc<ColumnarBatch> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(3), Value::Str("c".into()), Value::Float(0.5)],
            vec![Value::Int(1), Value::Null, Value::Float(2.5)],
            vec![Value::Int(7), Value::Str("a".into()), Value::Null],
        ]
    }

    #[test]
    fn roundtrip_from_rows_to_rows() {
        let cb = ColumnarBatch::from_rows(schema(), rows()).unwrap();
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.to_rows(), rows());
    }

    #[test]
    fn roundtrip_through_row_batch() {
        let b = Batch::from_rows(schema(), rows()).unwrap();
        let cb = ColumnarBatch::from_batch(&b);
        assert_eq!(cb.to_batch(), b);
        assert_eq!(cb.to_tuples(), b.tuples());
    }

    #[test]
    fn from_rows_validates() {
        let bad = ColumnarBatch::from_rows(
            schema(),
            vec![vec![Value::Str("x".into()), Value::Null, Value::Null]],
        );
        assert!(bad.is_err());
        let short = ColumnarBatch::from_rows(schema(), vec![vec![Value::Int(1)]]);
        assert!(short.is_err());
    }

    #[test]
    fn stats_sealed_at_construction() {
        let cb = ColumnarBatch::from_rows(schema(), rows()).unwrap();
        let id = cb.stats().column(0);
        assert_eq!(id.min, Some(Value::Int(1)));
        assert_eq!(id.max, Some(Value::Int(7)));
        assert_eq!(id.null_count, 0);
        let name = cb.stats().column(1);
        assert_eq!(name.min, Some(Value::Str("a".into())));
        assert_eq!(name.max, Some(Value::Str("c".into())));
        assert_eq!(name.null_count, 1);
        let score = cb.stats().column(2);
        assert_eq!(score.min, Some(Value::Float(0.5)));
        assert_eq!(score.max, Some(Value::Float(2.5)));
        assert_eq!(score.null_count, 1);
    }

    #[test]
    fn nan_column_publishes_no_range() {
        let s = Schema::of(&[("x", DataType::Float)]);
        let cb = ColumnarBatch::from_rows(
            s,
            vec![vec![Value::Float(1.0)], vec![Value::Float(f64::NAN)]],
        )
        .unwrap();
        let st = cb.stats().column(0);
        assert_eq!(st.min, None);
        assert_eq!(st.max, None);
        assert!(!st.range_excludes(CmpOp::Gt, &Value::Float(100.0)));
    }

    #[test]
    fn zone_map_excludes_and_satisfies() {
        // id in [1, 7]
        let cb = ColumnarBatch::from_rows(schema(), rows()).unwrap();
        let id = cb.stats().column(0);
        assert!(id.range_excludes(CmpOp::Gt, &Value::Int(10)));
        assert!(id.range_excludes(CmpOp::Lt, &Value::Int(1)));
        assert!(id.range_excludes(CmpOp::Eq, &Value::Int(0)));
        assert!(id.range_excludes(CmpOp::Ge, &Value::Int(8)));
        assert!(!id.range_excludes(CmpOp::Gt, &Value::Int(5)));
        assert!(id.range_satisfies(CmpOp::Ge, &Value::Int(1)));
        assert!(id.range_satisfies(CmpOp::Le, &Value::Int(7)));
        assert!(id.range_satisfies(CmpOp::Ne, &Value::Int(100)));
        assert!(!id.range_satisfies(CmpOp::Gt, &Value::Int(1)));
        // A nullable column never blanket-satisfies.
        let name = cb.stats().column(1);
        assert!(!name.range_satisfies(CmpOp::Ge, &Value::Str("a".into())));
    }

    #[test]
    fn single_point_range_excludes_ne() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let cb =
            ColumnarBatch::from_rows(s, vec![vec![Value::Int(4)], vec![Value::Int(4)]]).unwrap();
        assert!(cb
            .stats()
            .column(0)
            .range_excludes(CmpOp::Ne, &Value::Int(4)));
        assert!(!cb
            .stats()
            .column(0)
            .range_excludes(CmpOp::Ne, &Value::Int(5)));
    }

    #[test]
    fn cmp_value_null_and_mismatch_are_false() {
        assert!(!cmp_value(&Value::Null, CmpOp::Eq, &Value::Null));
        assert!(!cmp_value(
            &Value::Str("a".into()),
            CmpOp::Lt,
            &Value::Int(1)
        ));
        assert!(cmp_value(&Value::Int(2), CmpOp::Lt, &Value::Float(2.5)));
        assert!(cmp_value(&Value::Float(2.0), CmpOp::Ge, &Value::Int(2)));
        assert!(cmp_value(
            &Value::Bool(true),
            CmpOp::Gt,
            &Value::Bool(false)
        ));
    }

    #[test]
    fn bitmap_tracks_validity() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 != 0);
        }
        assert_eq!(bm.len(), 130);
        assert!(!bm.is_valid(0));
        assert!(bm.is_valid(1));
        assert!(!bm.is_valid(129));
        assert_eq!(bm.count_invalid(), 44);
        let av = Bitmap::all_valid(70);
        assert_eq!(av.count_invalid(), 0);
        assert!(av.is_valid(69));
    }

    #[test]
    fn mixed_column_roundtrips() {
        let s = Schema::of(&[("blob", DataType::List)]);
        let rows = vec![vec![Value::List(vec![Value::Int(1)])], vec![Value::Null]];
        let cb = ColumnarBatch::from_rows(s, rows.clone()).unwrap();
        assert_eq!(cb.to_rows(), rows);
        assert_eq!(cb.stats().column(0).null_count, 1);
        assert_eq!(cb.stats().column(0).min, None);
    }

    #[test]
    fn empty_batch() {
        let cb = ColumnarBatch::from_rows(schema(), vec![]).unwrap();
        assert!(cb.is_empty());
        assert_eq!(cb.stats().column(0).min, None);
        assert!(cb.to_rows().is_empty());
    }
}
