//! Typed errors for the data layer.

use std::fmt;

/// Result alias used throughout the data layer.
pub type DataResult<T> = Result<T, DataError>;

/// Errors produced by schema/tuple/codec operations.
///
/// Both engines surface these to users differently (the notebook reports a
/// cell-level trace, the workflow engine an operator-level trace), so the
/// variants carry enough context to be rendered standalone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was not present in the schema.
    UnknownColumn {
        /// The missing column.
        column: String,
        /// The schema it was looked up in (rendered).
        schema: String,
    },
    /// A value had a different type than the schema declared.
    TypeMismatch {
        /// The offending column.
        column: String,
        /// The declared type.
        expected: String,
        /// The value's actual type.
        actual: String,
    },
    /// A tuple had the wrong number of values for its schema.
    ArityMismatch {
        /// The schema's arity.
        expected: usize,
        /// The tuple's arity.
        actual: usize,
    },
    /// Two schemas that had to agree did not.
    SchemaMismatch {
        /// Left schema (rendered).
        left: String,
        /// Right schema (rendered).
        right: String,
    },
    /// A duplicate column name was introduced.
    DuplicateColumn {
        /// The repeated name.
        column: String,
    },
    /// Malformed input encountered while decoding CSV/JSONL.
    Decode {
        /// 1-based input line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A value could not be used as a join/partition key.
    UnhashableKey {
        /// The unhashable type.
        dtype: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn { column, schema } => {
                write!(f, "unknown column `{column}` in schema [{schema}]")
            }
            DataError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {actual}"
            ),
            DataError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity mismatch: schema has {expected} fields, tuple has {actual}"
                )
            }
            DataError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: [{left}] vs [{right}]")
            }
            DataError::DuplicateColumn { column } => {
                write!(f, "duplicate column name `{column}`")
            }
            DataError::Decode { line, message } => {
                write!(f, "decode error at line {line}: {message}")
            }
            DataError::UnhashableKey { dtype } => {
                write!(f, "values of type {dtype} cannot be used as keys")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = DataError::UnknownColumn {
            column: "age".into(),
            schema: "name, sex".into(),
        };
        assert_eq!(e.to_string(), "unknown column `age` in schema [name, sex]");
    }

    #[test]
    fn display_type_mismatch() {
        let e = DataError::TypeMismatch {
            column: "id".into(),
            expected: "Int".into(),
            actual: "Str".into(),
        };
        assert!(e.to_string().contains("expected Int, got Str"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DataError::DuplicateColumn { column: "x".into() });
    }
}
