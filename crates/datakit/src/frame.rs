//! A small DataFrame layer — the pandas analogue the script paradigm
//! leans on.
//!
//! §III-D of the paper: "Jupyter Notebook users are able to simply call
//! the Pandas function `dataframe.merge`". This module provides that
//! style of eager, in-driver relational operations over a [`Batch`]:
//! select / filter / merge / sort / group-by. The workflow engine's
//! operators implement the same semantics in pipelined form; the
//! integration suite cross-checks the two.

use std::collections::HashMap;

use crate::batch::{Batch, BatchBuilder};
use crate::error::{DataError, DataResult};
use crate::key::HashKey;
use crate::schema::{Field, Schema, SchemaRef};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::sync::Arc;

/// How unmatched left rows are treated by [`DataFrame::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeHow {
    /// Keep only matching pairs.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    Left,
}

/// An eager, immutable data frame over a [`Batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    batch: Batch,
}

impl DataFrame {
    /// Wrap a batch.
    pub fn new(batch: Batch) -> Self {
        DataFrame { batch }
    }

    /// The underlying batch.
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Consume into the underlying batch.
    pub fn into_batch(self) -> Batch {
        self.batch
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        self.batch.schema()
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Keep the named columns (in the given order).
    pub fn select(&self, columns: &[&str]) -> DataResult<DataFrame> {
        let schema = Arc::new(self.schema().project(columns)?);
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema().index_of(c))
            .collect::<DataResult<_>>()?;
        let mut bb = BatchBuilder::with_capacity(schema.clone(), self.len());
        for t in self.batch.tuples() {
            let row = indices.iter().map(|&i| t.at(i).clone()).collect();
            bb.push(Tuple::new_unchecked(schema.clone(), row))
                .expect("projected rows conform");
        }
        Ok(DataFrame::new(bb.build()))
    }

    /// Keep rows matching the predicate.
    pub fn filter(&self, pred: impl Fn(&Tuple) -> DataResult<bool>) -> DataResult<DataFrame> {
        let mut bb = BatchBuilder::new(self.schema().clone());
        for t in self.batch.tuples() {
            if pred(t)? {
                bb.push(t.clone()).expect("same schema");
            }
        }
        Ok(DataFrame::new(bb.build()))
    }

    /// Append a computed column.
    pub fn with_column(
        &self,
        name: &str,
        dtype: DataType,
        f: impl Fn(&Tuple) -> DataResult<Value>,
    ) -> DataResult<DataFrame> {
        let schema = Arc::new(self.schema().with_field(Field::new(name, dtype))?);
        let mut bb = BatchBuilder::with_capacity(schema.clone(), self.len());
        for t in self.batch.tuples() {
            let mut row = t.values().to_vec();
            row.push(f(t)?);
            bb.push(Tuple::new(schema.clone(), row)?)
                .expect("same schema");
        }
        Ok(DataFrame::new(bb.build()))
    }

    /// Hash merge on equality of `left_on` and `right_on` (pandas'
    /// `merge`). Duplicate right columns get the `_r` suffix.
    pub fn merge(
        &self,
        right: &DataFrame,
        left_on: &[&str],
        right_on: &[&str],
        how: MergeHow,
    ) -> DataResult<DataFrame> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(DataError::SchemaMismatch {
                left: format!("{left_on:?}"),
                right: format!("{right_on:?}"),
            });
        }
        let joined = Arc::new(self.schema().join(right.schema(), "_r")?);
        // Build on the right side.
        let mut table: HashMap<HashKey, Vec<&Tuple>> = HashMap::new();
        for t in right.batch.tuples() {
            table
                .entry(HashKey::from_tuple(t, right_on)?)
                .or_default()
                .push(t);
        }
        let right_arity = right.schema().arity();
        let mut bb = BatchBuilder::new(joined.clone());
        for l in self.batch.tuples() {
            let key = HashKey::from_tuple(l, left_on)?;
            match table.get(&key) {
                Some(matches) => {
                    for r in matches {
                        let mut row = l.values().to_vec();
                        row.extend_from_slice(r.values());
                        bb.push(Tuple::new_unchecked(joined.clone(), row))
                            .expect("joined rows conform");
                    }
                }
                None if how == MergeHow::Left => {
                    let mut row = l.values().to_vec();
                    row.extend(std::iter::repeat_n(Value::Null, right_arity));
                    bb.push(Tuple::new_unchecked(joined.clone(), row))
                        .expect("joined rows conform");
                }
                None => {}
            }
        }
        Ok(DataFrame::new(bb.build()))
    }

    /// Stable sort by key columns (ascending; nulls first).
    pub fn sort_values(&self, keys: &[&str]) -> DataResult<DataFrame> {
        for k in keys {
            self.schema().index_of(k)?;
        }
        let mut tuples = self.batch.tuples().to_vec();
        tuples.sort_by(|a, b| {
            for k in keys {
                let av = a.get(k).expect("validated");
                let bv = b.get(k).expect("validated");
                let ord = cmp_values(av, bv);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(DataFrame::new(
            Batch::new(self.schema().clone(), tuples).expect("same schema"),
        ))
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        DataFrame::new(
            Batch::new(
                self.schema().clone(),
                self.batch.tuples().iter().take(n).cloned().collect(),
            )
            .expect("same schema"),
        )
    }

    /// Group by `keys` and count rows per group; output columns are the
    /// keys plus `count` (Int), in first-appearance order.
    pub fn group_count(&self, keys: &[&str]) -> DataResult<DataFrame> {
        let mut fields: Vec<Field> = keys
            .iter()
            .map(|k| self.schema().field(k).cloned())
            .collect::<DataResult<_>>()?;
        fields.push(Field::new("count", DataType::Int));
        let schema = Arc::new(Schema::new(fields)?);

        let mut counts: HashMap<HashKey, (Vec<Value>, i64)> = HashMap::new();
        let mut order: Vec<HashKey> = Vec::new();
        for t in self.batch.tuples() {
            let key = HashKey::from_tuple(t, keys)?;
            if !counts.contains_key(&key) {
                let rep: Vec<Value> = keys
                    .iter()
                    .map(|k| t.get(k).expect("validated").clone())
                    .collect();
                counts.insert(key.clone(), (rep, 0));
                order.push(key.clone());
            }
            counts.get_mut(&key).expect("inserted").1 += 1;
        }
        let mut bb = BatchBuilder::with_capacity(schema.clone(), order.len());
        for key in order {
            let (mut rep, n) = counts.remove(&key).expect("collected");
            rep.push(Value::Int(n));
            bb.push(Tuple::new_unchecked(schema.clone(), rep))
                .expect("group rows conform");
        }
        Ok(DataFrame::new(bb.build()))
    }
}

fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => format!("{a}").cmp(&format!("{b}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> DataFrame {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("city", DataType::Str),
            ("age", DataType::Int),
        ]);
        DataFrame::new(
            Batch::from_rows(
                schema,
                vec![
                    vec![Value::Int(1), Value::Str("berlin".into()), Value::Int(34)],
                    vec![Value::Int(2), Value::Str("tokyo".into()), Value::Int(52)],
                    vec![Value::Int(3), Value::Str("berlin".into()), Value::Int(8)],
                    vec![Value::Int(4), Value::Str("lima".into()), Value::Int(71)],
                ],
            )
            .unwrap(),
        )
    }

    fn cities() -> DataFrame {
        let schema = Schema::of(&[("city", DataType::Str), ("country", DataType::Str)]);
        DataFrame::new(
            Batch::from_rows(
                schema,
                vec![
                    vec![Value::Str("berlin".into()), Value::Str("DE".into())],
                    vec![Value::Str("tokyo".into()), Value::Str("JP".into())],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn select_and_filter() {
        let df = people()
            .filter(|t| Ok(t.get_int("age")? >= 30))
            .unwrap()
            .select(&["city", "id"])
            .unwrap();
        assert_eq!(df.len(), 3);
        assert_eq!(df.schema().to_string(), "city: Str, id: Int");
    }

    #[test]
    fn inner_merge_matches_and_drops() {
        let j = people()
            .merge(&cities(), &["city"], &["city"], MergeHow::Inner)
            .unwrap();
        // lima has no country row → dropped.
        assert_eq!(j.len(), 3);
        assert!(j.schema().contains("city_r"));
        assert!(j.schema().contains("country"));
    }

    #[test]
    fn left_merge_pads_nulls() {
        let j = people()
            .merge(&cities(), &["city"], &["city"], MergeHow::Left)
            .unwrap();
        assert_eq!(j.len(), 4);
        let lima = j
            .batch()
            .tuples()
            .iter()
            .find(|t| t.get_str("city").unwrap() == "lima")
            .unwrap();
        assert!(lima.get("country").unwrap().is_null());
    }

    #[test]
    fn merge_validates_key_lists() {
        assert!(people()
            .merge(&cities(), &["city", "id"], &["city"], MergeHow::Inner)
            .is_err());
        assert!(people()
            .merge(&cities(), &["nope"], &["city"], MergeHow::Inner)
            .is_err());
    }

    #[test]
    fn sort_and_head() {
        let df = people().sort_values(&["age"]).unwrap();
        let ages: Vec<i64> = df
            .batch()
            .tuples()
            .iter()
            .map(|t| t.get_int("age").unwrap())
            .collect();
        assert_eq!(ages, vec![8, 34, 52, 71]);
        assert_eq!(df.head(2).len(), 2);
        assert!(people().sort_values(&["missing"]).is_err());
    }

    #[test]
    fn with_column_computes() {
        let df = people()
            .with_column("adult", DataType::Bool, |t| {
                Ok(Value::Bool(t.get_int("age")? >= 18))
            })
            .unwrap();
        assert_eq!(df.schema().arity(), 4);
        let adults = df
            .batch()
            .tuples()
            .iter()
            .filter(|t| t.get("adult").unwrap().as_bool() == Some(true))
            .count();
        assert_eq!(adults, 3);
        // Name collision rejected.
        assert!(people()
            .with_column("age", DataType::Int, |_| Ok(Value::Int(0)))
            .is_err());
    }

    #[test]
    fn group_count_first_appearance_order() {
        let g = people().group_count(&["city"]).unwrap();
        assert_eq!(g.len(), 3);
        let first = &g.batch().tuples()[0];
        assert_eq!(first.get_str("city").unwrap(), "berlin");
        assert_eq!(first.get_int("count").unwrap(), 2);
    }

    #[test]
    fn empty_frame_operations() {
        let empty = people().filter(|_| Ok(false)).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.group_count(&["city"]).unwrap().len(), 0);
        assert_eq!(empty.sort_values(&["id"]).unwrap().len(), 0);
    }
}
