//! Hashable normalized key forms for joins and partitioning.

use std::hash::{Hash, Hasher};

use crate::error::{DataError, DataResult};
use crate::tuple::Tuple;
use crate::value::Value;

/// A value normalized into a hashable, totally equatable form.
///
/// [`Value`] itself is not `Eq`/`Hash` because of floats; join and
/// partition keys need both. Floats are normalized by their bit pattern
/// (with `-0.0` folded to `0.0` and all NaNs folded together), matching
/// what a hash join in either engine would do.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// Null key (joins on null match other nulls, like Texera's operator).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Float key, by normalized bit pattern.
    FloatBits(u64),
    /// String key.
    Str(String),
    /// Composite key over several columns.
    Composite(Vec<HashKey>),
}

impl HashKey {
    /// Normalize a single value. Lists and byte blobs are rejected: neither
    /// engine supports them as join keys.
    pub fn from_value(v: &Value) -> DataResult<HashKey> {
        Ok(match v {
            Value::Null => HashKey::Null,
            Value::Bool(b) => HashKey::Bool(*b),
            Value::Int(i) => HashKey::Int(*i),
            Value::Float(x) => {
                let normalized = if x.is_nan() {
                    f64::NAN.to_bits()
                } else if *x == 0.0 {
                    0.0f64.to_bits()
                } else {
                    x.to_bits()
                };
                HashKey::FloatBits(normalized)
            }
            Value::Str(s) => HashKey::Str(s.clone()),
            Value::Bytes(_) | Value::List(_) => {
                return Err(DataError::UnhashableKey {
                    dtype: v.dtype().to_string(),
                })
            }
        })
    }

    /// Extract a composite key from the named columns of a tuple.
    pub fn from_tuple(tuple: &Tuple, columns: &[&str]) -> DataResult<HashKey> {
        if columns.len() == 1 {
            return HashKey::from_value(tuple.get(columns[0])?);
        }
        let mut parts = Vec::with_capacity(columns.len());
        for c in columns {
            parts.push(HashKey::from_value(tuple.get(c)?)?);
        }
        Ok(HashKey::Composite(parts))
    }

    /// Extract a composite key by pre-resolved column indices.
    ///
    /// The per-tuple fast path for partitioning and joins: callers resolve
    /// column names against the schema once (e.g. when a workflow edge is
    /// compiled) and then key every tuple without any name lookups.
    /// Indices must be in range for the tuple's schema.
    pub fn from_tuple_indexed(tuple: &Tuple, indices: &[usize]) -> DataResult<HashKey> {
        if indices.len() == 1 {
            return HashKey::from_value(tuple.at(indices[0]));
        }
        let mut parts = Vec::with_capacity(indices.len());
        for &i in indices {
            parts.push(HashKey::from_value(tuple.at(i))?);
        }
        Ok(HashKey::Composite(parts))
    }

    /// A stable bucket index in `0..n` for partitioning.
    ///
    /// Uses an FNV-1a style fold over the key's own `Hash` impl so the
    /// assignment is identical across runs and platforms — partitioning
    /// determinism is load-bearing for reproducible experiments.
    pub fn bucket(&self, n: usize) -> usize {
        assert!(n > 0, "bucket count must be positive");
        let mut h = Fnv1a::default();
        self.hash(&mut h);
        (h.finish() % n as u64) as usize
    }

    /// Like [`HashKey::bucket`], but salted: folding a different `salt`
    /// into the hash yields an independent partition assignment. Recursive
    /// spill partitioning relies on this — a partition whose keys all
    /// collided under one salt splits under the next.
    pub fn bucket_salted(&self, salt: u64, n: usize) -> usize {
        assert!(n > 0, "bucket count must be positive");
        let mut h = Fnv1a::default();
        h.write(&salt.to_le_bytes());
        self.hash(&mut h);
        (h.finish() % n as u64) as usize
    }
}

/// Minimal deterministic FNV-1a hasher (std's default hasher is seeded per
/// process, which would make partition assignment nondeterministic).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn float_normalization() {
        let pos_zero = HashKey::from_value(&Value::Float(0.0)).unwrap();
        let neg_zero = HashKey::from_value(&Value::Float(-0.0)).unwrap();
        assert_eq!(pos_zero, neg_zero);
        let nan1 = HashKey::from_value(&Value::Float(f64::NAN)).unwrap();
        let nan2 = HashKey::from_value(&Value::Float(-f64::NAN)).unwrap();
        assert_eq!(nan1, nan2);
    }

    #[test]
    fn unhashable_types_rejected() {
        assert!(HashKey::from_value(&Value::List(vec![])).is_err());
        assert!(HashKey::from_value(&Value::Bytes(bytes::Bytes::new())).is_err());
    }

    #[test]
    fn composite_from_tuple() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let t = Tuple::new(s, vec![Value::Int(1), Value::Str("x".into())]).unwrap();
        let single = HashKey::from_tuple(&t, &["a"]).unwrap();
        assert_eq!(single, HashKey::Int(1));
        let comp = HashKey::from_tuple(&t, &["a", "b"]).unwrap();
        assert_eq!(
            comp,
            HashKey::Composite(vec![HashKey::Int(1), HashKey::Str("x".into())])
        );
    }

    #[test]
    fn indexed_matches_named() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let t = Tuple::new(s, vec![Value::Int(7), Value::Str("y".into())]).unwrap();
        assert_eq!(
            HashKey::from_tuple_indexed(&t, &[0]).unwrap(),
            HashKey::from_tuple(&t, &["a"]).unwrap()
        );
        assert_eq!(
            HashKey::from_tuple_indexed(&t, &[0, 1]).unwrap(),
            HashKey::from_tuple(&t, &["a", "b"]).unwrap()
        );
        assert_eq!(
            HashKey::from_tuple_indexed(&t, &[1, 0]).unwrap(),
            HashKey::from_tuple(&t, &["b", "a"]).unwrap()
        );
    }

    #[test]
    fn bucket_is_deterministic_and_in_range() {
        for i in 0..100i64 {
            let k = HashKey::Int(i);
            let b1 = k.bucket(7);
            let b2 = k.bucket(7);
            assert_eq!(b1, b2);
            assert!(b1 < 7);
        }
        // Known pinned values guard against accidental hasher changes.
        assert_eq!(HashKey::Int(0).bucket(4), HashKey::Int(0).bucket(4));
    }

    #[test]
    fn buckets_spread() {
        let mut counts = [0usize; 4];
        for i in 0..400i64 {
            counts[HashKey::Int(i).bucket(4)] += 1;
        }
        // Every bucket gets a reasonable share (no pathological skew).
        for c in counts {
            assert!(c > 40, "bucket starved: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bucket count must be positive")]
    fn bucket_zero_panics() {
        HashKey::Int(1).bucket(0);
    }

    #[test]
    fn salted_buckets_are_deterministic_and_independent() {
        for i in 0..50i64 {
            let k = HashKey::Int(i);
            assert_eq!(k.bucket_salted(7, 8), k.bucket_salted(7, 8));
        }
        // Different salts must split at least some keys apart, otherwise
        // recursive repartitioning could never make progress.
        let differs = (0..200i64)
            .map(HashKey::Int)
            .filter(|k| k.bucket_salted(1, 8) != k.bucket_salted(2, 8))
            .count();
        assert!(differs > 50, "salts too correlated: {differs}/200 differ");
    }
}
