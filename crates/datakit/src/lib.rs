//! # scriptflow-datakit
//!
//! Data model substrate shared by both paradigm engines.
//!
//! The paper's two systems (Texera and Jupyter/Ray) both move *tuples* of
//! typed values between processing steps. This crate provides that common
//! vocabulary:
//!
//! * [`Value`] — a dynamically typed scalar/list cell value,
//! * [`Schema`] / [`Field`] — named, typed column descriptors,
//! * [`Tuple`] — one row bound to a shared schema,
//! * [`Batch`] — a schema-homogeneous group of tuples (the unit the
//!   workflow engine pipelines),
//! * [`ColumnarBatch`] — the same data as typed column vectors with
//!   sealed per-column min/max/null statistics, the engine's fast path
//!   (zone-map batch skipping + monomorphic kernels),
//! * [`codec`] — CSV and JSONL encode/decode used by the synthetic dataset
//!   generators and by the serialization-cost accounting,
//! * [`key`] — hashable normalized key forms for joins and partitioning,
//! * [`blockstore`] — compressed blocks with stat-carrying headers grouped
//!   under segment manifests, the durable spill format blocking operators
//!   use when they outgrow their memory budget.
//!
//! Everything here is deterministic and allocation-conscious: tuple byte
//! sizes ([`Value::encoded_len`]) feed the cluster simulator's
//! serialization/network cost model, so they must be stable across runs.

#![warn(missing_docs)]

pub mod batch;
pub mod blockstore;
pub mod codec;
pub mod column;
pub mod error;
pub mod frame;
pub mod key;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{Batch, BatchBuilder, SharedBatch};
pub use blockstore::{BlockAppender, CompressedBlock, Segment, SegmentManifest};
pub use column::{BatchStats, Bitmap, CmpOp, ColStats, ColumnVec, ColumnarBatch};
pub use error::{DataError, DataResult};
pub use frame::{DataFrame, MergeHow};
pub use key::HashKey;
pub use schema::{Field, Schema, SchemaRef};
pub use tuple::{Tuple, TupleBuilder};
pub use value::{DataType, Value};
