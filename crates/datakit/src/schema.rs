//! Named, typed column descriptors.

use std::fmt;
use std::sync::Arc;

use crate::error::{DataError, DataResult};
use crate::value::DataType;

/// One column: a name and a declared type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    name: String,
    dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// Shared, immutable schema handle.
///
/// Schemas are reference-counted because every [`crate::Tuple`] points at
/// its schema; cloning a tuple must not clone column metadata.
pub type SchemaRef = Arc<Schema>;

/// An ordered collection of uniquely named [`Field`]s.
///
/// The workflow engine propagates schemas through the DAG at build time
/// (Texera's explicit data edges); the notebook engine checks them lazily
/// at run time (Jupyter's implicit kernel state). Both use this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> DataResult<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name() == f.name()) {
                return Err(DataError::DuplicateColumn {
                    column: f.name().to_owned(),
                });
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, dtype)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate names; intended for statically known schemas.
    pub fn of(cols: &[(&str, DataType)]) -> SchemaRef {
        let fields = cols
            .iter()
            .map(|(n, t)| Field::new(*n, *t))
            .collect::<Vec<_>>();
        Arc::new(Schema::new(fields).expect("static schema must not have duplicate columns"))
    }

    /// The empty schema.
    pub fn empty() -> SchemaRef {
        Arc::new(Schema { fields: Vec::new() })
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> DataResult<usize> {
        self.fields
            .iter()
            .position(|f| f.name() == name)
            .ok_or_else(|| DataError::UnknownColumn {
                column: name.to_owned(),
                schema: self.to_string(),
            })
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> DataResult<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// True if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name() == name)
    }

    /// Project to the named columns (in the given order).
    pub fn project(&self, names: &[&str]) -> DataResult<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.field(n)?.clone());
        }
        Schema::new(fields)
    }

    /// Concatenate two schemas, disambiguating right-side duplicates with a
    /// suffix — the behaviour of both Pandas' `merge` and Texera's join
    /// operator when key names collide.
    pub fn join(&self, right: &Schema, dup_suffix: &str) -> DataResult<Schema> {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            if self.contains(f.name()) {
                let renamed = format!("{}{}", f.name(), dup_suffix);
                if self.contains(&renamed) || right.contains(&renamed) {
                    return Err(DataError::DuplicateColumn { column: renamed });
                }
                fields.push(Field::new(renamed, f.dtype()));
            } else {
                fields.push(f.clone());
            }
        }
        Schema::new(fields)
    }

    /// Append one field, rejecting name collisions.
    pub fn with_field(&self, field: Field) -> DataResult<Schema> {
        if self.contains(field.name()) {
            return Err(DataError::DuplicateColumn {
                column: field.name().to_owned(),
            });
        }
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn { column: "a".into() });
    }

    #[test]
    fn index_and_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zz").is_err());
        assert_eq!(s.field("c").unwrap().dtype(), DataType::Float);
        assert!(s.contains("a"));
        assert!(!s.contains("z"));
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn project_keeps_requested_order() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.fields()[0].name(), "c");
        assert_eq!(p.fields()[1].name(), "a");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_renames_collisions() {
        let left = abc();
        let right = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("d", DataType::Str),
        ])
        .unwrap();
        let j = left.join(&right, "_r").unwrap();
        let names: Vec<_> = j.fields().iter().map(|f| f.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b", "c", "a_r", "d"]);
    }

    #[test]
    fn join_rejects_unresolvable_collision() {
        let left = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a_r", DataType::Int),
        ])
        .unwrap();
        let right = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        assert!(left.join(&right, "_r").is_err());
    }

    #[test]
    fn with_field_appends() {
        let s = abc().with_field(Field::new("d", DataType::Bool)).unwrap();
        assert_eq!(s.arity(), 4);
        assert!(abc().with_field(Field::new("a", DataType::Bool)).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(abc().to_string(), "a: Int, b: Str, c: Float");
    }
}
