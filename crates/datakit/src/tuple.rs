//! A single row bound to a shared schema.

use std::fmt;

use crate::error::{DataError, DataResult};
use crate::schema::SchemaRef;
use crate::value::Value;

/// One row: a schema handle plus one [`Value`] per column.
///
/// Tuples are the unit of data the workflow engine pushes along DAG edges
/// and the unit the paper's Fig. 9 counts per operator. Cloning a tuple
/// clones values but shares the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    schema: SchemaRef,
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple, validating arity and per-column types.
    pub fn new(schema: SchemaRef, values: Vec<Value>) -> DataResult<Self> {
        if values.len() != schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: schema.arity(),
                actual: values.len(),
            });
        }
        for (field, value) in schema.fields().iter().zip(&values) {
            if !value.conforms_to(field.dtype()) {
                return Err(DataError::TypeMismatch {
                    column: field.name().to_owned(),
                    expected: field.dtype().to_string(),
                    actual: value.dtype().to_string(),
                });
            }
        }
        Ok(Tuple { schema, values })
    }

    /// Build without validation. Used on hot paths where the producer has
    /// already proven conformance (e.g. operators whose output schema was
    /// checked at DAG-build time).
    pub fn new_unchecked(schema: SchemaRef, values: Vec<Value>) -> Self {
        debug_assert_eq!(values.len(), schema.arity());
        Tuple { schema, values }
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at column index.
    pub fn at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of the named column.
    pub fn get(&self, name: &str) -> DataResult<&Value> {
        Ok(&self.values[self.schema.index_of(name)?])
    }

    /// String value of the named column (error if absent; `None` if null,
    /// `Some` otherwise — callers that require a string use `?` twice).
    pub fn get_str(&self, name: &str) -> DataResult<&str> {
        let v = self.get(name)?;
        v.as_str().ok_or_else(|| DataError::TypeMismatch {
            column: name.to_owned(),
            expected: "Str".into(),
            actual: v.dtype().to_string(),
        })
    }

    /// Integer value of the named column.
    pub fn get_int(&self, name: &str) -> DataResult<i64> {
        let v = self.get(name)?;
        v.as_int().ok_or_else(|| DataError::TypeMismatch {
            column: name.to_owned(),
            expected: "Int".into(),
            actual: v.dtype().to_string(),
        })
    }

    /// Float value of the named column (integers widen).
    pub fn get_float(&self, name: &str) -> DataResult<f64> {
        let v = self.get(name)?;
        v.as_float().ok_or_else(|| DataError::TypeMismatch {
            column: name.to_owned(),
            expected: "Float".into(),
            actual: v.dtype().to_string(),
        })
    }

    /// Deterministic wire size of the whole tuple, used for serde/network
    /// cost accounting.
    pub fn encoded_len(&self) -> usize {
        self.values.iter().map(Value::encoded_len).sum()
    }

    /// Concatenate with another tuple under a pre-computed joined schema.
    pub fn concat(&self, other: &Tuple, joined: SchemaRef) -> DataResult<Tuple> {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(joined, values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Incremental tuple construction against a schema, by column name.
///
/// Any column left unset becomes [`Value::Null`].
pub struct TupleBuilder {
    schema: SchemaRef,
    values: Vec<Value>,
}

impl TupleBuilder {
    /// Start building a tuple for `schema` with all columns null.
    pub fn new(schema: SchemaRef) -> Self {
        let values = vec![Value::Null; schema.arity()];
        TupleBuilder { schema, values }
    }

    /// Set the named column.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> DataResult<Self> {
        let idx = self.schema.index_of(name)?;
        self.values[idx] = value.into();
        Ok(self)
    }

    /// Finish, validating types.
    pub fn build(self) -> DataResult<Tuple> {
        Tuple::new(self.schema, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    fn t() -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Int(7), Value::Str("ada".into()), Value::Float(0.5)],
        )
        .unwrap()
    }

    #[test]
    fn validates_arity() {
        let err = Tuple::new(schema(), vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            DataError::ArityMismatch {
                expected: 3,
                actual: 1
            }
        );
    }

    #[test]
    fn validates_types() {
        let err = Tuple::new(
            schema(),
            vec![Value::Str("x".into()), Value::Str("y".into()), Value::Null],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { column, .. } if column == "id"));
    }

    #[test]
    fn null_is_allowed_anywhere() {
        let tup = Tuple::new(schema(), vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert!(tup.at(0).is_null());
    }

    #[test]
    fn typed_getters() {
        let tup = t();
        assert_eq!(tup.get_int("id").unwrap(), 7);
        assert_eq!(tup.get_str("name").unwrap(), "ada");
        assert_eq!(tup.get_float("score").unwrap(), 0.5);
        assert!(tup.get_int("name").is_err());
        assert!(tup.get("missing").is_err());
    }

    #[test]
    fn int_widens_to_float() {
        let s = Schema::of(&[("x", DataType::Float)]);
        // Int stored in a Float column is a type error at construction...
        assert!(Tuple::new(s.clone(), vec![Value::Int(3)]).is_err());
        // ...but get_float widens Int columns.
        let s2 = Schema::of(&[("x", DataType::Int)]);
        let tup = Tuple::new(s2, vec![Value::Int(3)]).unwrap();
        assert_eq!(tup.get_float("x").unwrap(), 3.0);
    }

    #[test]
    fn encoded_len_sums_values() {
        let tup = t();
        assert_eq!(
            tup.encoded_len(),
            Value::Int(7).encoded_len()
                + Value::Str("ada".into()).encoded_len()
                + Value::Float(0.5).encoded_len()
        );
    }

    #[test]
    fn concat_under_joined_schema() {
        let left = t();
        let rs = Schema::of(&[("tag", DataType::Str)]);
        let right = Tuple::new(rs.clone(), vec![Value::Str("x".into())]).unwrap();
        let joined = std::sync::Arc::new(left.schema().join(&rs, "_r").unwrap());
        let c = left.concat(&right, joined).unwrap();
        assert_eq!(c.values().len(), 4);
        assert_eq!(c.get_str("tag").unwrap(), "x");
    }

    #[test]
    fn builder_defaults_to_null() {
        let tup = TupleBuilder::new(schema())
            .set("id", 1i64)
            .unwrap()
            .build()
            .unwrap();
        assert!(tup.get("name").unwrap().is_null());
        assert_eq!(tup.get_int("id").unwrap(), 1);
    }

    #[test]
    fn builder_rejects_unknown_column() {
        assert!(TupleBuilder::new(schema()).set("nope", 1i64).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(t().to_string(), "(7, ada, 0.5)");
    }
}
