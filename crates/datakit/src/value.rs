//! Dynamically typed cell values.

use std::fmt;

/// The type of a [`Value`], used in [`crate::Schema`] declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Absence of a value; compatible with every other type.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Raw bytes (used for model blobs and serialized payloads).
    Bytes,
    /// Homogeneous list of values (element type is not tracked).
    List,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "Null",
            DataType::Bool => "Bool",
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Bytes => "Bytes",
            DataType::List => "List",
        };
        f.write_str(s)
    }
}

/// A dynamically typed value held in a tuple cell.
///
/// Values carry their own encoded length ([`Value::encoded_len`]) so the
/// cluster simulator can charge serialization and network costs that are a
/// deterministic function of the data, matching how the paper's Texera
/// deployment pays per-tuple serde overhead between operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(bytes::Bytes),
    /// List of values.
    List(Vec<Value>),
}

impl Value {
    /// The [`DataType`] of this value.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bytes(_) => DataType::Bytes,
            Value::List(_) => DataType::List,
        }
    }

    /// Whether this value may be stored in a column declared as `dtype`.
    ///
    /// `Null` is compatible with every column type.
    pub fn conforms_to(&self, dtype: DataType) -> bool {
        matches!(self, Value::Null) || self.dtype() == dtype
    }

    /// Deterministic wire size of this value in bytes.
    ///
    /// This is the size charged by the serde/network cost model: a small
    /// fixed header per value plus the payload. The exact encoding does not
    /// matter for the experiments, only that it is stable and roughly
    /// proportional to real encodings.
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 1;
        HEADER
            + match self {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 8,
                Value::Float(_) => 8,
                Value::Str(s) => 4 + s.len(),
                Value::Bytes(b) => 4 + b.len(),
                Value::List(vs) => 4 + vs.iter().map(Value::encoded_len).sum::<usize>(),
            }
    }

    /// Borrow as `&str`, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an `i64`, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract an `f64`, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a `bool`, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the element slice, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }

    /// Borrow the payload, if this is a bytes value.
    pub fn as_bytes(&self) -> Option<&bytes::Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `Display` writes a human-readable rendering used by the GUI dump and by
/// error messages; it is *not* the wire encoding.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(vs) => {
                f.write_str("[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<bytes::Bytes> for Value {
    fn from(b: bytes::Bytes) -> Self {
        Value::Bytes(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(vs: Vec<Value>) -> Self {
        Value::List(vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_roundtrip() {
        assert_eq!(Value::Int(3).dtype(), DataType::Int);
        assert_eq!(Value::Str("x".into()).dtype(), DataType::Str);
        assert_eq!(Value::Null.dtype(), DataType::Null);
        assert_eq!(Value::List(vec![]).dtype(), DataType::List);
    }

    #[test]
    fn null_conforms_everywhere() {
        for dt in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bytes,
            DataType::List,
        ] {
            assert!(Value::Null.conforms_to(dt));
        }
        assert!(!Value::Int(1).conforms_to(DataType::Str));
        assert!(Value::Int(1).conforms_to(DataType::Int));
    }

    #[test]
    fn encoded_len_is_stable_and_monotone() {
        assert_eq!(Value::Null.encoded_len(), 1);
        assert_eq!(Value::Int(0).encoded_len(), 9);
        assert_eq!(Value::Int(i64::MAX).encoded_len(), 9);
        let short = Value::Str("ab".into()).encoded_len();
        let long = Value::Str("abcdef".into()).encoded_len();
        assert!(long > short);
        let list = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(list.encoded_len(), 1 + 4 + 9 + 9);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Str("hi".into()).as_int().is_none());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
        assert_eq!(
            Value::Bytes(bytes::Bytes::from_static(b"abc")).to_string(),
            "<3 bytes>"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
