//! Multi-label classification via an ensemble of binary models.
//!
//! WEF (§II-B) "fine-tunes four pre-trained BERT models to classify
//! whether each tweet belonged to a given framing" — an ensemble of
//! independent binary classifiers, one per label. This is that structure
//! over the real logistic-regression models.

use crate::logreg::{LogisticRegression, TrainConfig};
use crate::sparse::SparseVector;
use crate::tfidf::TfIdfVectorizer;

/// A trained multi-label model: one binary head per label.
#[derive(Debug, Clone)]
pub struct MultiLabelModel {
    labels: Vec<String>,
    vectorizer: TfIdfVectorizer,
    heads: Vec<LogisticRegression>,
}

impl MultiLabelModel {
    /// Train one binary head per label.
    ///
    /// `examples` are `(text, active-labels)` pairs; `labels` fixes the
    /// label order. Each head trains on the same features with its own
    /// binary targets (and its own seed, like the paper's four separate
    /// fine-tuning runs).
    pub fn fit(
        labels: &[&str],
        examples: &[(String, Vec<String>)],
        base: TrainConfig,
    ) -> Self {
        assert!(!labels.is_empty(), "need at least one label");
        assert!(!examples.is_empty(), "cannot train on an empty dataset");
        let vectorizer = TfIdfVectorizer::fit(examples.iter().map(|(t, _)| t.as_str()));
        let xs: Vec<SparseVector> = examples
            .iter()
            .map(|(t, _)| vectorizer.transform(t))
            .collect();
        let heads = labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let ys: Vec<bool> = examples
                    .iter()
                    .map(|(_, active)| active.iter().any(|l| l == label))
                    .collect();
                LogisticRegression::fit(
                    vectorizer.dim(),
                    &xs,
                    &ys,
                    TrainConfig {
                        seed: base.seed.wrapping_add(i as u64),
                        ..base
                    },
                )
            })
            .collect();
        MultiLabelModel {
            labels: labels.iter().map(|s| (*s).to_owned()).collect(),
            vectorizer,
            heads,
        }
    }

    /// Label names, in head order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Per-label probabilities for a text.
    pub fn predict_proba(&self, text: &str) -> Vec<(String, f32)> {
        let x = self.vectorizer.transform(text);
        self.labels
            .iter()
            .zip(&self.heads)
            .map(|(l, h)| (l.clone(), h.predict_proba(&x)))
            .collect()
    }

    /// Labels whose head fires at threshold 0.5.
    pub fn predict(&self, text: &str) -> Vec<String> {
        self.predict_proba(text)
            .into_iter()
            .filter(|(_, p)| *p >= 0.5)
            .map(|(l, _)| l)
            .collect()
    }

    /// Approximate model size in bytes (all heads + vocabulary), for
    /// object-store accounting.
    pub fn approx_bytes(&self) -> u64 {
        self.heads.iter().map(|h| h.approx_bytes()).sum::<u64>()
            + (self.vectorizer.dim() * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(String, Vec<String>)> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push((
                format!("wildfire smoke climate change event {i}"),
                vec!["climate_link".to_owned()],
            ));
            v.push((
                format!("government must act on emissions now {i}"),
                vec!["climate_action".to_owned()],
            ));
            v.push((
                format!("wildfire smoke and emissions action {i}"),
                vec!["climate_link".to_owned(), "climate_action".to_owned()],
            ));
            v.push((format!("just a nice sunny day {i}"), vec!["not_relevant".to_owned()]));
        }
        v
    }

    const LABELS: [&str; 3] = ["climate_link", "climate_action", "not_relevant"];

    #[test]
    fn learns_multi_label_structure() {
        let model = MultiLabelModel::fit(&LABELS, &examples(), TrainConfig::default());
        let both = model.predict("wildfire smoke and emissions action today");
        assert!(both.contains(&"climate_link".to_owned()), "{both:?}");
        assert!(both.contains(&"climate_action".to_owned()), "{both:?}");
        let none = model.predict("a nice sunny day outside");
        assert!(none.contains(&"not_relevant".to_owned()), "{none:?}");
    }

    #[test]
    fn proba_covers_every_label() {
        let model = MultiLabelModel::fit(&LABELS, &examples(), TrainConfig::default());
        let probs = model.predict_proba("anything");
        assert_eq!(probs.len(), 3);
        for (_, p) in probs {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_training() {
        let a = MultiLabelModel::fit(&LABELS, &examples(), TrainConfig::default());
        let b = MultiLabelModel::fit(&LABELS, &examples(), TrainConfig::default());
        assert_eq!(
            a.predict_proba("wildfire climate"),
            b.predict_proba("wildfire climate")
        );
    }

    #[test]
    fn heads_differ_across_labels() {
        let model = MultiLabelModel::fit(&LABELS, &examples(), TrainConfig::default());
        let probs = model.predict_proba("wildfire smoke climate change");
        let link = probs.iter().find(|(l, _)| l == "climate_link").unwrap().1;
        let nr = probs.iter().find(|(l, _)| l == "not_relevant").unwrap().1;
        assert!(link > nr);
    }
}
