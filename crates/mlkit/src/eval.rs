//! Evaluation metrics.

/// Fraction of predictions equal to their gold label.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn accuracy<T: PartialEq>(pred: &[T], gold: &[T]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty set");
    let correct = pred.iter().zip(gold).filter(|(p, g)| p == g).count();
    correct as f64 / pred.len() as f64
}

/// Binary F1 over boolean predictions.
///
/// Returns 0 when there are no predicted or no actual positives.
pub fn f1_binary(pred: &[bool], gold: &[bool]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
    let tp = pred.iter().zip(gold).filter(|(p, g)| **p && **g).count() as f64;
    let fp = pred.iter().zip(gold).filter(|(p, g)| **p && !**g).count() as f64;
    let fne = pred.iter().zip(gold).filter(|(p, g)| !**p && **g).count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fne);
    2.0 * precision * recall / (precision + recall)
}

/// Exact-match rate for QA: case-insensitive token equality.
pub fn exact_match(pred: &[String], gold: &[String]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty set");
    let hits = pred
        .iter()
        .zip(gold)
        .filter(|(p, g)| p.trim().eq_ignore_ascii_case(g.trim()))
        .count();
    hits as f64 / pred.len() as f64
}

/// Hits@k for ranking: 1 if the gold id appears in the top-k list.
pub fn hits_at_k(ranked: &[i64], gold: i64, k: usize) -> bool {
    ranked.iter().take(k).any(|&id| id == gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[true], &[true]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_check() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        assert_eq!(f1_binary(&[true, false], &[true, false]), 1.0);
        assert_eq!(f1_binary(&[false, false], &[true, false]), 0.0);
        assert_eq!(f1_binary(&[true, true], &[false, false]), 0.0);
    }

    #[test]
    fn f1_mixed() {
        // tp=1, fp=1, fn=1 → p=0.5, r=0.5 → f1=0.5
        let f1 = f1_binary(&[true, true, false], &[true, false, true]);
        assert!((f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn exact_match_is_case_insensitive() {
        let pred = vec!["Fever".to_owned(), "cough ".to_owned(), "x".to_owned()];
        let gold = vec!["fever".to_owned(), "cough".to_owned(), "y".to_owned()];
        assert!((exact_match(&pred, &gold) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hits_at_k_cutoff() {
        let ranked = vec![5, 3, 9, 1];
        assert!(hits_at_k(&ranked, 9, 3));
        assert!(!hits_at_k(&ranked, 1, 3));
        assert!(hits_at_k(&ranked, 1, 4));
    }
}
