//! Knowledge-graph embeddings and TransE-style scoring.
//!
//! The KGE task (§II-D) loads an embedding table, matches products to
//! embeddings, scores them against a user, ranks, and reverse-looks-up
//! the winners. These are those pieces, real and deterministic.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense embedding table: entity id → vector.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    vectors: HashMap<i64, Vec<f32>>,
}

impl EmbeddingTable {
    /// An empty table of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            dim,
            vectors: HashMap::new(),
        }
    }

    /// A table with seeded random unit vectors for `ids`.
    pub fn random(dim: usize, ids: impl IntoIterator<Item = i64>, seed: u64) -> Self {
        let mut t = EmbeddingTable::new(dim);
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            t.insert(id, v);
        }
        t
    }

    /// Insert a vector.
    ///
    /// # Panics
    /// Panics if the vector has the wrong dimensionality.
    pub fn insert(&mut self, id: i64, vector: Vec<f32>) {
        assert_eq!(vector.len(), self.dim, "wrong embedding dimension");
        self.vectors.insert(id, vector);
    }

    /// Look up a vector.
    pub fn get(&self, id: i64) -> Option<&[f32]> {
        self.vectors.get(&id).map(Vec::as_slice)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if no entities are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Approximate serialized size in bytes (id + f32 vector per entity).
    pub fn approx_bytes(&self) -> u64 {
        (self.vectors.len() * (8 + self.dim * 4)) as u64
    }
}

/// TransE-style scorer: `score(u, r, p) = -‖u + r − p‖₂`. Higher is a
/// better match ("the user, moved by the purchase relation, lands near
/// the product").
#[derive(Debug, Clone)]
pub struct KgeScorer {
    user: Vec<f32>,
    relation: Vec<f32>,
}

impl KgeScorer {
    /// Scorer for one user and one relation vector.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn new(user: Vec<f32>, relation: Vec<f32>) -> Self {
        assert_eq!(user.len(), relation.len(), "dimension mismatch");
        KgeScorer { user, relation }
    }

    /// Score one product embedding.
    pub fn score(&self, product: &[f32]) -> f32 {
        assert_eq!(product.len(), self.user.len(), "dimension mismatch");
        let mut dist2 = 0.0f32;
        for ((u, r), p) in self.user.iter().zip(&self.relation).zip(product) {
            let d = u + r - p;
            dist2 += d * d;
        }
        -dist2.sqrt()
    }

    /// Rank `(id, embedding)` candidates; returns the top-`k` ids with
    /// scores, best first. Ties break by id for determinism.
    pub fn top_k<'a>(
        &self,
        candidates: impl IntoIterator<Item = (i64, &'a [f32])>,
        k: usize,
    ) -> Vec<(i64, f32)> {
        let mut scored: Vec<(i64, f32)> = candidates
            .into_iter()
            .map(|(id, e)| (id, self.score(e)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }
}

/// Reverse lookup: entity id → display name (the KGE task's final step).
#[derive(Debug, Clone, Default)]
pub struct ReverseLookup {
    names: HashMap<i64, String>,
}

impl ReverseLookup {
    /// Build from `(id, name)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, String)>) -> Self {
        ReverseLookup {
            names: pairs.into_iter().collect(),
        }
    }

    /// Resolve an id.
    pub fn name(&self, id: i64) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }

    /// Number of known entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_table_is_deterministic_and_unit_norm() {
        let a = EmbeddingTable::random(8, 0..10, 42);
        let b = EmbeddingTable::random(8, 0..10, 42);
        for id in 0..10 {
            assert_eq!(a.get(id), b.get(id));
            let n: f32 = a.get(id).unwrap().iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
        let c = EmbeddingTable::random(8, 0..10, 43);
        assert_ne!(a.get(0), c.get(0));
    }

    #[test]
    fn scorer_prefers_exact_translation() {
        let user = vec![1.0, 0.0];
        let rel = vec![0.0, 1.0];
        let scorer = KgeScorer::new(user, rel);
        // Perfect product: u + r = (1, 1).
        assert_eq!(scorer.score(&[1.0, 1.0]), 0.0);
        assert!(scorer.score(&[1.0, 1.0]) > scorer.score(&[0.0, 0.0]));
    }

    #[test]
    fn top_k_matches_full_sort() {
        let scorer = KgeScorer::new(vec![0.5, 0.5], vec![0.1, -0.2]);
        let table = EmbeddingTable::random(2, 0..100, 7);
        let all: Vec<(i64, f32)> = scorer.top_k(
            (0..100).map(|id| (id, table.get(id).unwrap())),
            100,
        );
        let top5 = scorer.top_k((0..100).map(|id| (id, table.get(id).unwrap())), 5);
        assert_eq!(&all[..5], &top5[..]);
        // Scores weakly decreasing.
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn reverse_lookup() {
        let rl = ReverseLookup::from_pairs([(1, "Espresso Maker".to_owned()), (2, "Novel".to_owned())]);
        assert_eq!(rl.name(1), Some("Espresso Maker"));
        assert_eq!(rl.name(9), None);
        assert_eq!(rl.len(), 2);
    }

    #[test]
    fn approx_bytes_scales() {
        let small = EmbeddingTable::random(4, 0..10, 1);
        let big = EmbeddingTable::random(4, 0..1000, 1);
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "wrong embedding dimension")]
    fn wrong_dim_insert_panics() {
        EmbeddingTable::new(4).insert(0, vec![1.0]);
    }
}
