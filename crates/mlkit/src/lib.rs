//! # scriptflow-mlkit
//!
//! ML substrate for the four paper tasks.
//!
//! The paper's tasks fine-tune BERT (WEF), run a fine-tuned BART (GOTTA),
//! and score knowledge-graph embeddings (KGE). Shipping those PyTorch
//! models is impossible here, so this crate follows the substitution rule
//! in two layers:
//!
//! 1. **Real, trainable lightweight models** — a tokenizer, TF-IDF
//!    vectorizer, SGD logistic regression, a multi-label ensemble, an
//!    extractive cloze answerer, and a TransE-style embedding scorer.
//!    These produce *real* outputs that the correctness tests compare
//!    across paradigms.
//! 2. **Calibrated cost descriptors** — [`transformer::ModelProfile`]
//!    records the virtual size/compute of the paper's heavyweight models
//!    (e.g. GOTTA's 1.59 GB BART) so the timing experiments charge what
//!    the real models would.
//!
//! Everything is seeded and deterministic.

#![warn(missing_docs)]

pub mod ensemble;
pub mod eval;
pub mod kge;
pub mod logreg;
pub mod naive_bayes;
pub mod sparse;
pub mod split;
pub mod text;
pub mod tfidf;
pub mod transformer;

pub use ensemble::MultiLabelModel;
pub use eval::{accuracy, exact_match, f1_binary, hits_at_k};
pub use kge::{EmbeddingTable, KgeScorer};
pub use logreg::LogisticRegression;
pub use naive_bayes::{macro_f1, ConfusionMatrix, NaiveBayes};
pub use split::{kfold, train_test_split};
pub use sparse::SparseVector;
pub use text::{tokenize, Vocabulary};
pub use tfidf::TfIdfVectorizer;
pub use transformer::{ClozeAnswerer, ModelProfile};
