//! Binary logistic regression trained with SGD.
//!
//! The real, trainable model standing in for the paper's BERT binary
//! classifiers: the WEF task fine-tunes four of these over TF-IDF
//! features. Training is seeded and fully deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sparse::SparseVector;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 0.5,
            l2: 1e-4,
            seed: 7,
        }
    }
}

/// A trained binary classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Train on `(x, y)` pairs; `dim` is the feature width.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` differ in length or are empty.
    pub fn fit(dim: usize, xs: &[SparseVector], ys: &[bool], config: TrainConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        let mut weights = vec![0.0f32; dim];
        let mut bias = 0.0f32;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0f32 } else { 0.0 };
                let p = sigmoid(x.dot_dense(&weights) + bias);
                let err = p - y;
                for &(idx, v) in x.entries() {
                    let w = &mut weights[idx as usize];
                    *w -= config.lr * (err * v + config.l2 * *w);
                }
                bias -= config.lr * err;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, x: &SparseVector) -> f32 {
        sigmoid(x.dot_dense(&self.weights) + self.bias)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, x: &SparseVector) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Approximate in-memory size in bytes (weights + bias), used for
    /// object-store accounting.
    pub fn approx_bytes(&self) -> u64 {
        (self.weights.len() * 4 + 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::TfIdfVectorizer;

    /// A linearly separable toy problem: positive iff feature 0 present.
    fn toy() -> (Vec<SparseVector>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let pos = i % 2 == 0;
            let mut pairs = vec![(1 + (i % 5) as u32, 0.5f32)];
            if pos {
                pairs.push((0, 1.0));
            }
            xs.push(SparseVector::from_pairs(pairs));
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_problem() {
        let (xs, ys) = toy();
        let model = LogisticRegression::fit(6, &xs, &ys, TrainConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| model.predict(x) == **y)
            .count();
        assert_eq!(correct, xs.len(), "separable problem must be learned");
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = toy();
        let a = LogisticRegression::fit(6, &xs, &ys, TrainConfig::default());
        let b = LogisticRegression::fit(6, &xs, &ys, TrainConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn different_seed_different_path() {
        let (xs, ys) = toy();
        let a = LogisticRegression::fit(6, &xs, &ys, TrainConfig::default());
        let b = LogisticRegression::fit(
            6,
            &xs,
            &ys,
            TrainConfig {
                seed: 99,
                ..TrainConfig::default()
            },
        );
        assert_ne!(a.weights, b.weights);
    }

    #[test]
    fn works_on_real_text_features() {
        let docs = [
            "wildfire caused by climate change",
            "climate change drives wildfires",
            "cute cat video compilation",
            "my cat sleeps all day",
        ];
        let labels = [true, true, false, false];
        let vec = TfIdfVectorizer::fit(docs);
        let xs = vec.transform_all(docs);
        let model = LogisticRegression::fit(vec.dim(), &xs, &labels, TrainConfig::default());
        assert!(model.predict(&vec.transform("climate change and wildfire smoke")));
        assert!(!model.predict(&vec.transform("a sleepy cat")));
    }

    #[test]
    #[should_panic(expected = "features and labels must align")]
    fn mismatched_lengths_panic() {
        LogisticRegression::fit(2, &[SparseVector::new()], &[], TrainConfig::default());
    }
}
