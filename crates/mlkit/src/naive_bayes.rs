//! Multinomial Naive Bayes text classifier.
//!
//! A second real model family next to the logistic ensemble: fast to
//! train, fully deterministic, and a useful baseline in the examples and
//! tests (the paper's tasks routinely compare model families).

use std::collections::HashMap;

use crate::text::Vocabulary;

/// A trained multinomial Naive Bayes classifier with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    vocab: Vocabulary,
    classes: Vec<String>,
    /// Per class: log prior.
    log_prior: Vec<f64>,
    /// Per class: per-token log likelihood (dense over the vocabulary).
    log_likelihood: Vec<Vec<f64>>,
}

impl NaiveBayes {
    /// Train on `(text, class-label)` pairs.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit(examples: &[(String, String)]) -> Self {
        assert!(!examples.is_empty(), "cannot train on an empty dataset");
        let vocab = Vocabulary::fit(examples.iter().map(|(t, _)| t.as_str()));

        // Stable class order: first appearance.
        let mut classes: Vec<String> = Vec::new();
        for (_, c) in examples {
            if !classes.contains(c) {
                classes.push(c.clone());
            }
        }

        let mut class_counts = vec![0usize; classes.len()];
        let mut token_counts: Vec<Vec<f64>> = vec![vec![0.0; vocab.len()]; classes.len()];
        for (text, label) in examples {
            let ci = classes.iter().position(|c| c == label).expect("collected");
            class_counts[ci] += 1;
            for id in vocab.encode(text) {
                token_counts[ci][id as usize] += 1.0;
            }
        }

        let n = examples.len() as f64;
        let log_prior = class_counts
            .iter()
            .map(|&c| (c as f64 / n).ln())
            .collect();
        let v = vocab.len() as f64;
        let log_likelihood = token_counts
            .into_iter()
            .map(|counts| {
                let total: f64 = counts.iter().sum();
                counts
                    .into_iter()
                    .map(|c| ((c + 1.0) / (total + v)).ln())
                    .collect()
            })
            .collect();

        NaiveBayes {
            vocab,
            classes,
            log_prior,
            log_likelihood,
        }
    }

    /// Class labels in model order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Per-class log joint scores for a text (unknown tokens ignored).
    pub fn log_scores(&self, text: &str) -> Vec<(String, f64)> {
        let ids: Vec<u32> = self.vocab.encode(text);
        self.classes
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let mut score = self.log_prior[ci];
                for id in &ids {
                    score += self.log_likelihood[ci][*id as usize];
                }
                (c.clone(), score)
            })
            .collect()
    }

    /// The most likely class (ties break by model order).
    pub fn predict(&self, text: &str) -> &str {
        let scores = self.log_scores(text);
        let mut best = 0usize;
        for (i, (_, s)) in scores.iter().enumerate() {
            if *s > scores[best].1 {
                best = i;
            }
        }
        &self.classes[best]
    }
}

/// Macro-averaged F1 over multi-class string predictions.
pub fn macro_f1(pred: &[&str], gold: &[&str]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty set");
    let mut classes: Vec<&str> = gold.to_vec();
    classes.sort_unstable();
    classes.dedup();

    let mut f1_sum = 0.0;
    for class in &classes {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fne = 0.0;
        for (p, g) in pred.iter().zip(gold) {
            match (p == class, g == class) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fne += 1.0,
                _ => {}
            }
        }
        if tp > 0.0 {
            let precision = tp / (tp + fp);
            let recall = tp / (tp + fne);
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    f1_sum / classes.len() as f64
}

/// A confusion matrix over string labels.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    counts: HashMap<(usize, usize), usize>,
}

impl ConfusionMatrix {
    /// Build from aligned predictions and gold labels.
    pub fn build(pred: &[&str], gold: &[&str]) -> Self {
        assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
        let mut labels: Vec<String> = pred
            .iter()
            .chain(gold)
            .map(|s| (*s).to_owned())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        let index = |l: &str| labels.iter().position(|x| x == l).expect("collected");
        let mut counts = HashMap::new();
        for (p, g) in pred.iter().zip(gold) {
            *counts.entry((index(g), index(p))).or_insert(0) += 1;
        }
        ConfusionMatrix { labels, counts }
    }

    /// Count of (gold, predicted) pairs.
    pub fn count(&self, gold: &str, pred: &str) -> usize {
        let g = self.labels.iter().position(|x| x == gold);
        let p = self.labels.iter().position(|x| x == pred);
        match (g, p) {
            (Some(g), Some(p)) => *self.counts.get(&(g, p)).unwrap_or(&0),
            _ => 0,
        }
    }

    /// The label set, sorted.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Total correct predictions (matrix trace).
    pub fn trace(&self) -> usize {
        (0..self.labels.len())
            .map(|i| *self.counts.get(&(i, i)).unwrap_or(&0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(String, String)> {
        let mut v = Vec::new();
        for i in 0..8 {
            v.push((format!("wildfire smoke and climate change {i}"), "climate".to_owned()));
            v.push((format!("the cat sat on the sofa {i}"), "pets".to_owned()));
            v.push((format!("election results and parliament votes {i}"), "politics".to_owned()));
        }
        v
    }

    #[test]
    fn learns_and_predicts() {
        let model = NaiveBayes::fit(&examples());
        assert_eq!(model.predict("smoke from the wildfire"), "climate");
        assert_eq!(model.predict("my cat on the sofa"), "pets");
        assert_eq!(model.predict("parliament election"), "politics");
        assert_eq!(model.classes().len(), 3);
    }

    #[test]
    fn scores_cover_all_classes_and_are_finite() {
        let model = NaiveBayes::fit(&examples());
        let scores = model.log_scores("completely novel words qqq");
        assert_eq!(scores.len(), 3);
        for (_, s) in scores {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn deterministic() {
        let a = NaiveBayes::fit(&examples());
        let b = NaiveBayes::fit(&examples());
        assert_eq!(a.log_scores("wildfire"), b.log_scores("wildfire"));
    }

    #[test]
    fn macro_f1_perfect_and_mixed() {
        assert_eq!(macro_f1(&["a", "b"], &["a", "b"]), 1.0);
        let f1 = macro_f1(&["a", "a", "b"], &["a", "b", "b"]);
        assert!(f1 > 0.5 && f1 < 1.0, "{f1}");
    }

    #[test]
    fn confusion_matrix_counts() {
        let pred = ["a", "a", "b", "b"];
        let gold = ["a", "b", "b", "a"];
        let cm = ConfusionMatrix::build(&pred, &gold);
        assert_eq!(cm.count("a", "a"), 1);
        assert_eq!(cm.count("b", "a"), 1);
        assert_eq!(cm.count("a", "b"), 1);
        assert_eq!(cm.count("b", "b"), 1);
        assert_eq!(cm.trace(), 2);
        assert_eq!(cm.labels(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(cm.count("zz", "a"), 0);
    }

    #[test]
    fn end_to_end_with_split() {
        use crate::split::train_test_split;
        let data = examples();
        let (train_idx, test_idx) = train_test_split(data.len(), 0.25, 5);
        let train: Vec<(String, String)> =
            train_idx.iter().map(|&i| data[i].clone()).collect();
        let model = NaiveBayes::fit(&train);
        let pred: Vec<&str> = test_idx.iter().map(|&i| model.predict(&data[i].0)).collect();
        let gold: Vec<&str> = test_idx.iter().map(|&i| data[i].1.as_str()).collect();
        assert!(macro_f1(&pred, &gold) > 0.8);
    }
}
