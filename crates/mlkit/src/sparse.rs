//! Sparse feature vectors.

/// A sparse vector: sorted `(index, value)` pairs.
///
/// The TF-IDF vectorizer produces these and the logistic-regression
/// trainer consumes them; keeping indices sorted makes dot products and
/// merges linear-time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    entries: Vec<(u32, f32)>,
}

impl SparseVector {
    /// Empty vector.
    pub fn new() -> Self {
        SparseVector::default()
    }

    /// Build from possibly unsorted, possibly duplicated pairs; duplicate
    /// indices are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some((j, acc)) if *j == i => *acc += v,
                _ => entries.push((i, v)),
            }
        }
        entries.retain(|(_, v)| *v != 0.0);
        SparseVector { entries }
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Dot product with a dense weight slice (out-of-range indices are
    /// ignored, matching a fixed-width model head).
    pub fn dot_dense(&self, dense: &[f32]) -> f32 {
        self.entries
            .iter()
            .filter_map(|(i, v)| dense.get(*i as usize).map(|w| w * v))
            .sum()
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while a < self.entries.len() && b < other.entries.len() {
            let (ia, va) = self.entries[a];
            let (ib, vb) = other.entries[b];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|(_, v)| v * v)
            .sum::<f32>()
            .sqrt()
    }

    /// Scale in place.
    pub fn scale(&mut self, factor: f32) {
        for (_, v) in &mut self.entries {
            *v *= factor;
        }
    }

    /// L2-normalize in place (no-op on the zero vector).
    pub fn l2_normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5), (2, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_dense_ignores_out_of_range() {
        let v = SparseVector::from_pairs(vec![(0, 1.0), (5, 2.0)]);
        let w = vec![3.0f32, 0.0, 0.0];
        assert_eq!(v.dot_dense(&w), 3.0);
    }

    #[test]
    fn sparse_dot() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = SparseVector::from_pairs(vec![(2, 5.0), (4, 1.0), (9, 7.0)]);
        assert_eq!(a.dot(&b), 13.0);
        assert_eq!(a.dot(&SparseVector::new()), 0.0);
    }

    #[test]
    fn normalization() {
        let mut v = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(v.norm(), 5.0);
        v.l2_normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut zero = SparseVector::new();
        zero.l2_normalize(); // must not divide by zero
        assert_eq!(zero.nnz(), 0);
    }
}
