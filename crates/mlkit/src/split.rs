//! Dataset splitting utilities: train/test split and k-fold cross
//! validation, both seeded and deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffle `0..n` deterministically and split into
/// `(train indices, test indices)` with `test_fraction` held out.
///
/// # Panics
/// Panics unless `0 < test_fraction < 1` and both sides end non-empty.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    assert!(
        n_test > 0 && n_test < n,
        "split leaves an empty side (n={n}, fraction={test_fraction})"
    );
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// K-fold cross-validation splits: yields `k` pairs of
/// `(train indices, validation indices)` covering `0..n`.
///
/// Folds differ in size by at most one element; every index appears in
/// exactly one validation fold.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least one element per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let base = n / k;
    let extra = n % k;
    let mut folds: Vec<Vec<usize>> = Vec::with_capacity(k);
    let mut cursor = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        folds.push(idx[cursor..cursor + size].to_vec());
        cursor += size;
    }

    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(g, _)| *g != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_everything() {
        let (train, test) = train_test_split(100, 0.2, 7);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 1));
        assert_ne!(
            train_test_split(50, 0.3, 1).1,
            train_test_split(50, 0.3, 2).1
        );
    }

    #[test]
    #[should_panic(expected = "test fraction must be in (0, 1)")]
    fn split_rejects_bad_fraction() {
        train_test_split(10, 1.0, 0);
    }

    #[test]
    fn kfold_covers_each_index_once_as_validation() {
        let folds = kfold(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = HashSet::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            for i in val {
                assert!(seen.insert(*i), "index {i} validated twice");
            }
            // No overlap between train and val.
            let t: HashSet<usize> = train.iter().copied().collect();
            assert!(val.iter().all(|i| !t.contains(i)));
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn kfold_sizes_balanced() {
        let folds = kfold(10, 3, 0);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|s| *s == 3 || *s == 4));
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn kfold_rejects_k1() {
        kfold(10, 1, 0);
    }
}
