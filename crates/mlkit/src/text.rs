//! Tokenization and vocabularies.

use std::collections::HashMap;

/// Lowercase a text and split it into alphanumeric tokens.
///
/// This is the shared preprocessing step of every text task: simple,
/// deterministic, and language-agnostic.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// A token ↔ id mapping built from a corpus.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Build from an iterator of documents.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v = Vocabulary::new();
        for doc in docs {
            for tok in tokenize(doc) {
                v.add(&tok);
            }
        }
        v
    }

    /// Intern a token, returning its id.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_owned(), id);
        self.id_to_token.push(token.to_owned());
        id
    }

    /// Look up a token's id.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Look up an id's token.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True if no tokens are interned.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Encode a text into ids, skipping out-of-vocabulary tokens.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        tokenize(text)
            .iter()
            .filter_map(|t| self.id(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("The patient, a 34-yr-old MAN!"),
            vec!["the", "patient", "a", "34", "yr", "old", "man"]
        );
        assert!(tokenize("   ").is_empty());
        assert_eq!(tokenize("end."), vec!["end"]);
    }

    #[test]
    fn vocabulary_ids_are_stable() {
        let v = Vocabulary::fit(["a b c", "b c d"]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.id("a"), Some(0));
        assert_eq!(v.id("d"), Some(3));
        assert_eq!(v.token(1), Some("b"));
        assert_eq!(v.id("zzz"), None);
    }

    #[test]
    fn encode_skips_oov() {
        let v = Vocabulary::fit(["fever cough"]);
        assert_eq!(v.encode("fever headache cough"), vec![0, 1]);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.add("x");
        let b = v.add("x");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Überfluß"), vec!["überfluß"]);
    }
}
