//! TF-IDF vectorization.

use std::collections::HashMap;

use crate::sparse::SparseVector;
use crate::text::{tokenize, Vocabulary};

/// A fitted TF-IDF vectorizer (scikit-learn style fit/transform).
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    vocab: Vocabulary,
    idf: Vec<f32>,
}

impl TfIdfVectorizer {
    /// Fit on a corpus: builds the vocabulary and smooth IDF weights
    /// (`ln((1+N)/(1+df)) + 1`).
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a str> + Clone) -> Self {
        let vocab = Vocabulary::fit(docs.clone());
        let mut df = vec![0u32; vocab.len()];
        let mut n_docs = 0u32;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<u32> = vocab.encode(doc);
            seen.sort_unstable();
            seen.dedup();
            for id in seen {
                df[id as usize] += 1;
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n_docs as f32) / (1.0 + d as f32)).ln() + 1.0)
            .collect();
        TfIdfVectorizer { vocab, idf }
    }

    /// Vocabulary size (feature dimensionality).
    pub fn dim(&self) -> usize {
        self.vocab.len()
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Transform one document into an L2-normalized TF-IDF vector.
    /// Out-of-vocabulary tokens are dropped.
    pub fn transform(&self, doc: &str) -> SparseVector {
        let mut tf: HashMap<u32, f32> = HashMap::new();
        for tok in tokenize(doc) {
            if let Some(id) = self.vocab.id(&tok) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let pairs = tf
            .into_iter()
            .map(|(id, count)| (id, count * self.idf[id as usize]))
            .collect();
        let mut v = SparseVector::from_pairs(pairs);
        v.l2_normalize();
        v
    }

    /// Transform a whole corpus.
    pub fn transform_all<'a>(&self, docs: impl IntoIterator<Item = &'a str>) -> Vec<SparseVector> {
        docs.into_iter().map(|d| self.transform(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: [&str; 3] = [
        "wildfire smoke covers the city",
        "climate change drives wildfire risk",
        "the city breathes smoke",
    ];

    #[test]
    fn fit_builds_vocab_and_idf() {
        let v = TfIdfVectorizer::fit(CORPUS);
        assert!(v.dim() >= 8);
        // "the" appears in 2 docs, "climate" in 1: rarer gets higher IDF.
        let the_id = v.vocabulary().id("the").unwrap() as usize;
        let climate_id = v.vocabulary().id("climate").unwrap() as usize;
        assert!(v.idf[climate_id] > v.idf[the_id]);
    }

    #[test]
    fn transform_is_normalized() {
        let v = TfIdfVectorizer::fit(CORPUS);
        let x = v.transform("wildfire smoke in the city");
        assert!((x.norm() - 1.0).abs() < 1e-5);
        assert!(x.nnz() >= 3);
    }

    #[test]
    fn similar_docs_score_higher() {
        let v = TfIdfVectorizer::fit(CORPUS);
        let a = v.transform("wildfire smoke covers the city");
        let b = v.transform("smoke covers the city tonight");
        let c = v.transform("climate change risk");
        assert!(a.dot(&b) > a.dot(&c));
    }

    #[test]
    fn oov_only_doc_is_zero_vector() {
        let v = TfIdfVectorizer::fit(CORPUS);
        let x = v.transform("zzz qqq");
        assert_eq!(x.nnz(), 0);
    }
}
