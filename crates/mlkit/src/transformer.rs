//! Heavyweight-model stand-ins: cost descriptors + a real extractive
//! answerer.
//!
//! The paper's GOTTA task runs a fine-tuned BART (1.59 GB) and its KGE
//! task loads a 375 MB embedding model (§IV-E). We cannot ship those, so
//! each heavyweight model is split into:
//!
//! * a [`ModelProfile`] carrying the virtual size and per-item compute
//!   the timing experiments charge, and
//! * a *real* lightweight implementation producing actual outputs — the
//!   [`ClozeAnswerer`] answers cloze questions extractively from the
//!   passage, which exercises the same code path (batched forward pass
//!   over prepared inputs) with verifiable results.

use scriptflow_simcluster::SimDuration;

use crate::text::tokenize;

/// Virtual size/compute descriptor of a heavyweight model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Serialized size in bytes (what the object store charges).
    pub bytes: u64,
    /// CPU work per input item, calibrated in Python-time.
    pub work_per_item: SimDuration,
    /// One-time load/initialization work.
    pub load_work: SimDuration,
}

impl ModelProfile {
    /// The paper's GOTTA BART model: 1.59 GB, heavyweight generation.
    pub fn gotta_bart() -> Self {
        ModelProfile {
            bytes: 1_590_000_000,
            work_per_item: SimDuration::from_millis(5_300),
            load_work: SimDuration::from_secs(18),
        }
    }

    /// The paper's KGE model: 375 MB embedding table + scorer.
    pub fn kge_model() -> Self {
        ModelProfile {
            bytes: 375_000_000,
            work_per_item: SimDuration::from_micros(900),
            load_work: SimDuration::from_secs(4),
        }
    }

    /// WEF's BERT fine-tune: work is per (example × epoch).
    pub fn wef_bert() -> Self {
        ModelProfile {
            bytes: 440_000_000,
            work_per_item: SimDuration::from_millis(530),
            load_work: SimDuration::from_secs(6),
        }
    }
}

/// A cloze question: a statement with one masked span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClozeQuestion {
    /// The text with `[MASK]` where the answer belongs.
    pub masked: String,
    /// Gold answer (for evaluation).
    pub answer: String,
}

/// The real model behind GOTTA's inference path: answers cloze questions
/// by scoring candidate spans from the passage against the question
/// context.
///
/// For each candidate token in the passage, the score is the number of
/// question context tokens that appear adjacent to the candidate in the
/// passage (a tiny pointer-network, deterministic and testable).
#[derive(Debug, Clone, Default)]
pub struct ClozeAnswerer;

impl ClozeAnswerer {
    /// A fresh answerer.
    pub fn new() -> Self {
        ClozeAnswerer
    }

    /// Answer one cloze question from a passage: returns the passage
    /// token that best fills the `[MASK]`.
    pub fn answer(&self, passage: &str, masked_question: &str) -> String {
        let passage_tokens = tokenize(passage);
        if passage_tokens.is_empty() {
            return String::new();
        }
        // Context = question tokens around the mask.
        let context: Vec<String> = masked_question
            .split_whitespace()
            .filter(|w| !w.contains("[MASK]"))
            .flat_map(tokenize)
            .collect();
        let window = 3usize;
        let mut best: (i64, usize) = (i64::MIN, 0);
        for (i, _cand) in passage_tokens.iter().enumerate() {
            // Skip candidates that already appear in the question context —
            // the mask replaces *new* information.
            if context.contains(&passage_tokens[i]) {
                continue;
            }
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(passage_tokens.len());
            let mut score = 0i64;
            for (j, tok) in passage_tokens[lo..hi].iter().enumerate() {
                if lo + j != i && context.contains(tok) {
                    score += 1;
                }
            }
            if score > best.0 {
                best = (score, i);
            }
        }
        passage_tokens[best.1].clone()
    }

    /// Answer a batch of questions against one passage.
    pub fn answer_batch(&self, passage: &str, questions: &[ClozeQuestion]) -> Vec<String> {
        questions
            .iter()
            .map(|q| self.answer(passage, &q.masked))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PASSAGE: &str =
        "The patient was a 34 yr old man who presented with complaints of fever and a chronic cough.";

    #[test]
    fn profiles_match_paper_sizes() {
        assert_eq!(ModelProfile::gotta_bart().bytes, 1_590_000_000);
        assert_eq!(ModelProfile::kge_model().bytes, 375_000_000);
    }

    #[test]
    fn extractive_answer_finds_masked_token() {
        let m = ClozeAnswerer::new();
        let ans = m.answer(PASSAGE, "the patient presented with complaints of [MASK] and a cough");
        assert_eq!(ans, "fever");
    }

    #[test]
    fn answer_is_from_passage() {
        let m = ClozeAnswerer::new();
        let ans = m.answer(PASSAGE, "the patient was a 34 yr old [MASK] who presented");
        assert!(tokenize(PASSAGE).contains(&ans));
        assert_eq!(ans, "man");
    }

    #[test]
    fn batch_matches_single() {
        let m = ClozeAnswerer::new();
        let qs = vec![
            ClozeQuestion {
                masked: "complaints of [MASK] and a cough".into(),
                answer: "fever".into(),
            },
            ClozeQuestion {
                masked: "a chronic [MASK]".into(),
                answer: "cough".into(),
            },
        ];
        let batch = m.answer_batch(PASSAGE, &qs);
        assert_eq!(batch[0], m.answer(PASSAGE, &qs[0].masked));
        assert_eq!(batch[1], m.answer(PASSAGE, &qs[1].masked));
    }

    #[test]
    fn empty_passage_is_safe() {
        let m = ClozeAnswerer::new();
        assert_eq!(m.answer("", "[MASK]"), "");
    }
}
