//! Cells and notebooks.

use std::fmt;

use scriptflow_raysim::RayError;

use crate::kernel::Kernel;

/// A cell-level error trace: the script paradigm reports failures at the
/// granularity of the cell whose execution raised them (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Cell index in the notebook, if raised while running a cell.
    pub cell: Option<usize>,
    /// Cell display name.
    pub cell_name: Option<String>,
    /// Execution counter at failure (`In [n]:`).
    pub execution_count: Option<u64>,
    /// Error message (the last stack frame).
    pub message: String,
}

impl CellError {
    /// A bare error not yet attached to a cell.
    pub fn msg(message: impl Into<String>) -> Self {
        CellError {
            cell: None,
            cell_name: None,
            execution_count: None,
            message: message.into(),
        }
    }

    /// `NameError: name 'x' is not defined`.
    pub fn undefined_variable(name: &str) -> Self {
        CellError::msg(format!("NameError: name '{name}' is not defined"))
    }

    /// `TypeError` on a kernel variable downcast.
    pub fn type_error(name: &str, expected: &str) -> Self {
        CellError::msg(format!(
            "TypeError: variable '{name}' is not of type {expected}"
        ))
    }

    fn locate(mut self, cell: usize, name: &str, execution_count: u64) -> Self {
        self.cell.get_or_insert(cell);
        self.cell_name.get_or_insert_with(|| name.to_owned());
        self.execution_count.get_or_insert(execution_count);
        self
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.cell, &self.cell_name, &self.execution_count) {
            (Some(i), Some(name), Some(n)) => {
                write!(f, "In [{n}] cell {i} ({name}): {}", self.message)
            }
            _ => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for CellError {}

impl From<RayError> for CellError {
    fn from(e: RayError) -> Self {
        CellError::msg(e.to_string())
    }
}

impl From<scriptflow_datakit::DataError> for CellError {
    fn from(e: scriptflow_datakit::DataError) -> Self {
        CellError::msg(e.to_string())
    }
}

type CellFn = Box<dyn FnMut(&mut Kernel) -> Result<(), CellError> + Send>;

/// One notebook cell: a pseudo-Python listing plus the executable body.
///
/// The listing is what a reader sees (and what the LoC metric counts);
/// the closure is what runs. Declared reads/writes power the lineage
/// analysis in [`crate::lineage`].
pub struct Cell {
    name: String,
    source: String,
    reads: Vec<String>,
    writes: Vec<String>,
    markdown: bool,
    body: CellFn,
}

impl Cell {
    /// A cell with a display name, source listing, and body.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        body: impl FnMut(&mut Kernel) -> Result<(), CellError> + Send + 'static,
    ) -> Self {
        Cell {
            name: name.into(),
            source: source.into(),
            reads: Vec::new(),
            writes: Vec::new(),
            markdown: false,
            body: Box::new(body),
        }
    }

    /// A markdown cell: display-only prose, no executable body, zero
    /// lines of code.
    pub fn markdown(name: impl Into<String>, text: impl Into<String>) -> Self {
        Cell {
            name: name.into(),
            source: text.into(),
            reads: Vec::new(),
            writes: Vec::new(),
            markdown: true,
            body: Box::new(|_| Ok(())),
        }
    }

    /// True for markdown (display-only) cells.
    pub fn is_markdown(&self) -> bool {
        self.markdown
    }

    /// Declare kernel variables this cell reads (for lineage analysis).
    pub fn reads(mut self, vars: &[&str]) -> Self {
        self.reads = vars.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Declare kernel variables this cell writes (for lineage analysis).
    pub fn writes(mut self, vars: &[&str]) -> Self {
        self.writes = vars.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Cell display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pseudo-Python source listing.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Declared reads.
    pub fn read_vars(&self) -> &[String] {
        &self.reads
    }

    /// Declared writes.
    pub fn write_vars(&self) -> &[String] {
        &self.writes
    }

    /// Non-empty, non-comment source lines (the paper's LoC metric).
    /// Markdown cells contribute zero.
    pub fn lines_of_code(&self) -> usize {
        if self.markdown {
            return 0;
        }
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count()
    }
}

/// Outcome of one cell execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Cell index executed.
    pub cell: usize,
    /// Execution counter assigned (`In [n]:`).
    pub execution_count: u64,
}

/// An ordered collection of cells sharing one kernel.
pub struct Notebook {
    name: String,
    cells: Vec<Cell>,
    last_execution: Vec<Option<u64>>,
}

impl Notebook {
    /// An empty notebook.
    pub fn new(name: impl Into<String>) -> Self {
        Notebook {
            name: name.into(),
            cells: Vec::new(),
            last_execution: Vec::new(),
        }
    }

    /// Notebook display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a cell; returns its index.
    pub fn push(&mut self, cell: Cell) -> usize {
        self.cells.push(cell);
        self.last_execution.push(None);
        self.cells.len() - 1
    }

    /// The execution counter the cell last ran under (`In [n]:`), if it
    /// has run.
    pub fn last_execution(&self, index: usize) -> Option<u64> {
        self.last_execution.get(index).copied().flatten()
    }

    /// The cells in document order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total lines of code across cells — the paper's Fig. 12a metric.
    pub fn lines_of_code(&self) -> usize {
        self.cells.iter().map(Cell::lines_of_code).sum()
    }

    /// Execute one cell (any order allowed — the paradigm's flexibility
    /// *and* hazard). Errors come back as cell-level traces.
    pub fn run_cell(
        &mut self,
        index: usize,
        kernel: &mut Kernel,
    ) -> Result<CellOutcome, CellError> {
        let cell = self
            .cells
            .get_mut(index)
            .ok_or_else(|| CellError::msg(format!("no cell {index}")))?;
        let n = kernel.next_execution_count();
        let start = kernel.now();
        // An armed kernel fault strikes the whole cell: the body never
        // runs, so no partial work survives — cell granularity is the
        // paradigm's failure unit.
        let result = match kernel.take_fault(n) {
            Some(msg) => Err(CellError::msg(msg)),
            None => (cell.body)(kernel),
        };
        // Failed runs are spans too: the paradigm's error display is the
        // cell trace, so the span records where the timeline stopped.
        kernel.record_span(crate::kernel::CellSpan {
            cell: index,
            name: cell.name.clone(),
            execution_count: n,
            start,
            end: kernel.now(),
            reads: cell.reads.clone(),
            writes: cell.writes.clone(),
            ok: result.is_ok(),
        });
        result.map_err(|e| e.locate(index, &cell.name, n))?;
        self.last_execution[index] = Some(n);
        Ok(CellOutcome {
            cell: index,
            execution_count: n,
        })
    }

    /// Execute every cell top-to-bottom ("Run All").
    pub fn run_all(&mut self, kernel: &mut Kernel) -> Result<Vec<CellOutcome>, CellError> {
        let mut outcomes = Vec::with_capacity(self.cells.len());
        for i in 0..self.cells.len() {
            outcomes.push(self.run_cell(i, kernel)?);
        }
        Ok(outcomes)
    }

    /// Execute cells in an explicit (possibly out-of-document) order.
    pub fn run_in_order(
        &mut self,
        order: &[usize],
        kernel: &mut Kernel,
    ) -> Result<Vec<CellOutcome>, CellError> {
        let mut outcomes = Vec::with_capacity(order.len());
        for &i in order {
            outcomes.push(self.run_cell(i, kernel)?);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_raysim::RayConfig;
    use scriptflow_simcluster::ClusterSpec;

    fn kernel() -> Kernel {
        Kernel::new(&ClusterSpec::single_node(2), RayConfig::with_cpus(2))
    }

    fn counter_notebook() -> Notebook {
        let mut nb = Notebook::new("counting");
        nb.push(
            Cell::new("init", "x = 0", |k| {
                k.set("x", 0i64);
                Ok(())
            })
            .writes(&["x"]),
        );
        nb.push(
            Cell::new("incr", "x = x + 1", |k| {
                let x = *k.get::<i64>("x")?;
                k.set("x", x + 1);
                Ok(())
            })
            .reads(&["x"])
            .writes(&["x"]),
        );
        nb
    }

    #[test]
    fn run_all_in_order() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        let outcomes = nb.run_all(&mut k).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[1].execution_count, 2);
        assert_eq!(*k.get::<i64>("x").unwrap(), 1);
    }

    #[test]
    fn out_of_order_execution_changes_results() {
        // Fig. 8 of the paper: executing cells in a user-chosen order is
        // allowed and silently produces different state.
        let mut nb = counter_notebook();
        let mut k = kernel();
        nb.run_in_order(&[0, 1, 1, 1], &mut k).unwrap();
        assert_eq!(*k.get::<i64>("x").unwrap(), 3);
        assert_eq!(k.execution_count(), 4);
    }

    #[test]
    fn running_dependent_cell_first_fails_with_cell_trace() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        let err = nb.run_cell(1, &mut k).unwrap_err();
        assert_eq!(err.cell, Some(1));
        assert_eq!(err.cell_name.as_deref(), Some("incr"));
        assert!(err.to_string().contains("NameError"), "{err}");
        assert!(err.to_string().contains("In [1]"), "{err}");
    }

    #[test]
    fn loc_counts_nonempty_noncomment_lines() {
        let cell = Cell::new(
            "c",
            "# load the data\nimport pandas as pd\n\ndf = pd.read_csv('x.csv')\n",
            |_| Ok(()),
        );
        assert_eq!(cell.lines_of_code(), 2);
        let mut nb = Notebook::new("nb");
        nb.push(cell);
        nb.push(Cell::new("d", "print(df)", |_| Ok(())));
        assert_eq!(nb.lines_of_code(), 3);
    }

    #[test]
    fn markdown_cells_run_as_noops_and_count_zero_loc() {
        let mut nb = Notebook::new("md");
        nb.push(Cell::markdown("intro", "# A title
Some prose."));
        nb.push(Cell::new("code", "x = 1", |k| {
            k.set("x", 1i64);
            Ok(())
        }));
        assert!(nb.cells()[0].is_markdown());
        assert_eq!(nb.cells()[0].lines_of_code(), 0);
        assert_eq!(nb.lines_of_code(), 1);
        let mut k = kernel();
        nb.run_all(&mut k).unwrap();
        assert_eq!(nb.last_execution(0), Some(1));
        assert_eq!(nb.last_execution(1), Some(2));
    }

    #[test]
    fn cell_spans_record_time_and_lineage() {
        use scriptflow_simcluster::SimDuration;
        let mut nb = Notebook::new("spans");
        nb.push(
            Cell::new("load", "df = load()", |k| {
                k.advance(SimDuration::from_secs(2));
                k.set("df", 42i64);
                Ok(())
            })
            .writes(&["df"]),
        );
        nb.push(
            Cell::new("use", "print(df)", |k| {
                k.get::<i64>("df")?;
                Ok(())
            })
            .reads(&["df"]),
        );
        let mut k = kernel();
        nb.run_all(&mut k).unwrap();
        let spans = k.cell_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "load");
        assert_eq!(spans[0].execution_count, 1);
        assert!(spans[0].ok);
        assert!(
            (spans[0].duration().as_secs_f64() - 2.0).abs() < 1e-9,
            "cell wall time charged: {:?}",
            spans[0]
        );
        assert_eq!(spans[0].writes, vec!["df".to_owned()]);
        assert_eq!(spans[1].reads, vec!["df".to_owned()]);
        // Spans line up on the kernel clock.
        assert!(spans[1].start >= spans[0].end);
    }

    #[test]
    fn failed_cells_still_record_spans() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        assert!(nb.run_cell(1, &mut k).is_err()); // reads undefined `x`
        let spans = k.cell_spans();
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].ok);
        assert_eq!(spans[0].name, "incr");
    }

    #[test]
    fn armed_fault_kills_the_whole_cell() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        // Strike the second execution (`In [2]:` = the incr cell).
        k.arm_fault(2, "SimulatedKernelFault: worker died");
        nb.run_cell(0, &mut k).unwrap();
        let err = nb.run_cell(1, &mut k).unwrap_err();
        assert_eq!(err.cell, Some(1));
        assert_eq!(err.execution_count, Some(2));
        assert!(err.to_string().contains("SimulatedKernelFault"), "{err}");
        // The body never ran: x keeps its pre-fault value (whole-cell
        // loss, not partial progress).
        assert_eq!(*k.get::<i64>("x").unwrap(), 0);
        // The failed run is still a span, marked not-ok.
        let spans = k.cell_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].ok);
        assert!(!spans[1].ok);
        // The fault disarms after firing: re-running the cell succeeds.
        nb.run_cell(1, &mut k).unwrap();
        assert_eq!(*k.get::<i64>("x").unwrap(), 1);
    }

    #[test]
    fn armed_fault_waits_for_its_execution_count() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        k.arm_fault(3, "boom");
        nb.run_cell(0, &mut k).unwrap();
        nb.run_cell(1, &mut k).unwrap();
        let err = nb.run_cell(1, &mut k).unwrap_err();
        assert_eq!(err.execution_count, Some(3));
        assert_eq!(err.cell_name.as_deref(), Some("incr"));
    }

    #[test]
    fn bad_index_is_reported() {
        let mut nb = counter_notebook();
        let mut k = kernel();
        assert!(nb.run_cell(9, &mut k).is_err());
    }
}
