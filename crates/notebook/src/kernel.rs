//! The kernel: shared mutable state + embedded Ray runtime.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_raysim::{RayConfig, RayRuntime};
use scriptflow_simcluster::{ClusterSpec, SimDuration, SimTime};

use crate::cell::CellError;

/// One executed cell's observability record: which cell ran under which
/// `In [n]:` counter, the virtual-time interval it occupied, its declared
/// lineage, and whether it succeeded.
///
/// This is the notebook paradigm's per-unit progress — the analogue of
/// the workflow engine's per-operator trace sample, except the unit is a
/// whole cell: the paradigm cannot see *inside* a running cell, which is
/// the observability gap the paper's §III-A contrasts against the GUI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpan {
    /// Cell index in the notebook.
    pub cell: usize,
    /// Cell display name.
    pub name: String,
    /// Execution counter assigned to this run (`In [n]:`).
    pub execution_count: u64,
    /// Virtual time the cell started.
    pub start: SimTime,
    /// Virtual time the cell finished (or failed).
    pub end: SimTime,
    /// Kernel variables the cell declared it reads.
    pub reads: Vec<String>,
    /// Kernel variables the cell declared it writes.
    pub writes: Vec<String>,
    /// False if the cell body returned an error.
    pub ok: bool,
}

impl CellSpan {
    /// Virtual wall time the cell occupied.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// The notebook kernel: a bag of named variables (Python's globals) and
/// the distributed runtime cells use to scale out.
///
/// Variables are type-erased, like Python objects; typed access downcasts
/// and reports a cell-friendly error on mismatch.
pub struct Kernel {
    vars: HashMap<String, Arc<dyn Any + Send + Sync>>,
    ray: RayRuntime,
    execution_count: u64,
    spans: Vec<CellSpan>,
    /// Armed fault: (execution count to strike at, error message).
    fault: Option<(u64, String)>,
}

impl Kernel {
    /// A kernel whose Ray runtime runs on `cluster` with `config`.
    pub fn new(cluster: &ClusterSpec, config: RayConfig) -> Self {
        Kernel {
            vars: HashMap::new(),
            ray: RayRuntime::new(cluster, config).expect("valid kernel config"),
            execution_count: 0,
            spans: Vec::new(),
            fault: None,
        }
    }

    /// A kernel on the paper's cluster with 1 Ray CPU (the baseline
    /// worker configuration of §IV-A).
    pub fn paper_default() -> Self {
        Self::new(&ClusterSpec::paper_cluster(), RayConfig::default())
    }

    /// Bind a variable.
    pub fn set<T: Send + Sync + 'static>(&mut self, name: impl Into<String>, value: T) {
        self.vars.insert(name.into(), Arc::new(value));
    }

    /// Read a variable with its concrete type.
    pub fn get<T: Send + Sync + 'static>(&self, name: &str) -> Result<Arc<T>, CellError> {
        let any = self
            .vars
            .get(name)
            .ok_or_else(|| CellError::undefined_variable(name))?
            .clone();
        any.downcast::<T>()
            .map_err(|_| CellError::type_error(name, std::any::type_name::<T>()))
    }

    /// True if a variable is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Remove a variable (Python's `del`).
    pub fn remove(&mut self, name: &str) -> bool {
        self.vars.remove(name).is_some()
    }

    /// Names of all bound variables, sorted (deterministic introspection).
    pub fn var_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.vars.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The embedded distributed runtime.
    pub fn ray(&mut self) -> &mut RayRuntime {
        &mut self.ray
    }

    /// Current virtual time of the driver process.
    pub fn now(&self) -> SimTime {
        self.ray.now()
    }

    /// Charge local (in-driver) compute time to the clock.
    pub fn advance(&mut self, work: SimDuration) {
        self.ray.advance(work);
    }

    /// Next execution-counter value (the `In [n]:` label).
    pub(crate) fn next_execution_count(&mut self) -> u64 {
        self.execution_count += 1;
        self.execution_count
    }

    /// Executions so far.
    pub fn execution_count(&self) -> u64 {
        self.execution_count
    }

    /// Every cell execution this kernel has performed, in execution
    /// order — per-cell virtual wall time plus declared lineage. Failed
    /// runs are recorded too (`ok == false`).
    pub fn cell_spans(&self) -> &[CellSpan] {
        &self.spans
    }

    /// Record one cell execution (called by the notebook runner).
    pub(crate) fn record_span(&mut self, span: CellSpan) {
        self.spans.push(span);
    }

    /// Arm a deterministic fault: the cell that runs under
    /// `In [execution_count]:` fails with `message` before its body
    /// executes. This is the script-paradigm counterpart of the workflow
    /// engine's `FaultPlan`: the failure unit is the *whole cell* — no
    /// partial results survive it, which is exactly the granularity gap
    /// the `study::fault_tolerance` comparison measures.
    ///
    /// Only one fault can be armed at a time; arming again replaces the
    /// previous one. The fault disarms once it fires.
    pub fn arm_fault(&mut self, execution_count: u64, message: impl Into<String>) {
        self.fault = Some((execution_count, message.into()));
    }

    /// Consume the armed fault if it strikes at execution count `n`.
    pub(crate) fn take_fault(&mut self, n: u64) -> Option<String> {
        if self.fault.as_ref().is_some_and(|(at, _)| *at == n) {
            return self.fault.take().map(|(_, msg)| msg);
        }
        None
    }

    /// "Restart kernel": drop every variable binding (the execution
    /// counter keeps counting, like Jupyter's restart-without-clearing
    /// the notebook document; the execution history survives too).
    pub fn restart(&mut self) {
        self.vars.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(&ClusterSpec::single_node(2), RayConfig::with_cpus(2))
    }

    #[test]
    fn typed_variable_roundtrip() {
        let mut k = kernel();
        k.set("xs", vec![1i64, 2, 3]);
        let xs = k.get::<Vec<i64>>("xs").unwrap();
        assert_eq!(*xs, vec![1, 2, 3]);
        assert!(k.contains("xs"));
        assert!(!k.contains("ys"));
    }

    #[test]
    fn undefined_variable_error() {
        let k = kernel();
        let err = k.get::<i64>("nope").unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn type_error_names_expected_type() {
        let mut k = kernel();
        k.set("x", 1i64);
        let err = k.get::<String>("x").unwrap_err();
        assert!(err.to_string().contains("String"), "{err}");
    }

    #[test]
    fn rebinding_replaces() {
        let mut k = kernel();
        k.set("x", 1i64);
        k.set("x", 2i64);
        assert_eq!(*k.get::<i64>("x").unwrap(), 2);
        assert!(k.remove("x"));
        assert!(!k.remove("x"));
    }

    #[test]
    fn clock_advances() {
        let mut k = kernel();
        let t0 = k.now();
        k.advance(SimDuration::from_secs(1));
        assert_eq!(k.now().since(t0).as_secs_f64(), 1.0);
    }

    #[test]
    fn restart_clears_variables_but_not_counter() {
        let mut k = kernel();
        k.set("x", 1i64);
        let _ = k.next_execution_count();
        k.restart();
        assert!(!k.contains("x"));
        assert_eq!(k.execution_count(), 1);
    }

    #[test]
    fn var_names_sorted() {
        let mut k = kernel();
        k.set("b", 1i64);
        k.set("a", 1i64);
        assert_eq!(k.var_names(), vec!["a".to_owned(), "b".to_owned()]);
    }
}
