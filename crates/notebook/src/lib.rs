//! # scriptflow-notebook
//!
//! The script paradigm engine — a from-scratch analogue of Jupyter
//! Notebook (§I, Fig. 1 of the paper).
//!
//! A [`Notebook`] is an ordered list of [`Cell`]s. Each cell carries a
//! pseudo-Python source listing (the basis of the paper's lines-of-code
//! metric, Fig. 12a) and a Rust closure that mutates the shared
//! [`Kernel`] state. The engine reproduces the paradigm properties the
//! paper analyses:
//!
//! * **Implicit shared state** — cells communicate through kernel
//!   variables, not explicit edges (§III-A "the state stored in the
//!   kernel being used by different cells implicitly").
//! * **Arbitrary execution order** — `run_cell` executes any cell at any
//!   time; the execution counter records the order actually used, and
//!   [`lineage`] reconstructs the *data* dependencies after the fact to
//!   flag order violations (the paper's Fig. 8 hazard).
//! * **Cell-level error traces** — failures carry the cell index, name,
//!   and execution count ([`CellError`]), the script paradigm's
//!   counterpart to operator-level errors.
//! * **Distribution via Ray** — the kernel embeds a
//!   [`scriptflow_raysim::RayRuntime`]; cells scale out with explicit
//!   `parallel_map` stages and pay object-store costs, exactly as the
//!   paper's Ray-cluster implementations did.
//! * **Cell-granular observability** — every execution is recorded as a
//!   [`kernel::CellSpan`] (virtual wall time + declared lineage), the
//!   paradigm's whole progress story: nothing inside a running cell is
//!   visible, which is the contrast the study crate draws against the
//!   workflow engine's per-operator trace.

#![warn(missing_docs)]

pub mod cell;
pub mod kernel;
pub mod lineage;
pub mod render;

pub use cell::{Cell, CellError, CellOutcome, Notebook};
pub use kernel::{CellSpan, Kernel};
pub use lineage::{LineageGraph, LineageIssue};
pub use render::render;
