//! Data-lineage reconstruction over cells.
//!
//! The paper observes that in a notebook "the order of executable code
//! cells may not necessarily align with the actual flow of data"
//! (§III-A, Fig. 8). Because cells declare their reads/writes, we can
//! build the def-use graph the workflow paradigm makes explicit, and
//! audit any actual execution order against it.

use std::collections::{HashMap, HashSet};

use crate::cell::Notebook;

/// A reconstructed def-use graph over notebook cells.
#[derive(Debug, Clone)]
pub struct LineageGraph {
    /// `edges[i]` = cells whose writes cell `i` reads (assuming document
    /// order defines the intended producer).
    edges: Vec<Vec<usize>>,
    cells: usize,
}

/// A problem found when auditing an execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageIssue {
    /// A cell read a variable no earlier-executed cell had written.
    ReadBeforeWrite {
        /// Offending cell.
        cell: usize,
        /// The variable read too early.
        variable: String,
    },
    /// A cell in the notebook was never executed.
    NeverExecuted {
        /// The skipped cell.
        cell: usize,
    },
}

impl LineageGraph {
    /// Build the graph from declared reads/writes, resolving each read to
    /// the *latest earlier* cell (in document order) writing the
    /// variable — the intention a top-to-bottom reading conveys.
    pub fn from_notebook(nb: &Notebook) -> Self {
        let mut last_writer: HashMap<&str, usize> = HashMap::new();
        let mut edges = vec![Vec::new(); nb.len()];
        for (i, cell) in nb.cells().iter().enumerate() {
            for r in cell.read_vars() {
                if let Some(&w) = last_writer.get(r.as_str()) {
                    if !edges[i].contains(&w) {
                        edges[i].push(w);
                    }
                }
            }
            for w in cell.write_vars() {
                last_writer.insert(w, i);
            }
        }
        LineageGraph {
            edges,
            cells: nb.len(),
        }
    }

    /// Upstream dependencies of a cell.
    pub fn deps(&self, cell: usize) -> &[usize] {
        &self.edges[cell]
    }

    /// Cells that (directly) read what `cell` writes.
    pub fn dependents(&self, cell: usize) -> Vec<usize> {
        (0..self.cells)
            .filter(|&i| self.edges[i].contains(&cell))
            .collect()
    }

    /// The stale cone of an edit: every cell downstream (transitively)
    /// of any edited cell, plus the edited cells themselves, in
    /// document order. This is the minimal rerun set a lineage-aware
    /// notebook needs after the edit — the script-paradigm counterpart
    /// of the workflow engine's fingerprint-invalidated operators.
    pub fn stale_after_edit(&self, edited: &[usize]) -> Vec<usize> {
        let mut stale = vec![false; self.cells];
        for &c in edited {
            if c < self.cells {
                stale[c] = true;
            }
        }
        // Edges point backwards, so one forward document-order sweep
        // propagates staleness transitively.
        for i in 0..self.cells {
            if !stale[i] && self.edges[i].iter().any(|&d| stale[d]) {
                stale[i] = true;
            }
        }
        (0..self.cells).filter(|&i| stale[i]).collect()
    }

    /// A valid top-to-bottom order always exists (edges point backwards);
    /// return it (just document order).
    pub fn document_order(&self) -> Vec<usize> {
        (0..self.cells).collect()
    }

    /// Audit an actual execution order against the declared reads/writes:
    /// flags reads of never-yet-written variables and skipped cells.
    pub fn audit(&self, nb: &Notebook, order: &[usize]) -> Vec<LineageIssue> {
        let mut issues = Vec::new();
        let mut written: HashSet<&str> = HashSet::new();
        for &i in order {
            let cell = &nb.cells()[i];
            for r in cell.read_vars() {
                if !written.contains(r.as_str()) {
                    issues.push(LineageIssue::ReadBeforeWrite {
                        cell: i,
                        variable: r.clone(),
                    });
                }
            }
            for w in cell.write_vars() {
                written.insert(w);
            }
        }
        let executed: HashSet<usize> = order.iter().copied().collect();
        for i in 0..self.cells {
            if !executed.contains(&i) {
                issues.push(LineageIssue::NeverExecuted { cell: i });
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    /// The paper's Fig. 8: Load → Sentiment_Analysis and Load → Write,
    /// but the user may execute Write before Sentiment_Analysis.
    fn fig8_notebook() -> Notebook {
        let mut nb = Notebook::new("fig8");
        nb.push(Cell::new("Load", "data = load()", |_| Ok(())).writes(&["data"]));
        nb.push(
            Cell::new("Sentiment_Analysis", "model.fit(data)", |_| Ok(()))
                .reads(&["data"])
                .writes(&["predicted"]),
        );
        nb.push(
            Cell::new("Write", "write(data)", |_| Ok(())).reads(&["data"]),
        );
        nb
    }

    #[test]
    fn graph_reconstructs_def_use() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        assert_eq!(g.deps(0), &[] as &[usize]);
        assert_eq!(g.deps(1), &[0]);
        assert_eq!(g.deps(2), &[0]);
    }

    #[test]
    fn valid_orders_pass_audit() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        assert!(g.audit(&nb, &[0, 1, 2]).is_empty());
        // Fig. 8's reordering (Write before Sentiment_Analysis) is *fine*
        // for the data flow: both only need Load.
        assert!(g.audit(&nb, &[0, 2, 1]).is_empty());
    }

    #[test]
    fn read_before_write_flagged() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        let issues = g.audit(&nb, &[1, 0, 2]);
        assert!(issues.contains(&LineageIssue::ReadBeforeWrite {
            cell: 1,
            variable: "data".into()
        }));
    }

    #[test]
    fn skipped_cells_flagged() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        let issues = g.audit(&nb, &[0, 1]);
        assert_eq!(issues, vec![LineageIssue::NeverExecuted { cell: 2 }]);
    }

    #[test]
    fn dependents_inverts_deps() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        assert_eq!(g.dependents(0), vec![1, 2]);
        assert!(g.dependents(1).is_empty());
        assert!(g.dependents(2).is_empty());
    }

    #[test]
    fn stale_cone_is_the_transitive_downstream_closure() {
        // load -> clean -> {train, report}; edit clean ⇒ rerun 1,2,3
        // but never 0 (its output is still valid).
        let mut nb = Notebook::new("cone");
        nb.push(Cell::new("load", "d = load()", |_| Ok(())).writes(&["d"]));
        nb.push(
            Cell::new("clean", "c = clean(d)", |_| Ok(()))
                .reads(&["d"])
                .writes(&["c"]),
        );
        nb.push(
            Cell::new("train", "m = fit(c)", |_| Ok(()))
                .reads(&["c"])
                .writes(&["m"]),
        );
        nb.push(Cell::new("report", "report(m)", |_| Ok(())).reads(&["m"]));
        let g = LineageGraph::from_notebook(&nb);
        assert_eq!(g.stale_after_edit(&[1]), vec![1, 2, 3]);
        assert_eq!(g.stale_after_edit(&[3]), vec![3]);
        assert_eq!(g.stale_after_edit(&[0]), vec![0, 1, 2, 3]);
        assert!(g.stale_after_edit(&[]).is_empty());
        // Out-of-range edits are ignored rather than panicking.
        assert!(g.stale_after_edit(&[99]).is_empty());
    }

    #[test]
    fn stale_cone_skips_independent_branches() {
        let nb = fig8_notebook();
        let g = LineageGraph::from_notebook(&nb);
        // Editing Sentiment_Analysis leaves Load and Write valid.
        assert_eq!(g.stale_after_edit(&[1]), vec![1]);
    }

    #[test]
    fn rebinding_updates_producer() {
        let mut nb = Notebook::new("rebind");
        nb.push(Cell::new("a", "x = 1", |_| Ok(())).writes(&["x"]));
        nb.push(Cell::new("b", "x = 2", |_| Ok(())).writes(&["x"]));
        nb.push(Cell::new("c", "use(x)", |_| Ok(())).reads(&["x"]));
        let g = LineageGraph::from_notebook(&nb);
        // c's producer is the latest earlier writer: cell 1.
        assert_eq!(g.deps(2), &[1]);
    }
}
