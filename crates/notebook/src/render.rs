//! Notebook rendering — the script paradigm's presentation layer.
//!
//! The paper's Fig. 1 shows a notebook as a top-down sequence of code
//! cells with `In [n]:` execution labels. [`render`] reproduces that
//! view, including markdown cells and the execution counters recorded by
//! the kernel, making the §III-A "presentation of a task" comparison
//! executable next to the workflow engine's `gui` module.

use crate::cell::Notebook;

/// Render a notebook the way Jupyter displays it: markdown cells as
/// prose, code cells with their `In [n]:` label (blank if the cell has
/// never run) and indented source.
pub fn render(nb: &Notebook) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {} ###\n\n", nb.name()));
    for (i, cell) in nb.cells().iter().enumerate() {
        if cell.is_markdown() {
            for line in cell.source().lines() {
                out.push_str(&format!("  {line}\n"));
            }
            out.push('\n');
            continue;
        }
        let label = match nb.last_execution(i) {
            Some(n) => format!("In [{n}]:"),
            None => "In [ ]:".to_owned(),
        };
        let pad = " ".repeat(label.len());
        for (j, line) in cell.source().lines().enumerate() {
            if j == 0 {
                out.push_str(&format!("{label} {line}\n"));
            } else {
                out.push_str(&format!("{pad} {line}\n"));
            }
        }
        if cell.source().is_empty() {
            out.push_str(&format!("{label}\n"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::kernel::Kernel;
    use scriptflow_raysim::RayConfig;
    use scriptflow_simcluster::ClusterSpec;

    fn notebook() -> Notebook {
        let mut nb = Notebook::new("sentiment");
        nb.push(Cell::markdown(
            "intro",
            "# Sentiment analysis\nTrains and evaluates a classifier.",
        ));
        nb.push(Cell::new("load", "data = load()\nprint(len(data))", |k| {
            k.set("data", 3i64);
            Ok(())
        }));
        nb.push(Cell::new("train", "model.fit(data)", |_| Ok(())));
        nb
    }

    #[test]
    fn unexecuted_cells_show_blank_labels() {
        let nb = notebook();
        let text = render(&nb);
        assert!(text.contains("In [ ]: data = load()"), "{text}");
        assert!(text.contains("# Sentiment analysis"));
        // Markdown cells carry no label.
        assert!(!text.contains("In [ ]: # Sentiment analysis"));
    }

    #[test]
    fn execution_counters_appear_after_runs() {
        let mut nb = notebook();
        let mut k = Kernel::new(&ClusterSpec::single_node(2), RayConfig::default());
        nb.run_all(&mut k).unwrap();
        let text = render(&nb);
        // Markdown cells execute as no-ops but take a counter slot like
        // Jupyter's "run all" — code cells get 2 and 3.
        assert!(text.contains("In [2]: data = load()"), "{text}");
        assert!(text.contains("In [3]: model.fit(data)"), "{text}");
    }

    #[test]
    fn rerunning_a_cell_bumps_its_label() {
        let mut nb = notebook();
        let mut k = Kernel::new(&ClusterSpec::single_node(2), RayConfig::default());
        nb.run_all(&mut k).unwrap();
        nb.run_cell(1, &mut k).unwrap();
        let text = render(&nb);
        assert!(text.contains("In [4]: data = load()"), "{text}");
    }

    #[test]
    fn multiline_source_is_aligned() {
        let nb = notebook();
        let text = render(&nb);
        let lines: Vec<&str> = text.lines().collect();
        let first = lines.iter().position(|l| l.contains("data = load()")).unwrap();
        assert!(lines[first + 1].starts_with("        print(len(data))"), "{}", lines[first + 1]);
    }
}
