//! Ray-style actors: stateful pinned workers.
//!
//! An actor is a worker process holding state between calls — the idiom
//! Ray users reach for to avoid exactly the pathology the paper measured
//! in GOTTA (§IV-E): instead of every task `get`ting the 1.59 GB model
//! from the object store, an actor loads it **once** and serves calls.
//! The `ablate-actors` extension experiment quantifies that fix.
//!
//! Calls on one actor serialize (a single process); calls on different
//! actors overlap. State mutation is real (`FnOnce(&mut S)`).

use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;

use scriptflow_simcluster::{SimDuration, SimTime};

use crate::error::{RayError, RayResult};

/// Typed handle to an actor.
pub struct ActorRef<S> {
    id: u64,
    _marker: PhantomData<fn() -> S>,
}

impl<S> Clone for ActorRef<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for ActorRef<S> {}
impl<S> std::fmt::Debug for ActorRef<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorRef({})", self.id)
    }
}

struct ActorSlot {
    state: Box<dyn Any + Send>,
    busy_until: SimTime,
    calls: u64,
}

/// The actor registry a runtime owns.
#[derive(Default)]
pub struct ActorPool {
    slots: HashMap<u64, ActorSlot>,
    next_id: u64,
}

impl ActorPool {
    /// Create an actor at `now`: ships `state_bytes` to a fresh worker
    /// process and runs `startup` initialization. Returns the handle and
    /// the time the actor becomes ready.
    pub fn create<S: Send + 'static>(
        &mut self,
        now: SimTime,
        state: S,
        state_bytes: u64,
        startup: SimDuration,
    ) -> (ActorRef<S>, SimTime) {
        let id = self.next_id;
        self.next_id += 1;
        // One-time ship at ~2 GB/s effective serialization bandwidth.
        let ship = SimDuration::from_secs_f64(state_bytes as f64 / 2e9);
        let ready = now + ship + startup;
        self.slots.insert(
            id,
            ActorSlot {
                state: Box::new(state),
                busy_until: ready,
                calls: 0,
            },
        );
        (
            ActorRef {
                id,
                _marker: PhantomData,
            },
            ready,
        )
    }

    /// Invoke `f` on the actor's state with declared `work`; the call is
    /// queued behind earlier calls (actors are serial). `now` is the
    /// submission time; returns the result and the completion time.
    pub fn call<S: Send + 'static, R>(
        &mut self,
        now: SimTime,
        actor: ActorRef<S>,
        work: SimDuration,
        f: impl FnOnce(&mut S) -> RayResult<R>,
    ) -> RayResult<(R, SimTime)> {
        let slot = self
            .slots
            .get_mut(&actor.id)
            .ok_or(RayError::ObjectMissing { id: actor.id })?;
        let state = slot
            .state
            .downcast_mut::<S>()
            .ok_or(RayError::ObjectTypeMismatch {
                id: actor.id,
                expected: std::any::type_name::<S>(),
            })?;
        let start = slot.busy_until.max(now);
        let finish = start + work;
        slot.busy_until = finish;
        slot.calls += 1;
        let out = f(state)?;
        Ok((out, finish))
    }

    /// Terminate an actor, freeing its worker.
    pub fn kill<S>(&mut self, actor: ActorRef<S>) -> RayResult<()> {
        self.slots
            .remove(&actor.id)
            .map(|_| ())
            .ok_or(RayError::ObjectMissing { id: actor.id })
    }

    /// Number of calls an actor has served.
    pub fn call_count<S>(&self, actor: ActorRef<S>) -> Option<u64> {
        self.slots.get(&actor.id).map(|s| s.calls)
    }

    /// Live actors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no actors are alive.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn actor_holds_state_across_calls() {
        let mut pool = ActorPool::default();
        let (counter, ready) = pool.create(SimTime::ZERO, 0u64, 0, d(100));
        assert_eq!(ready, t(100));
        let (v1, _) = pool
            .call(ready, counter, d(10), |s| {
                *s += 1;
                Ok(*s)
            })
            .unwrap();
        let (v2, _) = pool
            .call(ready, counter, d(10), |s| {
                *s += 1;
                Ok(*s)
            })
            .unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(pool.call_count(counter), Some(2));
    }

    #[test]
    fn calls_serialize_on_one_actor() {
        let mut pool = ActorPool::default();
        let (a, ready) = pool.create(SimTime::ZERO, (), 0, d(0));
        let (_, f1) = pool.call(ready, a, d(100), |_| Ok(())).unwrap();
        // Submitted at the same time, but queued behind the first call.
        let (_, f2) = pool.call(ready, a, d(100), |_| Ok(())).unwrap();
        assert_eq!(f1, t(100));
        assert_eq!(f2, t(200));
    }

    #[test]
    fn different_actors_overlap() {
        let mut pool = ActorPool::default();
        let (a, _) = pool.create(SimTime::ZERO, (), 0, d(0));
        let (b, _) = pool.create(SimTime::ZERO, (), 0, d(0));
        let (_, fa) = pool.call(SimTime::ZERO, a, d(100), |_| Ok(())).unwrap();
        let (_, fb) = pool.call(SimTime::ZERO, b, d(100), |_| Ok(())).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn state_ship_cost_scales() {
        let mut pool = ActorPool::default();
        let (_big, ready) = pool.create(SimTime::ZERO, (), 2_000_000_000, d(0));
        assert_eq!(ready.as_secs_f64(), 1.0);
    }

    #[test]
    fn kill_and_missing_actor() {
        let mut pool = ActorPool::default();
        let (a, _) = pool.create(SimTime::ZERO, 7i64, 0, d(0));
        assert_eq!(pool.len(), 1);
        pool.kill(a).unwrap();
        assert!(pool.is_empty());
        assert!(pool.call(SimTime::ZERO, a, d(1), |_| Ok(())).is_err());
        assert!(pool.kill(a).is_err());
    }

    #[test]
    fn wrong_state_type_is_detected() {
        let mut pool = ActorPool::default();
        let (a, _) = pool.create(SimTime::ZERO, 7i64, 0, d(0));
        let forged: ActorRef<String> = ActorRef {
            id: 0,
            _marker: PhantomData,
        };
        let _ = a;
        let err = pool
            .call(SimTime::ZERO, forged, d(1), |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, RayError::ObjectTypeMismatch { .. }));
    }
}
