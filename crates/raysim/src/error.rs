//! Errors of the Ray-like runtime.

use std::fmt;

/// Result alias for runtime operations.
pub type RayResult<T> = Result<T, RayError>;

/// Errors raised by the distributed runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RayError {
    /// A referenced object is not (or no longer) in the store.
    ObjectMissing {
        /// The raw object/actor id.
        id: u64,
    },
    /// A referenced object exists but has a different type.
    ObjectTypeMismatch {
        /// The raw object/actor id.
        id: u64,
        /// The type the caller expected.
        expected: &'static str,
    },
    /// A task's user code failed.
    TaskFailed {
        /// The failing task's name.
        task: String,
        /// The failure message.
        message: String,
    },
    /// Invalid configuration (e.g. zero CPUs).
    BadConfig(String),
}

impl fmt::Display for RayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RayError::ObjectMissing { id } => write!(f, "object {id} not found in object store"),
            RayError::ObjectTypeMismatch { id, expected } => {
                write!(f, "object {id} is not of type {expected}")
            }
            RayError::TaskFailed { task, message } => write!(f, "task `{task}` failed: {message}"),
            RayError::BadConfig(msg) => write!(f, "bad Ray configuration: {msg}"),
        }
    }
}

impl std::error::Error for RayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            RayError::ObjectMissing { id: 3 }.to_string(),
            "object 3 not found in object store"
        );
        assert!(RayError::TaskFailed {
            task: "t".into(),
            message: "oops".into()
        }
        .to_string()
        .contains("oops"));
    }
}
