//! # scriptflow-raysim
//!
//! A Ray-like distributed runtime — the substrate the paper's script
//! paradigm uses to scale beyond one process (§IV-A "Ray-cluster").
//!
//! The pieces the experiments depend on, reproduced from scratch:
//!
//! * **Typed object store** ([`store::TypedStore`], [`ObjRef`]) — a
//!   plasma-style shared store holding *real* Rust values behind type-safe
//!   references, with every `put`/`get` charged by the
//!   [`scriptflow_simcluster::ObjectStoreModel`] cost model. This is the
//!   mechanism behind GOTTA's 1.59 GB model penalty (§IV-E).
//! * **Task scheduler** ([`runtime::RayRuntime`]) — `parallel_map`
//!   submits tasks that declare `num_cpus`; the scheduler packs them onto
//!   a CPU pool sized by the Ray configuration (the paper's "number of
//!   workers" knob is exactly Ray's total CPU count, §IV-A).
//! * **Stage barriers** — the script paradigm's `ray.get(futures)` idiom:
//!   the driver blocks until all tasks of a stage finish before launching
//!   the next stage. No pipelining across stages, by construction.
//! * **`num_cpus` pinning** — tasks run their kernels at exactly their
//!   reserved CPU count; a PyTorch-style malleable kernel inside a
//!   1-CPU Ray task stays at 1 CPU, while the same kernel outside Ray may
//!   spread (the GOTTA asymmetry).
//!
//! Execution is deterministic virtual time: task closures really run (on
//! the calling thread), while durations come from the declared cost
//! model.

#![warn(missing_docs)]

pub mod actor;
pub mod error;
pub mod runtime;
pub mod store;
pub mod task;

pub use actor::{ActorPool, ActorRef};
pub use error::{RayError, RayResult};
pub use runtime::{RayConfig, RayMetrics, RayRuntime, SpanEvent, SpanKind};
pub use store::{ObjRef, TypedStore};
pub use task::{RayTask, TaskData};
