//! The Ray-like runtime: scheduler + object store + stage barriers.

use scriptflow_simcluster::{ClusterSpec, CpuPool, SimDuration, SimTime};

use crate::actor::{ActorPool, ActorRef};
use crate::error::{RayError, RayResult};
use crate::store::{ObjRef, TypedStore};
use crate::task::{RayTask, TaskData};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RayConfig {
    /// Total CPUs the scheduler may use. This is the paper's "number of
    /// workers" knob for the script paradigm: "the only way to change the
    /// number of workers in Ray was to configure the number of CPUs that
    /// Ray could use" (§IV-A).
    pub total_cpus: usize,
    /// Per-task scheduling overhead (dispatch, worker lease).
    pub scheduling_overhead: SimDuration,
}

impl Default for RayConfig {
    fn default() -> Self {
        RayConfig {
            total_cpus: 1,
            scheduling_overhead: SimDuration::from_millis(2),
        }
    }
}

impl RayConfig {
    /// Config with `n` schedulable CPUs.
    pub fn with_cpus(n: usize) -> Self {
        RayConfig {
            total_cpus: n,
            ..RayConfig::default()
        }
    }
}

/// One queued actor call: declared work plus the closure to run.
pub type ActorCall<S, R> = (SimDuration, Box<dyn FnOnce(&mut S) -> RayResult<R> + Send>);

/// A batch of calls addressed to one actor.
pub type ActorBatch<S, R> = (ActorRef<S>, Vec<ActorCall<S, R>>);

/// What a recorded runtime [`SpanEvent`] measured.
///
/// The script paradigm's observability story is the driver's timeline:
/// stage barriers and object-store traffic are the only places the
/// paradigm exposes progress (there is no per-operator display to
/// consult, which is the contrast the study crate draws against the
/// workflow engine's trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A [`RayRuntime::parallel_map`] stage, submission to barrier.
    Stage,
    /// An actor call batch ([`RayRuntime::actor_map`] /
    /// [`RayRuntime::actor_map_all`]), submission to slowest completion.
    ActorStage,
    /// A driver-side `ray.put` (bytes carried in the event).
    Put,
    /// A driver-side `ray.get` (bytes carried in the event).
    Get,
}

/// One timed interval of driver-visible runtime activity, in virtual
/// time. Collected by [`RayRuntime`] and read back via
/// [`RayRuntime::spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// What this span measured.
    pub kind: SpanKind,
    /// Human-readable label (e.g. `"stage[8 tasks]"`).
    pub label: String,
    /// Virtual time the activity started.
    pub start: SimTime,
    /// Virtual time the activity completed.
    pub end: SimTime,
    /// Object-store bytes moved, for `Put`/`Get` spans (0 otherwise).
    pub bytes: u64,
    /// False if the activity aborted (a failed or injected-abort stage).
    /// This is all the script paradigm can say about a failure: the
    /// *whole stage* is lost at the barrier, with no per-task partial
    /// progress to point at.
    pub ok: bool,
}

/// Instrumentation counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RayMetrics {
    /// Tasks executed.
    pub tasks: u64,
    /// Object-store puts.
    pub puts: u64,
    /// Object-store gets (driver + tasks).
    pub gets: u64,
    /// Maximum tasks that actually overlapped in time.
    pub peak_parallel: usize,
}

/// The runtime: owns the CPU pool, the typed object store, and the
/// virtual clock of the driver process.
pub struct RayRuntime {
    pool: CpuPool,
    store: TypedStore,
    actors: ActorPool,
    clock: SimTime,
    config: RayConfig,
    metrics: RayMetrics,
    spans: Vec<SpanEvent>,
    /// Stage barriers submitted so far (successful or aborted).
    stages_started: u64,
    /// Armed fault: (1-based stage number to strike at, error message).
    stage_abort: Option<(u64, String)>,
}

impl RayRuntime {
    /// A runtime on `cluster` with the given config. The cluster caps the
    /// usable CPUs at its total worker vCPUs.
    pub fn new(cluster: &ClusterSpec, config: RayConfig) -> RayResult<Self> {
        if config.total_cpus == 0 {
            return Err(RayError::BadConfig("total_cpus must be positive".into()));
        }
        let cpus = config.total_cpus.min(cluster.total_worker_vcpus().max(1));
        Ok(RayRuntime {
            pool: CpuPool::new(cpus),
            store: TypedStore::new(cluster.object_store()),
            actors: ActorPool::default(),
            clock: SimTime::ZERO + cluster.submit_overhead,
            config,
            metrics: RayMetrics::default(),
            spans: Vec::new(),
            stages_started: 0,
            stage_abort: None,
        })
    }

    /// A single-CPU runtime over the paper's cluster (the baseline the
    /// experiments start from).
    pub fn paper_default() -> Self {
        Self::new(&ClusterSpec::paper_cluster(), RayConfig::default())
            .expect("default config is valid")
    }

    /// Current driver virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Instrumentation counters.
    pub fn metrics(&self) -> RayMetrics {
        let (puts, gets) = self.store.op_counts();
        RayMetrics {
            puts,
            gets,
            ..self.metrics
        }
    }

    /// Schedulable CPUs.
    pub fn total_cpus(&self) -> usize {
        self.pool.capacity()
    }

    /// The recorded runtime spans, in the order the driver issued them:
    /// stage barriers, actor batches, and object-store puts/gets. This is
    /// the script paradigm's entire observable timeline — the counterpart
    /// of the workflow engine's per-operator progress trace.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    fn record_span(&mut self, kind: SpanKind, label: String, start: SimTime, bytes: u64, ok: bool) {
        self.spans.push(SpanEvent {
            kind,
            label,
            start,
            end: self.clock,
            bytes,
            ok,
        });
    }

    /// Arm a deterministic fault: the `nth_stage`-th call (1-based) to
    /// [`RayRuntime::parallel_map`] aborts at its barrier with `message`
    /// before any task runs. This is the script-paradigm counterpart of
    /// the workflow engine's `FaultPlan`: the failure unit is the *whole
    /// stage* — every task's work is lost at the barrier, the granularity
    /// gap the `study::fault_tolerance` comparison measures.
    ///
    /// Only one abort can be armed at a time; arming again replaces the
    /// previous one. The fault disarms once it fires.
    pub fn arm_stage_abort(&mut self, nth_stage: u64, message: impl Into<String>) {
        self.stage_abort = Some((nth_stage, message.into()));
    }

    /// Stage barriers submitted so far (successful or aborted).
    pub fn stages_started(&self) -> u64 {
        self.stages_started
    }

    fn take_stage_abort(&mut self) -> Option<String> {
        if self
            .stage_abort
            .as_ref()
            .is_some_and(|(at, _)| *at == self.stages_started)
        {
            return self.stage_abort.take().map(|(_, msg)| msg);
        }
        None
    }

    /// Advance the driver clock by local (in-driver) computation — the
    /// notebook cell running plain Python between Ray calls.
    pub fn advance(&mut self, work: SimDuration) {
        self.clock += work;
    }

    /// Driver-side `ray.put`: store a value, blocking the driver for the
    /// put cost.
    pub fn put<T: Send + Sync + 'static>(&mut self, value: T, bytes: u64) -> ObjRef<T> {
        let start = self.clock;
        let (r, cost) = self.store.put(value, bytes);
        self.clock += cost;
        self.record_span(SpanKind::Put, "put".into(), start, bytes, true);
        r
    }

    /// Driver-side `ray.get`: fetch a value, blocking the driver for the
    /// get cost.
    pub fn get<T: Send + Sync + 'static>(&mut self, r: ObjRef<T>) -> RayResult<std::sync::Arc<T>> {
        let start = self.clock;
        let bytes = self.store.size_of(r).unwrap_or(0);
        let (v, cost) = self.store.get(r)?;
        self.clock += cost;
        self.record_span(SpanKind::Get, "get".into(), start, bytes, true);
        Ok(v)
    }

    /// Delete an object from the store (no time cost; Ray GC is async).
    pub fn delete<T>(&mut self, r: ObjRef<T>) -> RayResult<()> {
        self.store.delete(r)
    }

    /// Submit a stage of tasks and block until all complete — the
    /// `ray.get([f.remote(x) for x in xs])` idiom. Returns results in
    /// submission order.
    ///
    /// Scheduling: tasks are placed FCFS onto the CPU pool; each task's
    /// duration is `scheduling overhead + declared input gets + work /
    /// num_cpus`. The driver clock jumps to the completion of the slowest
    /// task (the stage barrier — this is exactly what denies the script
    /// paradigm cross-stage pipelining).
    pub fn parallel_map<R>(&mut self, tasks: Vec<RayTask<R>>) -> RayResult<Vec<R>> {
        let submit = self.clock;
        let n_tasks = tasks.len();
        self.stages_started += 1;
        if let Some(message) = self.take_stage_abort() {
            // Injected abort: the stage dies at its barrier. The driver
            // still pays the dispatch overhead, gets nothing back, and
            // the only trace is one not-ok stage span.
            self.clock += self.config.scheduling_overhead;
            self.record_span(
                SpanKind::Stage,
                format!("stage[{n_tasks} tasks] ABORTED"),
                submit,
                0,
                false,
            );
            return Err(RayError::TaskFailed {
                task: format!("stage[{n_tasks} tasks]"),
                message,
            });
        }
        match self.run_stage(tasks, submit) {
            Ok(results) => {
                self.record_span(SpanKind::Stage, format!("stage[{n_tasks} tasks]"), submit, 0, true);
                Ok(results)
            }
            Err(e) => {
                // An organic task failure also surfaces at the barrier:
                // the whole stage is lost, and the span says only that.
                self.clock += self.config.scheduling_overhead;
                self.record_span(
                    SpanKind::Stage,
                    format!("stage[{n_tasks} tasks] ABORTED"),
                    submit,
                    0,
                    false,
                );
                Err(e)
            }
        }
    }

    fn run_stage<R>(&mut self, tasks: Vec<RayTask<R>>, submit: SimTime) -> RayResult<Vec<R>> {
        let mut results = Vec::with_capacity(tasks.len());
        let mut finishes: Vec<(SimTime, SimTime)> = Vec::with_capacity(tasks.len());
        let mut barrier = submit;
        for task in tasks {
            self.metrics.tasks += 1;
            // Input gets happen on the worker before the kernel runs.
            let mut input_cost = SimDuration::ZERO;
            for id in &task.inputs {
                let cost = self.store_get_cost(*id, &task.name)?;
                input_cost += cost;
            }
            let kernel = task.work.scale(1.0 / task.num_cpus as f64);
            let duration = self.config.scheduling_overhead + input_cost + kernel;
            let reservation = self.pool.reserve(submit, task.num_cpus, duration);
            finishes.push((reservation.start, reservation.finish));
            barrier = barrier.max(reservation.finish);
            // Execute the real computation now (results are identical
            // regardless of when in virtual time they "ran").
            let mut data = TaskData::new(&mut self.store);
            let out = (task.run)(&mut data)?;
            results.push(out);
        }
        // Peak overlap: how many task intervals intersect.
        let mut peak = 0usize;
        for (s, _) in &finishes {
            let overlapping = finishes.iter().filter(|(s2, f2)| s2 <= s && s < f2).count();
            peak = peak.max(overlapping);
        }
        self.metrics.peak_parallel = self.metrics.peak_parallel.max(peak);
        self.clock = barrier;
        Ok(results)
    }

    /// Create an actor: a pinned worker holding `state` between calls.
    /// Blocks the driver until the actor is ready (state ship + startup).
    pub fn create_actor<S: Send + 'static>(
        &mut self,
        state: S,
        state_bytes: u64,
        startup: SimDuration,
    ) -> ActorRef<S> {
        let (actor, ready) = self.actors.create(self.clock, state, state_bytes, startup);
        self.clock = ready;
        actor
    }

    /// Submit a batch of calls to one actor and block until all finish.
    /// Calls serialize on the actor; results come back in order.
    pub fn actor_map<S: Send + 'static, R>(
        &mut self,
        actor: ActorRef<S>,
        calls: Vec<ActorCall<S, R>>,
    ) -> RayResult<Vec<R>> {
        let submit = self.clock;
        let n_calls = calls.len();
        let mut results = Vec::with_capacity(calls.len());
        let mut finish = submit;
        for (work, f) in calls {
            let (r, done) = self.actors.call(submit, actor, work, f)?;
            finish = finish.max(done);
            results.push(r);
        }
        self.clock = finish;
        self.record_span(
            SpanKind::ActorStage,
            format!("actor[{n_calls} calls]"),
            submit,
            0,
            true,
        );
        Ok(results)
    }

    /// Submit call batches to several actors **concurrently** (the
    /// `ray.get([a.f.remote(x) for a in actors ...])` idiom): every batch
    /// is submitted at the same instant, batches on different actors
    /// overlap, and the driver blocks until the slowest actor finishes.
    pub fn actor_map_all<S: Send + 'static, R>(
        &mut self,
        batches: Vec<ActorBatch<S, R>>,
    ) -> RayResult<Vec<Vec<R>>> {
        let submit = self.clock;
        let n_batches = batches.len();
        let mut all = Vec::with_capacity(batches.len());
        let mut finish = submit;
        for (actor, calls) in batches {
            let mut results = Vec::with_capacity(calls.len());
            for (work, f) in calls {
                let (r, done) = self.actors.call(submit, actor, work, f)?;
                finish = finish.max(done);
                results.push(r);
            }
            all.push(results);
        }
        self.clock = finish;
        self.record_span(
            SpanKind::ActorStage,
            format!("actors[{n_batches} batches]"),
            submit,
            0,
            true,
        );
        Ok(all)
    }

    /// Terminate an actor.
    pub fn kill_actor<S>(&mut self, actor: ActorRef<S>) -> RayResult<()> {
        self.actors.kill(actor)
    }

    /// Like [`RayRuntime::parallel_map`], but transient task failures are
    /// retried: `make_task(index, attempt)` rebuilds the task for each
    /// attempt (closures are consumed per run), up to `max_attempts`.
    /// Failed attempts still cost their scheduling + input time.
    pub fn parallel_map_retry<R>(
        &mut self,
        n_tasks: usize,
        max_attempts: usize,
        make_task: impl Fn(usize, usize) -> RayTask<R>,
    ) -> RayResult<Vec<R>> {
        assert!(max_attempts > 0, "need at least one attempt");
        let mut results = Vec::with_capacity(n_tasks);
        for idx in 0..n_tasks {
            let mut last_err = None;
            let mut done = None;
            for attempt in 0..max_attempts {
                let task = make_task(idx, attempt);
                match self.parallel_map(vec![task]) {
                    Ok(mut r) => {
                        done = Some(r.pop().expect("one task, one result"));
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match done {
                Some(r) => results.push(r),
                None => return Err(last_err.expect("failed without an error")),
            }
        }
        Ok(results)
    }

    /// Evict least-recently-used objects until the store holds at most
    /// `target_bytes` (no virtual-time cost; eviction is background GC).
    pub fn evict_to(&mut self, target_bytes: u64) -> usize {
        self.store.evict_lru(target_bytes).len()
    }

    fn store_get_cost(
        &mut self,
        id: scriptflow_simcluster::store::ObjectId,
        task: &str,
    ) -> RayResult<SimDuration> {
        self.store.get_cost_by_id(id).map_err(|_| RayError::TaskFailed {
            task: task.to_owned(),
            message: format!("declared input object {} missing", id.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_simcluster::ClusterSpec;

    fn runtime(cpus: usize) -> RayRuntime {
        RayRuntime::new(&ClusterSpec::paper_cluster(), RayConfig::with_cpus(cpus)).unwrap()
    }

    #[test]
    fn rejects_zero_cpus() {
        assert!(RayRuntime::new(&ClusterSpec::paper_cluster(), RayConfig::with_cpus(0)).is_err());
    }

    #[test]
    fn put_get_roundtrip() {
        let mut rt = runtime(1);
        let before = rt.now();
        let r = rt.put(vec![1i64, 2, 3], 1_000_000);
        assert!(rt.now() > before);
        let v = rt.get(r).unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
    }

    #[test]
    fn stage_barrier_takes_slowest_task() {
        let mut rt = runtime(4);
        let t0 = rt.now();
        let results = rt
            .parallel_map(
                (0..4)
                    .map(|i| {
                        RayTask::new(
                            format!("t{i}"),
                            SimDuration::from_secs(1 + i),
                            move |_| Ok(i),
                        )
                    })
                    .collect(),
            )
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
        let elapsed = rt.now().since(t0).as_secs_f64();
        // Slowest task: 4s (+ small overheads). With 4 CPUs they overlap.
        assert!((4.0..4.5).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn fewer_cpus_serialize_tasks() {
        let run = |cpus: usize| {
            let mut rt = runtime(cpus);
            let t0 = rt.now();
            rt.parallel_map(
                (0..4)
                    .map(|i| RayTask::new(format!("t{i}"), SimDuration::from_secs(1), move |_| Ok(i)))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            rt.now().since(t0).as_secs_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(one > 3.9, "1 CPU should serialize 4 seconds of tasks: {one}");
        assert!(four < 1.5, "4 CPUs should overlap: {four}");
    }

    #[test]
    fn declared_inputs_charge_gets_per_task() {
        let mut rt = runtime(4);
        // A "model" of 2 GB: each task pays the get again.
        let model = rt.put(vec![0u8; 16], 2_000_000_000);
        let after_put = rt.now();
        rt.parallel_map(
            (0..4)
                .map(|i| {
                    RayTask::new(format!("t{i}"), SimDuration::from_millis(1), move |d| {
                        let m = d.get(model)?;
                        Ok(m.len() + i)
                    })
                    .with_input(model)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let elapsed = rt.now().since(after_put).as_secs_f64();
        // 2 GB at 2 GB/s = 1 s per get; parallel tasks each pay it.
        assert!(elapsed > 0.9, "model get cost not charged: {elapsed}");
        assert!(rt.metrics().gets >= 8, "declared + closure gets both count");
    }

    #[test]
    fn num_cpus_divides_kernel_time() {
        let mut rt = runtime(8);
        let t0 = rt.now();
        rt.parallel_map(vec![RayTask::new(
            "wide",
            SimDuration::from_secs(8),
            |_| Ok(()),
        )
        .with_num_cpus(8)])
            .unwrap();
        let elapsed = rt.now().since(t0).as_secs_f64();
        assert!((1.0..1.2).contains(&elapsed), "8 CPUs over 8s work: {elapsed}");
    }

    #[test]
    fn task_failure_names_task() {
        let mut rt = runtime(1);
        let err = rt
            .parallel_map(vec![RayTask::new(
                "bad task",
                SimDuration::from_millis(1),
                |_| -> RayResult<()> { Err(RayTask::<()>::failure("bad task", "boom")) },
            )])
            .unwrap_err();
        assert!(err.to_string().contains("bad task"));
    }

    #[test]
    fn config_caps_at_cluster_cpus() {
        let rt = RayRuntime::new(&ClusterSpec::single_node(2), RayConfig::with_cpus(64)).unwrap();
        assert_eq!(rt.total_cpus(), 2);
    }

    #[test]
    fn retries_recover_transient_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let mut rt = runtime(2);
        let failures = Arc::new(AtomicUsize::new(0));
        let f2 = failures.clone();
        let results = rt
            .parallel_map_retry(3, 3, move |idx, attempt| {
                let f = f2.clone();
                RayTask::new(
                    format!("t{idx}a{attempt}"),
                    SimDuration::from_millis(10),
                    move |_| {
                        // Task 1 fails on its first two attempts.
                        if idx == 1 && attempt < 2 {
                            f.fetch_add(1, Ordering::Relaxed);
                            return Err(RayTask::<usize>::failure("t1", "flaky"));
                        }
                        Ok(idx * 10)
                    },
                )
            })
            .unwrap();
        assert_eq!(results, vec![0, 10, 20]);
        assert_eq!(failures.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retries_exhausted_propagate_error() {
        let mut rt = runtime(1);
        let err = rt
            .parallel_map_retry(1, 2, |_, _| {
                RayTask::new("always bad", SimDuration::from_millis(1), |_| {
                    Err::<(), _>(RayTask::<()>::failure("always bad", "permanent"))
                })
            })
            .unwrap_err();
        assert!(err.to_string().contains("permanent"));
    }

    #[test]
    fn eviction_via_runtime() {
        let mut rt = runtime(1);
        let a = rt.put(vec![0u8; 8], 1_000_000);
        let _b = rt.put(vec![1u8; 8], 1_000_000);
        assert_eq!(rt.evict_to(1_000_000), 1);
        // `a` was least recently used.
        assert!(rt.get(a).is_err());
    }

    #[test]
    fn spans_record_store_traffic_and_stage_barriers() {
        let mut rt = runtime(2);
        let r = rt.put(vec![0u8; 8], 5_000_000);
        rt.get(r).unwrap();
        rt.parallel_map(
            (0..3)
                .map(|i| RayTask::new(format!("t{i}"), SimDuration::from_secs(1), move |_| Ok(i)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let spans = rt.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, SpanKind::Put);
        assert_eq!(spans[0].bytes, 5_000_000);
        assert_eq!(spans[1].kind, SpanKind::Get);
        assert_eq!(spans[1].bytes, 5_000_000);
        assert_eq!(spans[2].kind, SpanKind::Stage);
        assert_eq!(spans[2].label, "stage[3 tasks]");
        // Spans are ordered and non-degenerate intervals.
        for s in spans {
            assert!(s.end >= s.start, "{s:?}");
        }
        assert!(spans[2].end > spans[2].start, "a stage takes time");
    }

    #[test]
    fn actor_batches_record_actor_stage_spans() {
        let mut rt = runtime(2);
        let actor = rt.create_actor(0u64, 1_000, SimDuration::from_millis(5));
        rt.actor_map(
            actor,
            (0..2)
                .map(|i| {
                    (
                        SimDuration::from_millis(10),
                        Box::new(move |s: &mut u64| {
                            *s += i;
                            Ok(*s)
                        })
                            as Box<dyn FnOnce(&mut u64) -> RayResult<u64> + Send>,
                    )
                })
                .collect(),
        )
        .unwrap();
        let span = rt.spans().last().unwrap();
        assert_eq!(span.kind, SpanKind::ActorStage);
        assert_eq!(span.label, "actor[2 calls]");
    }

    #[test]
    fn armed_stage_abort_kills_the_whole_stage() {
        let mut rt = runtime(2);
        rt.arm_stage_abort(2, "node lost");
        rt.parallel_map(vec![RayTask::new("t0", SimDuration::from_millis(1), |_| Ok(0))])
            .unwrap();
        let err = rt
            .parallel_map(
                (0..3)
                    .map(|i| {
                        RayTask::new(format!("t{i}"), SimDuration::from_millis(1), move |_| Ok(i))
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("node lost"), "{err}");
        assert_eq!(rt.stages_started(), 2);
        let spans = rt.spans();
        assert!(spans[spans.len() - 2].ok);
        let last = spans.last().unwrap();
        assert_eq!(last.kind, SpanKind::Stage);
        assert_eq!(last.label, "stage[3 tasks] ABORTED");
        assert!(!last.ok);
        // The fault disarms after firing: the next stage runs normally.
        rt.parallel_map(vec![RayTask::new("t1", SimDuration::from_millis(1), |_| Ok(1))])
            .unwrap();
        assert!(rt.spans().last().unwrap().ok);
    }

    #[test]
    fn organic_task_failure_records_aborted_stage_span() {
        let mut rt = runtime(1);
        let err = rt
            .parallel_map(vec![RayTask::new("bad", SimDuration::from_millis(1), |_| {
                Err::<i64, _>(RayTask::<i64>::failure("bad", "boom"))
            })])
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        let span = rt.spans().last().unwrap();
        assert!(!span.ok);
        assert!(span.label.contains("ABORTED"), "{span:?}");
        assert!(span.end >= span.start);
    }

    #[test]
    fn metrics_track_peak_parallelism() {
        let mut rt = runtime(2);
        rt.parallel_map(
            (0..4)
                .map(|i| RayTask::new(format!("t{i}"), SimDuration::from_secs(1), move |_| Ok(i)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(rt.metrics().peak_parallel, 2);
    }
}
