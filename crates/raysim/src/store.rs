//! Typed object store: real values + modelled costs.

use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use scriptflow_simcluster::store::{ObjectId, ObjectStoreModel};
use scriptflow_simcluster::SimDuration;

use crate::error::{RayError, RayResult};

/// Typed reference to an object in the store (Ray's `ObjectRef`).
pub struct ObjRef<T> {
    id: ObjectId,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: derive would bound T unnecessarily.
impl<T> Clone for ObjRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ObjRef<T> {}
impl<T> std::fmt::Debug for ObjRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjRef({})", self.id.0)
    }
}

impl<T> ObjRef<T> {
    /// The underlying store id.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

/// The store: holds real values (type-erased) and delegates cost
/// accounting to the [`ObjectStoreModel`].
pub struct TypedStore {
    model: ObjectStoreModel,
    values: HashMap<ObjectId, Arc<dyn Any + Send + Sync>>,
    /// Monotone access stamps for LRU eviction.
    access: HashMap<ObjectId, u64>,
    access_seq: u64,
}

impl TypedStore {
    /// An empty store over the given cost model.
    pub fn new(model: ObjectStoreModel) -> Self {
        TypedStore {
            model,
            values: HashMap::new(),
            access: HashMap::new(),
            access_seq: 0,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        self.access_seq += 1;
        self.access.insert(id, self.access_seq);
    }

    /// Store `value`, declaring its serialized size; returns the typed
    /// reference and the time the put took.
    pub fn put<T: Send + Sync + 'static>(
        &mut self,
        value: T,
        bytes: u64,
    ) -> (ObjRef<T>, SimDuration) {
        let (id, cost) = self.model.put(bytes);
        self.values.insert(id, Arc::new(value));
        self.touch(id);
        (
            ObjRef {
                id,
                _marker: PhantomData,
            },
            cost,
        )
    }

    /// Fetch a value; returns a shared handle and the time the get took.
    ///
    /// Every call pays the full copy cost again — the Ray behaviour the
    /// paper measured for large pinned models.
    pub fn get<T: Send + Sync + 'static>(
        &mut self,
        r: ObjRef<T>,
    ) -> RayResult<(Arc<T>, SimDuration)> {
        let cost = self
            .model
            .get(r.id)
            .map_err(|_| RayError::ObjectMissing { id: r.id.0 })?;
        let any = self
            .values
            .get(&r.id)
            .ok_or(RayError::ObjectMissing { id: r.id.0 })?
            .clone();
        let typed = any
            .downcast::<T>()
            .map_err(|_| RayError::ObjectTypeMismatch {
                id: r.id.0,
                expected: std::any::type_name::<T>(),
            })?;
        self.touch(r.id);
        Ok((typed, cost))
    }

    /// Evict least-recently-used objects until resident bytes drop to
    /// `target_bytes` (Ray's plasma eviction under memory pressure).
    /// Returns the evicted object ids, oldest first.
    pub fn evict_lru(&mut self, target_bytes: u64) -> Vec<ObjectId> {
        let mut evicted = Vec::new();
        while self.model.resident_bytes() > target_bytes {
            let Some((&victim, _)) = self
                .access
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
            else {
                break;
            };
            self.model.delete(victim).expect("victim is resident");
            self.values.remove(&victim);
            self.access.remove(&victim);
            evicted.push(victim);
        }
        evicted
    }

    /// Charge one get by raw id without fetching the value (used by the
    /// scheduler for declared task inputs; the typed fetch happens later
    /// inside the task closure).
    pub fn get_cost_by_id(&mut self, id: ObjectId) -> RayResult<SimDuration> {
        self.model
            .get(id)
            .map_err(|_| RayError::ObjectMissing { id: id.0 })
    }

    /// Size of one object's payload, if resident.
    pub fn size_of<T>(&self, r: ObjRef<T>) -> Option<u64> {
        self.model.size_of(r.id)
    }

    /// Remove an object.
    pub fn delete<T>(&mut self, r: ObjRef<T>) -> RayResult<()> {
        self.model
            .delete(r.id)
            .map_err(|_| RayError::ObjectMissing { id: r.id.0 })?;
        self.values.remove(&r.id);
        self.access.remove(&r.id);
        Ok(())
    }

    /// Total bytes resident (cost-model view).
    pub fn resident_bytes(&self) -> u64 {
        self.model.resident_bytes()
    }

    /// (puts, gets) counters.
    pub fn op_counts(&self) -> (u64, u64) {
        self.model.op_counts()
    }

    /// True if the store is over capacity (spilling).
    pub fn is_spilling(&self) -> bool {
        self.model.is_spilling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_simcluster::store::StoreConfig;

    fn store() -> TypedStore {
        TypedStore::new(ObjectStoreModel::new(StoreConfig {
            op_latency: SimDuration::from_micros(10),
            copy_bytes_per_sec: 1e6,
            capacity_bytes: 10_000,
            spill_penalty: 4.0,
        }))
    }

    #[test]
    fn put_get_roundtrip_with_costs() {
        let mut s = store();
        let (r, put_cost) = s.put(vec![1u32, 2, 3], 1_000);
        assert_eq!(put_cost.as_micros(), 10 + 1_000);
        let (v, get_cost) = s.get(r).unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(get_cost.as_micros(), 10 + 1_000);
        assert_eq!(s.op_counts(), (1, 1));
        assert_eq!(s.size_of(r), Some(1_000));
    }

    #[test]
    fn type_mismatch_detected() {
        let mut s = store();
        let (r, _) = s.put(42i64, 8);
        // Forge a ref of the wrong type with the same id.
        let wrong: ObjRef<String> = ObjRef {
            id: r.id(),
            _marker: PhantomData,
        };
        let err = s.get(wrong).unwrap_err();
        assert!(matches!(err, RayError::ObjectTypeMismatch { .. }));
    }

    #[test]
    fn missing_object() {
        let mut s = store();
        let (r, _) = s.put("x".to_owned(), 1);
        s.delete(r).unwrap();
        assert!(matches!(s.get(r), Err(RayError::ObjectMissing { .. })));
    }

    #[test]
    fn refs_are_copy() {
        let mut s = store();
        let (r, _) = s.put(1u8, 1);
        let r2 = r;
        let _ = s.get(r).unwrap();
        let _ = s.get(r2).unwrap();
        assert_eq!(s.op_counts().1, 2);
    }

    #[test]
    fn lru_eviction_removes_stalest_first() {
        let mut s = store();
        let (a, _) = s.put(vec![0u8; 1], 4_000);
        let (b, _) = s.put(vec![1u8; 1], 4_000);
        let (c, _) = s.put(vec![2u8; 1], 4_000);
        // Refresh `a` so `b` becomes the LRU victim.
        let _ = s.get(a).unwrap();
        let evicted = s.evict_lru(8_000);
        assert_eq!(evicted, vec![b.id()]);
        assert!(s.get(b).is_err());
        assert!(s.get(a).is_ok() && s.get(c).is_ok());
        // Evicting to zero clears everything.
        let evicted = s.evict_lru(0);
        assert_eq!(evicted.len(), 2);
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn shared_value_not_cloned() {
        let mut s = store();
        let big = vec![0u8; 1024];
        let (r, _) = s.put(big, 1024);
        let (a, _) = s.get(r).unwrap();
        let (b, _) = s.get(r).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
