//! Remote task specification.

use std::sync::Arc;

use scriptflow_simcluster::store::ObjectId;
use scriptflow_simcluster::SimDuration;

use crate::error::{RayError, RayResult};
use crate::store::{ObjRef, TypedStore};

/// Read-only view of the object store handed to a running task.
///
/// Access through this view is *free* in virtual time: the runtime already
/// charged the declared [`RayTask::inputs`] gets when the task started,
/// mirroring how a Ray worker deserializes its arguments once up front.
pub struct TaskData<'a> {
    store: &'a mut TypedStore,
}

impl<'a> TaskData<'a> {
    pub(crate) fn new(store: &'a mut TypedStore) -> Self {
        TaskData { store }
    }

    /// Fetch an object's value. The time cost was charged at task start
    /// if the ref was declared in `inputs`; undeclared accesses are a
    /// task bug the runtime rejects.
    pub fn get<T: Send + Sync + 'static>(&mut self, r: ObjRef<T>) -> RayResult<Arc<T>> {
        // Note: the cost-model `get` counter still ticks — undeclared
        // data access cannot hide from instrumentation.
        self.store.get(r).map(|(v, _)| v)
    }
}

type TaskFn<R> = Box<dyn FnOnce(&mut TaskData<'_>) -> RayResult<R> + Send>;

/// One remote task: resource request + cost declaration + real closure.
pub struct RayTask<R> {
    /// Display name (used in error traces).
    pub name: String,
    /// CPUs this task reserves (Ray's `num_cpus`; default 1).
    pub num_cpus: usize,
    /// Total CPU work, calibrated in Python-time. The kernel runs at
    /// exactly `num_cpus` parallelism — Ray pins library threads to the
    /// reservation (§IV-A "worker configuration").
    pub work: SimDuration,
    /// Object refs fetched when the task starts (each charges a store
    /// get).
    pub inputs: Vec<ObjectId>,
    /// The real computation.
    pub run: TaskFn<R>,
}

impl<R> RayTask<R> {
    /// A 1-CPU task with the given virtual work and closure.
    pub fn new(
        name: impl Into<String>,
        work: SimDuration,
        run: impl FnOnce(&mut TaskData<'_>) -> RayResult<R> + Send + 'static,
    ) -> Self {
        RayTask {
            name: name.into(),
            num_cpus: 1,
            work,
            inputs: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Reserve more CPUs.
    pub fn with_num_cpus(mut self, cpus: usize) -> Self {
        assert!(cpus > 0, "a task needs at least one CPU");
        self.num_cpus = cpus;
        self
    }

    /// Declare an object-store input (charged at task start).
    pub fn with_input<T>(mut self, r: ObjRef<T>) -> Self {
        self.inputs.push(r.id());
        self
    }

    /// Wrap a user error into a task failure for this task.
    pub fn failure(name: &str, message: impl Into<String>) -> RayError {
        RayError::TaskFailed {
            task: name.to_owned(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_simcluster::ObjectStoreModel;

    #[test]
    fn builder_configures_task() {
        let mut store = TypedStore::new(ObjectStoreModel::default());
        let (r, _) = store.put(7i64, 8);
        let t = RayTask::new("t", SimDuration::from_millis(5), move |d| {
            Ok(*d.get(r)? * 2)
        })
        .with_num_cpus(2)
        .with_input(r);
        assert_eq!(t.num_cpus, 2);
        assert_eq!(t.inputs, vec![r.id()]);
        let mut data = TaskData::new(&mut store);
        let out = (t.run)(&mut data).unwrap();
        assert_eq!(out, 14);
    }
}
