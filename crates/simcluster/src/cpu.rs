//! CPU pools: k-server resources with earliest-free FCFS assignment.

use crate::time::{SimDuration, SimTime};

/// A pool of identical CPUs on one machine.
///
/// The model is intentionally coarse but captures what the experiments
/// need: a work item asks for `n` CPUs for a duration; the pool assigns
/// the `n` earliest-free CPUs and returns when the work starts and
/// finishes. This reproduces Ray's `num_cpus` resource accounting (a task
/// declaring 1 CPU waits until one is free) and Texera's worker threads
/// competing for cores on a machine.
#[derive(Debug, Clone)]
pub struct CpuPool {
    free_at: Vec<SimTime>,
}

/// When a reserved work item runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the CPUs became available and the work began.
    pub start: SimTime,
    /// When the work completes and the CPUs free up.
    pub finish: SimTime,
}

impl CpuPool {
    /// A pool of `cpus` CPUs, all free at time zero.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "a CPU pool needs at least one CPU");
        CpuPool {
            free_at: vec![SimTime::ZERO; cpus],
        }
    }

    /// Total CPUs in the pool.
    pub fn capacity(&self) -> usize {
        self.free_at.len()
    }

    /// CPUs idle at time `now`.
    pub fn idle_at(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|t| **t <= now).count()
    }

    /// The earliest time at which `cpus` CPUs will be simultaneously free.
    pub fn earliest_start(&self, now: SimTime, cpus: usize) -> SimTime {
        assert!(
            cpus <= self.free_at.len(),
            "requested {cpus} CPUs from a pool of {}",
            self.free_at.len()
        );
        let mut frees: Vec<SimTime> = self.free_at.clone();
        frees.sort_unstable();
        frees[cpus - 1].max(now)
    }

    /// Reserve `cpus` CPUs for `duration`, no earlier than `now`.
    ///
    /// Picks the `cpus` earliest-free CPUs (FCFS); the work starts when the
    /// last of them frees up (or at `now`, whichever is later) and holds
    /// them until `start + duration`.
    pub fn reserve(&mut self, now: SimTime, cpus: usize, duration: SimDuration) -> Reservation {
        assert!(cpus > 0, "must reserve at least one CPU");
        assert!(
            cpus <= self.free_at.len(),
            "requested {cpus} CPUs from a pool of {}",
            self.free_at.len()
        );
        // Indices of the `cpus` earliest-free CPUs.
        let mut order: Vec<usize> = (0..self.free_at.len()).collect();
        order.sort_by_key(|&i| self.free_at[i]);
        let chosen = &order[..cpus];
        let start = chosen
            .iter()
            .map(|&i| self.free_at[i])
            .max()
            .expect("chosen is non-empty")
            .max(now);
        let finish = start + duration;
        for &i in chosen {
            self.free_at[i] = finish;
        }
        Reservation { start, finish }
    }

    /// Reserve a *malleable* work item: `total_work` CPU-seconds that may
    /// spread across up to `max_cpus` CPUs (perfectly parallel region).
    ///
    /// Used for model training/inference kernels whose internal
    /// parallelism the paper contrasts (Ray pinned PyTorch to 1 CPU;
    /// Texera let it use the whole machine).
    pub fn reserve_malleable(
        &mut self,
        now: SimTime,
        max_cpus: usize,
        total_work: SimDuration,
    ) -> Reservation {
        let cpus = max_cpus.min(self.capacity()).max(1);
        let per_cpu = total_work.scale(1.0 / cpus as f64);
        self.reserve(now, cpus, per_cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }
    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn single_cpu_serializes() {
        let mut pool = CpuPool::new(1);
        let r1 = pool.reserve(SimTime::ZERO, 1, d(100));
        let r2 = pool.reserve(SimTime::ZERO, 1, d(50));
        assert_eq!(r1.start, t(0));
        assert_eq!(r1.finish, t(100));
        assert_eq!(r2.start, t(100));
        assert_eq!(r2.finish, t(150));
    }

    #[test]
    fn parallel_cpus_overlap() {
        let mut pool = CpuPool::new(4);
        let rs: Vec<_> = (0..4).map(|_| pool.reserve(SimTime::ZERO, 1, d(100))).collect();
        for r in &rs {
            assert_eq!(r.start, t(0));
            assert_eq!(r.finish, t(100));
        }
        // Fifth task waits for a core.
        let r5 = pool.reserve(SimTime::ZERO, 1, d(100));
        assert_eq!(r5.start, t(100));
    }

    #[test]
    fn multi_cpu_reservation_waits_for_all() {
        let mut pool = CpuPool::new(2);
        pool.reserve(SimTime::ZERO, 1, d(100));
        // Asking for both CPUs must wait for the busy one.
        let r = pool.reserve(SimTime::ZERO, 2, d(10));
        assert_eq!(r.start, t(100));
        assert_eq!(r.finish, t(110));
    }

    #[test]
    fn now_lower_bounds_start() {
        let mut pool = CpuPool::new(2);
        let r = pool.reserve(t(500), 1, d(10));
        assert_eq!(r.start, t(500));
    }

    #[test]
    fn idle_accounting() {
        let mut pool = CpuPool::new(3);
        assert_eq!(pool.idle_at(SimTime::ZERO), 3);
        pool.reserve(SimTime::ZERO, 2, d(100));
        assert_eq!(pool.idle_at(t(50)), 1);
        assert_eq!(pool.idle_at(t(100)), 3);
    }

    #[test]
    fn earliest_start_matches_reserve() {
        let mut pool = CpuPool::new(2);
        pool.reserve(SimTime::ZERO, 1, d(100));
        pool.reserve(SimTime::ZERO, 1, d(200));
        assert_eq!(pool.earliest_start(SimTime::ZERO, 1), t(100));
        assert_eq!(pool.earliest_start(SimTime::ZERO, 2), t(200));
        let r = pool.reserve(SimTime::ZERO, 1, d(5));
        assert_eq!(r.start, t(100));
    }

    #[test]
    fn malleable_spreads_work() {
        let mut pool = CpuPool::new(8);
        // 800µs of work over up to 8 CPUs → 100µs wall.
        let r = pool.reserve_malleable(SimTime::ZERO, 8, d(800));
        assert_eq!(r.finish, t(100));
        // Limited to 1 CPU → full 800µs wall (the Ray num_cpus=1 case).
        let mut pool1 = CpuPool::new(8);
        let r1 = pool1.reserve_malleable(SimTime::ZERO, 1, d(800));
        assert_eq!(r1.finish, t(800));
    }

    #[test]
    #[should_panic(expected = "requested 3 CPUs")]
    fn over_capacity_panics() {
        CpuPool::new(2).reserve(SimTime::ZERO, 3, d(1));
    }
}
