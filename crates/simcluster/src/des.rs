//! Generic discrete-event simulation driver.
//!
//! Both paradigm engines implement [`SimModel`] with their own typed event
//! enums (batch completions for the workflow engine, task completions for
//! the Ray-like runtime) and share this driver. Determinism is guaranteed
//! by breaking time ties with a monotone sequence number: two events at
//! the same instant fire in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The event-handling half of a simulation.
pub trait SimModel {
    /// The engine-specific event type.
    type Event;

    /// Handle one event at virtual time `now`, scheduling follow-up events
    /// through the scheduler.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct HeapItem<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapItem<E> {}
impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Pending-event queue handed to [`SimModel::handle`].
pub struct Scheduler<E> {
    heap: BinaryHeap<HeapItem<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current virtual time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — an engine-model bug that would
    /// silently corrupt causality if allowed through.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.heap.push(HeapItem {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|item| (item.time, item.event))
    }
}

/// Drive `model` until the event queue drains; returns the timestamp of
/// the final event (the simulation makespan).
pub fn run<M: SimModel>(model: &mut M, sched: &mut Scheduler<M::Event>) -> SimTime {
    let mut last = sched.now;
    while let Some((time, event)) = sched.pop() {
        debug_assert!(time >= sched.now, "event queue yielded out-of-order time");
        sched.now = time;
        last = time;
        sched.processed += 1;
        model.handle(time, event, sched);
    }
    last
}

/// Drive `model` but stop (with an error) if more than `limit` events are
/// processed — a guard against accidental event loops in engine models.
pub fn run_bounded<M: SimModel>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    limit: u64,
) -> Result<SimTime, String> {
    let start = sched.processed;
    let mut last = sched.now;
    while let Some((time, event)) = sched.pop() {
        sched.now = time;
        last = time;
        sched.processed += 1;
        if sched.processed - start > limit {
            return Err(format!("event budget {limit} exhausted at {time}"));
        }
        model.handle(time, event, sched);
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order events fire in and optionally chains
    /// follow-ups.
    struct Recorder {
        seen: Vec<(u64, u32)>,
        chain: u32,
    }

    impl SimModel for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_micros(), ev));
            if ev < self.chain {
                sched.schedule_after(SimDuration::from_micros(10), ev + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut m = Recorder {
            seen: vec![],
            chain: 0,
        };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(30), 3);
        s.schedule_at(SimTime::from_micros(10), 1);
        s.schedule_at(SimTime::from_micros(20), 2);
        let end = run(&mut m, &mut s);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(end.as_micros(), 30);
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut m = Recorder {
            seen: vec![],
            chain: 0,
        };
        let mut s = Scheduler::new();
        for ev in [7u32, 8, 9] {
            s.schedule_at(SimTime::from_micros(5), ev);
        }
        run(&mut m, &mut s);
        assert_eq!(m.seen, vec![(5, 7), (5, 8), (5, 9)]);
    }

    #[test]
    fn chained_events_advance_time() {
        let mut m = Recorder {
            seen: vec![],
            chain: 3,
        };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::ZERO, 0);
        let end = run(&mut m, &mut s);
        assert_eq!(m.seen.len(), 4);
        assert_eq!(end.as_micros(), 30);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl SimModel for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                if now > SimTime::ZERO {
                    sched.schedule_at(SimTime::ZERO, ());
                }
            }
        }
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(5), ());
        run(&mut Bad, &mut s);
    }

    #[test]
    fn bounded_run_catches_loops() {
        struct Looper;
        impl SimModel for Looper {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_after(SimDuration::from_micros(1), ());
            }
        }
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::ZERO, ());
        let err = run_bounded(&mut Looper, &mut s, 100).unwrap_err();
        assert!(err.contains("event budget"));
    }

    #[test]
    fn determinism_across_runs() {
        let run_once = || {
            let mut m = Recorder {
                seen: vec![],
                chain: 50,
            };
            let mut s = Scheduler::new();
            s.schedule_at(SimTime::ZERO, 0);
            s.schedule_at(SimTime::from_micros(25), 40);
            run(&mut m, &mut s);
            m.seen
        };
        assert_eq!(run_once(), run_once());
    }
}
