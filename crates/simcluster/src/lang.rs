//! Per-language execution and serialization cost profiles.
//!
//! The paper's Aspect #3 and Experiment #2 (Table I) hinge on operators
//! being implemented in different languages: Texera ships a Scala join
//! that beat the Python one by 24.5% on small data but only 0.92% on
//! large data. We model a language as a pair of multipliers applied to
//! the calibrated baseline costs (which are expressed in "Python time"),
//! plus a boundary cost for moving tuples between operators implemented
//! in different languages.

use std::fmt;

use crate::time::SimDuration;

/// Implementation language of an operator or script step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// CPython — the baseline the cost model is calibrated in.
    Python,
    /// Scala on the JVM (Texera's native operators).
    Scala,
    /// Java on the JVM.
    Java,
    /// R.
    R,
    /// Julia.
    Julia,
}

impl Language {
    /// All supported languages.
    pub const ALL: [Language; 5] = [
        Language::Python,
        Language::Scala,
        Language::Java,
        Language::R,
        Language::Julia,
    ];
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Language::Python => "Python",
            Language::Scala => "Scala",
            Language::Java => "Java",
            Language::R => "R",
            Language::Julia => "Julia",
        };
        f.write_str(s)
    }
}

/// Cost multipliers for one language.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanguageProfile {
    /// Multiplier on interpreted/compute-bound per-tuple work
    /// (1.0 = Python baseline; < 1.0 is faster).
    pub compute_multiplier: f64,
    /// Multiplier on (de)serialization work at operator boundaries.
    pub serde_multiplier: f64,
    /// One-time runtime startup cost (interpreter boot / JVM warm-up)
    /// charged per worker process.
    pub startup: SimDuration,
}

/// The language cost table used by both engines.
#[derive(Debug, Clone)]
pub struct LanguageTable {
    python: LanguageProfile,
    scala: LanguageProfile,
    java: LanguageProfile,
    r: LanguageProfile,
    julia: LanguageProfile,
    /// Extra per-byte cost when a tuple crosses a language boundary
    /// (Arrow-style conversion between runtimes), in seconds per byte.
    pub cross_language_secs_per_byte: f64,
}

impl Default for LanguageTable {
    /// Calibrated defaults. Python is the 1.0 baseline. Scala/Java run
    /// hash-probe style per-tuple work roughly 3–4× faster than
    /// interpreted Python but pay JVM warm-up; R is slower than Python
    /// for row-at-a-time work; Julia JITs to near-JVM speed.
    fn default() -> Self {
        LanguageTable {
            python: LanguageProfile {
                compute_multiplier: 1.0,
                serde_multiplier: 1.0,
                startup: SimDuration::from_millis(150),
            },
            scala: LanguageProfile {
                compute_multiplier: 0.28,
                serde_multiplier: 0.55,
                startup: SimDuration::from_millis(900),
            },
            java: LanguageProfile {
                compute_multiplier: 0.30,
                serde_multiplier: 0.55,
                startup: SimDuration::from_millis(850),
            },
            r: LanguageProfile {
                compute_multiplier: 1.6,
                serde_multiplier: 1.3,
                startup: SimDuration::from_millis(350),
            },
            julia: LanguageProfile {
                compute_multiplier: 0.35,
                serde_multiplier: 0.7,
                startup: SimDuration::from_millis(1200),
            },
            cross_language_secs_per_byte: 6e-9,
        }
    }
}

impl LanguageTable {
    /// Profile for one language.
    pub fn profile(&self, lang: Language) -> &LanguageProfile {
        match lang {
            Language::Python => &self.python,
            Language::Scala => &self.scala,
            Language::Java => &self.java,
            Language::R => &self.r,
            Language::Julia => &self.julia,
        }
    }

    /// Scale a Python-calibrated compute duration to `lang`.
    pub fn compute(&self, lang: Language, python_time: SimDuration) -> SimDuration {
        python_time.scale(self.profile(lang).compute_multiplier)
    }

    /// Scale a Python-calibrated serde duration to `lang`.
    pub fn serde(&self, lang: Language, python_time: SimDuration) -> SimDuration {
        python_time.scale(self.profile(lang).serde_multiplier)
    }

    /// Boundary-crossing cost for `bytes` moving from `from` to `to`.
    /// Zero when the languages match (in-process hand-off).
    pub fn boundary(&self, from: Language, to: Language, bytes: usize) -> SimDuration {
        if from == to {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 * self.cross_language_secs_per_byte)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn python_is_baseline() {
        let t = LanguageTable::default();
        let base = SimDuration::from_millis(10);
        assert_eq!(t.compute(Language::Python, base), base);
        assert_eq!(t.serde(Language::Python, base), base);
    }

    #[test]
    fn scala_is_faster_for_compute() {
        let t = LanguageTable::default();
        let base = SimDuration::from_millis(10);
        assert!(t.compute(Language::Scala, base) < base);
        assert!(t.compute(Language::R, base) > base);
    }

    #[test]
    fn boundary_cost_zero_same_language() {
        let t = LanguageTable::default();
        assert_eq!(
            t.boundary(Language::Python, Language::Python, 1_000_000),
            SimDuration::ZERO
        );
        assert!(
            t.boundary(Language::Python, Language::Scala, 1_000_000) > SimDuration::ZERO
        );
    }

    #[test]
    fn boundary_scales_with_bytes() {
        let t = LanguageTable::default();
        let small = t.boundary(Language::Python, Language::Scala, 1_000);
        let large = t.boundary(Language::Python, Language::Scala, 1_000_000);
        assert!(large > small);
    }

    #[test]
    fn all_languages_have_profiles() {
        let t = LanguageTable::default();
        for lang in Language::ALL {
            let p = t.profile(lang);
            assert!(p.compute_multiplier > 0.0);
            assert!(p.serde_multiplier > 0.0);
        }
    }

    #[test]
    fn jvm_startup_exceeds_python() {
        let t = LanguageTable::default();
        assert!(t.profile(Language::Scala).startup > t.profile(Language::Python).startup);
    }

    #[test]
    fn display_names() {
        assert_eq!(Language::Scala.to_string(), "Scala");
        assert_eq!(Language::Python.to_string(), "Python");
    }
}
