//! # scriptflow-simcluster
//!
//! Deterministic discrete-event simulation (DES) substrate standing in for
//! the paper's two 4-node Google Cloud clusters.
//!
//! The paper's wall-clock numbers come from cluster effects — CPU
//! contention under Ray's `num_cpus` accounting, Texera's pipelined
//! operator overlap, object-store transfer times, cross-language
//! serialization. None of those require real hardware to reproduce in
//! *shape*; they require a faithful scheduling model. This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time,
//! * [`des`] — a generic event-queue driver any engine model can plug
//!   into ([`des::SimModel`]),
//! * [`cpu::CpuPool`] — a k-server CPU resource with FCFS assignment,
//! * [`net::NetworkModel`] — latency + bandwidth transfer costs,
//! * [`store::ObjectStoreModel`] — a Ray-plasma-like shared object store
//!   with put/get costs and memory-pressure spill penalties,
//! * [`lang`] — per-language execution and serialization cost profiles
//!   (Python vs Scala vs Java …), the substrate for the paper's
//!   language-efficiency experiment (Table I),
//! * [`topology`] — machine and cluster specs with the paper's GCP
//!   defaults (4 workers × 8 vCPUs × 64 GB).
//!
//! Everything is deterministic: same inputs → same virtual times, which is
//! what lets the benchmark harness regenerate the paper's tables bit-for-
//! bit across runs.

#![warn(missing_docs)]

pub mod cpu;
pub mod des;
pub mod lang;
pub mod net;
pub mod store;
pub mod time;
pub mod topology;

pub use cpu::CpuPool;
pub use des::{Scheduler, SimModel};
pub use lang::{Language, LanguageProfile, LanguageTable};
pub use net::NetworkModel;
pub use store::ObjectStoreModel;
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterSpec, MachineSpec};
