//! Network transfer cost model.

use crate::time::SimDuration;

/// Latency + bandwidth model for transfers between machines.
///
/// Used for Texera's controller→worker model broadcast and for shipping
/// batches between operators placed on different machines. Intra-machine
/// transfers pay only a memcpy cost (see [`NetworkModel::local_copy`]).
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Intra-machine memory bandwidth in bytes per second.
    pub memcpy_bytes_per_sec: f64,
}

impl Default for NetworkModel {
    /// Defaults approximating the paper's GCP cluster: ~10 Gbit/s links,
    /// 250 µs latency, ~8 GB/s memcpy.
    fn default() -> Self {
        NetworkModel {
            latency: SimDuration::from_micros(250),
            bandwidth_bytes_per_sec: 1.25e9,
            memcpy_bytes_per_sec: 8e9,
        }
    }
}

impl NetworkModel {
    /// Time to move `bytes` between two machines.
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Time to copy `bytes` within one machine.
    pub fn local_copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.memcpy_bytes_per_sec)
    }

    /// Time to broadcast `bytes` from one node to `receivers` nodes over a
    /// shared uplink (serialized sends — the simple model Texera's
    /// controller uses for model distribution).
    pub fn broadcast(&self, bytes: usize, receivers: usize) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..receivers {
            total += self.transfer(bytes);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_size() {
        let net = NetworkModel::default();
        let small = net.transfer(1_000);
        let large = net.transfer(1_000_000);
        assert!(large > small);
        // Latency floor applies even to tiny messages.
        assert!(small >= net.latency);
    }

    #[test]
    fn transfer_math() {
        let net = NetworkModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bytes_per_sec: 1e6, // 1 MB/s
            memcpy_bytes_per_sec: 1e9,
        };
        // 500_000 bytes at 1MB/s = 0.5s + 100µs latency.
        assert_eq!(net.transfer(500_000).as_micros(), 500_100);
        assert_eq!(net.local_copy(1_000_000).as_micros(), 1_000);
    }

    #[test]
    fn broadcast_serializes_sends() {
        let net = NetworkModel::default();
        let one = net.transfer(10_000);
        let four = net.broadcast(10_000, 4);
        assert_eq!(four.as_micros(), one.as_micros() * 4);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let net = NetworkModel::default();
        assert_eq!(net.transfer(0), net.latency);
        assert_eq!(net.local_copy(0), SimDuration::ZERO);
    }
}
