//! Ray-plasma-like shared object store model.
//!
//! The paper attributes GOTTA's script-side slowdown to Ray "uploading
//! large objects such as models into an object store, which required a lot
//! of memory and added execution time for each access" (§IV-E). This
//! module models exactly that: `put` pays a serialization + copy cost,
//! every `get` pays a copy cost proportional to object size, and exceeding
//! store capacity triggers a spill penalty multiplier on subsequent
//! accesses.

use std::collections::HashMap;

use crate::time::SimDuration;

/// Identifier of an object resident in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// Cost/capacity configuration of the store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Fixed per-operation latency (IPC + metadata).
    pub op_latency: SimDuration,
    /// Copy bandwidth into/out of shared memory, bytes per second.
    pub copy_bytes_per_sec: f64,
    /// Shared-memory capacity in bytes before spilling begins.
    pub capacity_bytes: u64,
    /// Multiplier applied to copy time while the store is over capacity
    /// (objects round-trip through disk).
    pub spill_penalty: f64,
}

impl Default for StoreConfig {
    /// Defaults approximating Ray's plasma store on the paper's 64 GB
    /// nodes: 30% of RAM for the store, ~2 GB/s effective copy (objects
    /// are serialized/deserialized, not just memcpy'd), 5× spill penalty.
    fn default() -> Self {
        StoreConfig {
            op_latency: SimDuration::from_micros(300),
            copy_bytes_per_sec: 2e9,
            capacity_bytes: 19 * 1024 * 1024 * 1024,
            spill_penalty: 5.0,
        }
    }
}

/// The object store model: tracks resident objects and charges access
/// costs.
#[derive(Debug, Clone)]
pub struct ObjectStoreModel {
    config: StoreConfig,
    objects: HashMap<ObjectId, u64>,
    resident_bytes: u64,
    next_id: u64,
    puts: u64,
    gets: u64,
}

impl ObjectStoreModel {
    /// An empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        ObjectStoreModel {
            config,
            objects: HashMap::new(),
            resident_bytes: 0,
            next_id: 0,
            puts: 0,
            gets: 0,
        }
    }

    /// Store an object of `bytes`; returns its id and the time the put
    /// took.
    pub fn put(&mut self, bytes: u64) -> (ObjectId, SimDuration) {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.objects.insert(id, bytes);
        self.resident_bytes += bytes;
        self.puts += 1;
        (id, self.access_cost(bytes))
    }

    /// Fetch an object; returns the time the get took.
    ///
    /// Every `get` pays the full copy cost — this is the Ray behaviour the
    /// paper measured: each task accessing a pinned 1.59 GB model pays for
    /// it again.
    pub fn get(&mut self, id: ObjectId) -> Result<SimDuration, String> {
        let bytes = *self
            .objects
            .get(&id)
            .ok_or_else(|| format!("object {id:?} not in store"))?;
        self.gets += 1;
        Ok(self.access_cost(bytes))
    }

    /// Drop an object, freeing its bytes.
    pub fn delete(&mut self, id: ObjectId) -> Result<(), String> {
        let bytes = self
            .objects
            .remove(&id)
            .ok_or_else(|| format!("object {id:?} not in store"))?;
        debug_assert!(self.resident_bytes >= bytes, "resident bytes underflow");
        self.resident_bytes -= bytes;
        Ok(())
    }

    /// Size of a resident object.
    pub fn size_of(&self, id: ObjectId) -> Option<u64> {
        self.objects.get(&id).copied()
    }

    /// Total bytes resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// True if resident bytes exceed capacity (spilling active).
    pub fn is_spilling(&self) -> bool {
        self.resident_bytes > self.config.capacity_bytes
    }

    /// (puts, gets) counters for instrumentation.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts, self.gets)
    }

    fn access_cost(&self, bytes: u64) -> SimDuration {
        let mut copy = SimDuration::from_secs_f64(bytes as f64 / self.config.copy_bytes_per_sec);
        if self.is_spilling() {
            copy = copy.scale(self.config.spill_penalty);
        }
        self.config.op_latency + copy
    }
}

impl Default for ObjectStoreModel {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> ObjectStoreModel {
        ObjectStoreModel::new(StoreConfig {
            op_latency: SimDuration::from_micros(10),
            copy_bytes_per_sec: 1e6, // 1 MB/s: 1 byte = 1 µs
            capacity_bytes: 1_000,
            spill_penalty: 10.0,
        })
    }

    #[test]
    fn put_then_get_costs_scale_with_size() {
        let mut s = small_store();
        let (id, put_cost) = s.put(500);
        assert_eq!(put_cost.as_micros(), 10 + 500);
        let get_cost = s.get(id).unwrap();
        assert_eq!(get_cost.as_micros(), 10 + 500);
        assert_eq!(s.op_counts(), (1, 1));
    }

    #[test]
    fn every_get_pays_again() {
        let mut s = small_store();
        let (id, _) = s.put(100);
        let c1 = s.get(id).unwrap();
        let c2 = s.get(id).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(s.op_counts().1, 2);
    }

    #[test]
    fn spilling_multiplies_cost() {
        let mut s = small_store();
        let (id, _) = s.put(600);
        assert!(!s.is_spilling());
        let before = s.get(id).unwrap();
        let (_big, _) = s.put(600); // now 1200 > 1000 capacity
        assert!(s.is_spilling());
        let after = s.get(id).unwrap();
        assert!(after > before, "{after} <= {before}");
        assert_eq!(after.as_micros(), 10 + 600 * 10);
    }

    #[test]
    fn delete_frees_capacity() {
        let mut s = small_store();
        let (a, _) = s.put(800);
        let (b, _) = s.put(800);
        assert!(s.is_spilling());
        s.delete(a).unwrap();
        assert!(!s.is_spilling());
        assert_eq!(s.resident_bytes(), 800);
        assert!(s.get(a).is_err());
        assert!(s.get(b).is_ok());
        assert!(s.delete(a).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let mut s = small_store();
        let (a, _) = s.put(1);
        let (b, _) = s.put(1);
        assert_ne!(a, b);
        assert_eq!(s.size_of(a), Some(1));
        assert_eq!(s.size_of(ObjectId(999)), None);
    }
}
