//! Microsecond-resolution virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reports; the paper's tables are in seconds).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self` — a simulation bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    ///
    /// # Panics
    /// Panics on negative or non-finite input — durations are magnitudes.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a dimensionless factor (e.g. a language multiplier),
    /// rounding to the nearest µs.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.since(SimTime::from_micros(500_000)).as_micros(), 1_000_000);
        assert_eq!((SimDuration::from_secs(1) * 3).as_micros(), 3_000_000);
        assert_eq!(
            (SimDuration::from_secs(3) - SimDuration::from_secs(1)).as_micros(),
            2_000_000
        );
    }

    #[test]
    fn sub_saturates() {
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(SimDuration::from_micros(10).scale(0.25).as_micros(), 3);
        assert_eq!(SimDuration::from_micros(100).scale(1.5).as_micros(), 150);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_backwards() {
        SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn max_and_ordering() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_250_000).to_string(), "1.250000s");
    }
}
