//! Machine and cluster specifications.

use crate::cpu::CpuPool;
use crate::net::NetworkModel;
use crate::store::{ObjectStoreModel, StoreConfig};
use crate::time::SimDuration;

/// Hardware of one virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// Virtual CPU count.
    pub vcpus: usize,
    /// RAM in bytes.
    pub ram_bytes: u64,
    /// Disk in bytes.
    pub disk_bytes: u64,
}

impl MachineSpec {
    /// The paper's GCP node: 8 vCPUs, 64 GB RAM, 100 GB HDD.
    pub fn gcp_paper_node() -> Self {
        MachineSpec {
            vcpus: 8,
            ram_bytes: 64 * 1024 * 1024 * 1024,
            disk_bytes: 100 * 1024 * 1024 * 1024,
        }
    }

    /// A fresh CPU pool for this machine.
    pub fn cpu_pool(&self) -> CpuPool {
        CpuPool::new(self.vcpus)
    }
}

/// A cluster: one controller/head node plus worker nodes, a network, and
/// object-store configuration.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The controller (Texera) / head (Ray) node.
    pub head: MachineSpec,
    /// Worker nodes.
    pub workers: Vec<MachineSpec>,
    /// Inter-machine network model.
    pub network: NetworkModel,
    /// Object-store cost configuration (Ray-side).
    pub store: StoreConfig,
    /// Fixed job submission overhead (GUI submit / CLI submit to head).
    pub submit_overhead: SimDuration,
}

impl ClusterSpec {
    /// The paper's setup: 1 head + 4 workers, each 8 vCPU / 64 GB.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            head: MachineSpec::gcp_paper_node(),
            workers: vec![MachineSpec::gcp_paper_node(); 4],
            network: NetworkModel::default(),
            store: StoreConfig::default(),
            submit_overhead: SimDuration::from_millis(400),
        }
    }

    /// A single-machine "cluster" for laptop-scale examples and tests.
    pub fn single_node(vcpus: usize) -> Self {
        let node = MachineSpec {
            vcpus,
            ram_bytes: 16 * 1024 * 1024 * 1024,
            disk_bytes: 100 * 1024 * 1024 * 1024,
        };
        ClusterSpec {
            head: node,
            workers: vec![node],
            network: NetworkModel::default(),
            store: StoreConfig::default(),
            submit_overhead: SimDuration::from_millis(50),
        }
    }

    /// Number of worker machines.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Total worker vCPUs across the cluster.
    pub fn total_worker_vcpus(&self) -> usize {
        self.workers.iter().map(|m| m.vcpus).sum()
    }

    /// Fresh CPU pools for all worker machines.
    pub fn worker_cpu_pools(&self) -> Vec<CpuPool> {
        self.workers.iter().map(MachineSpec::cpu_pool).collect()
    }

    /// A fresh object store sized by this spec.
    pub fn object_store(&self) -> ObjectStoreModel {
        ObjectStoreModel::new(self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_iv_a() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.worker_count(), 4);
        assert_eq!(c.head.vcpus, 8);
        assert_eq!(c.head.ram_bytes, 64 * 1024 * 1024 * 1024);
        for w in &c.workers {
            assert_eq!(w.vcpus, 8);
        }
        assert_eq!(c.total_worker_vcpus(), 32);
    }

    #[test]
    fn cpu_pools_match_machines() {
        let c = ClusterSpec::paper_cluster();
        let pools = c.worker_cpu_pools();
        assert_eq!(pools.len(), 4);
        for p in pools {
            assert_eq!(p.capacity(), 8);
        }
    }

    #[test]
    fn single_node_has_one_worker() {
        let c = ClusterSpec::single_node(4);
        assert_eq!(c.worker_count(), 1);
        assert_eq!(c.total_worker_vcpus(), 4);
    }
}
