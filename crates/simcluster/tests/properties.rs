//! Property tests over the simulation substrate's invariants.

use proptest::prelude::*;
use scriptflow_simcluster::des::{self, Scheduler, SimModel};
use scriptflow_simcluster::store::StoreConfig;
use scriptflow_simcluster::{CpuPool, ObjectStoreModel, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CPU pool conservation: total reserved CPU-time never exceeds
    /// capacity × makespan, and no reservation starts before `now`.
    #[test]
    fn cpu_pool_conserves_capacity(
        cpus in 1usize..8,
        jobs in prop::collection::vec((1u64..500, 1usize..4), 1..40),
    ) {
        let mut pool = CpuPool::new(cpus);
        let mut total_work = 0u64;
        let mut makespan = SimTime::ZERO;
        for (dur, want) in jobs {
            let want = want.min(cpus);
            let r = pool.reserve(SimTime::ZERO, want, SimDuration::from_micros(dur));
            prop_assert!(r.start >= SimTime::ZERO);
            prop_assert_eq!(r.finish.as_micros() - r.start.as_micros(), dur);
            total_work += dur * want as u64;
            makespan = makespan.max(r.finish);
        }
        prop_assert!(total_work <= cpus as u64 * makespan.as_micros(),
            "work {total_work} exceeds {cpus} CPUs over {makespan}");
    }

    /// FCFS: a later single-CPU reservation never starts before an
    /// earlier one issued at the same instant.
    #[test]
    fn cpu_pool_is_fcfs(durations in prop::collection::vec(1u64..300, 2..30)) {
        let mut pool = CpuPool::new(2);
        let mut last_start = SimTime::ZERO;
        for d in durations {
            let r = pool.reserve(SimTime::ZERO, 1, SimDuration::from_micros(d));
            prop_assert!(r.start >= last_start, "start went backwards");
            last_start = r.start;
        }
    }

    /// Object store accounting: resident bytes equal puts minus deletes,
    /// and get costs grow monotonically with object size.
    #[test]
    fn object_store_accounting(sizes in prop::collection::vec(1u64..10_000, 1..30)) {
        let mut store = ObjectStoreModel::new(StoreConfig {
            op_latency: SimDuration::from_micros(5),
            copy_bytes_per_sec: 1e6,
            capacity_bytes: u64::MAX,
            spill_penalty: 2.0,
        });
        let mut ids = Vec::new();
        let mut expected = 0u64;
        for s in &sizes {
            let (id, _) = store.put(*s);
            ids.push((id, *s));
            expected += s;
            prop_assert_eq!(store.resident_bytes(), expected);
        }
        // Bigger objects cost at least as much to fetch.
        let mut by_size = ids.clone();
        by_size.sort_by_key(|(_, s)| *s);
        let costs: Vec<u64> = by_size
            .iter()
            .map(|(id, _)| store.get(*id).unwrap().as_micros())
            .collect();
        for w in costs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for (id, s) in ids {
            store.delete(id).unwrap();
            expected -= s;
            prop_assert_eq!(store.resident_bytes(), expected);
        }
    }

    /// DES causality: events always fire in nondecreasing time order, for
    /// arbitrary schedules with chained follow-ups.
    #[test]
    fn des_time_is_monotone(
        seeds in prop::collection::vec((0u64..10_000, 0u8..4), 1..50),
    ) {
        struct Chain {
            fired: Vec<u64>,
        }
        impl SimModel for Chain {
            type Event = u8;
            fn handle(&mut self, now: SimTime, hops: u8, sched: &mut Scheduler<u8>) {
                self.fired.push(now.as_micros());
                if hops > 0 {
                    sched.schedule_after(SimDuration::from_micros(17), hops - 1);
                }
            }
        }
        let mut model = Chain { fired: Vec::new() };
        let mut sched = Scheduler::new();
        let mut expected_events = 0u64;
        for (t, hops) in &seeds {
            sched.schedule_at(SimTime::from_micros(*t), *hops);
            expected_events += 1 + u64::from(*hops);
        }
        des::run(&mut model, &mut sched);
        prop_assert_eq!(model.fired.len() as u64, expected_events);
        for w in model.fired.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards: {:?}", w);
        }
    }
}
