//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These are not paper artifacts — they isolate the *mechanisms* behind
//! them: pipelining (Fig. 13a), per-tuple serde overhead (Fig. 13c), the
//! Ray object store (Fig. 13d), and language multipliers (Table I).

use scriptflow_core::{Artifact, Calibration, Experiment, ExperimentMeta, Figure, Series, Table};
use scriptflow_simcluster::SimDuration;
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};

/// Ablation 1: disable pipelining in the workflow engine and re-run DICE
/// — the paper attributes Texera's Fig. 13a win to pipelined execution.
pub struct PipeliningAblation;

impl Experiment for PipeliningAblation {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-pipelining",
            paper_artifact: "mechanism behind Fig. 13a",
            description: "DICE workflow with and without pipelined edges",
        }
    }

    fn run(&self) -> Artifact {
        let on = Calibration::paper();
        let mut off = Calibration::paper();
        off.wf_pipelining = false;
        let mut fig = Figure::new(
            "ablate-pipelining",
            "DICE workflow: pipelining on vs off",
            "file pairs",
            "execution time (s)",
        );
        let sizes = [25usize, 50, 100, 200];
        let series = |cal: &Calibration, label: &str| {
            Series::new(
                label,
                sizes
                    .iter()
                    .map(|&pairs| {
                        let run = dice::workflow::run_workflow(&DiceParams::new(pairs, 1), cal)
                            .expect("workflow run");
                        (pairs as f64, run.seconds())
                    })
                    .collect(),
            )
        };
        fig.push_series(series(&on, "pipelining on"));
        fig.push_series(series(&off, "pipelining off"));
        Artifact::Figure(fig)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (mechanism ablation)", &["-"]))
    }
}

/// Ablation 2: zero the per-tuple serde cost — the paper blames Texera's
/// KGE loss (Fig. 13c) on serialization between operators (§III-D).
pub struct SerdeAblation;

impl Experiment for SerdeAblation {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-serde",
            paper_artifact: "mechanism behind Fig. 13c",
            description: "KGE workflow with and without per-tuple serde cost",
        }
    }

    fn run(&self) -> Artifact {
        let on = Calibration::paper();
        let mut off = Calibration::paper();
        off.wf_serde_per_tuple = SimDuration::ZERO;
        let mut t = Table::new(
            "KGE @6.8k: serde overhead contribution",
            &["config", "workflow (s)", "script (s)"],
        );
        let script = kge::script::run_script(&KgeParams::new(6_800, 1), &on)
            .expect("script")
            .seconds();
        for (label, cal) in [("serde charged", &on), ("serde free", &off)] {
            let wf = kge::workflow::run_workflow(&KgeParams::new(6_800, 1).with_fusion(3), cal)
                .expect("workflow")
                .seconds();
            t.push_row(vec![
                label.into(),
                format!("{wf:.2}"),
                format!("{script:.2}"),
            ]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (mechanism ablation)", &["-"]))
    }
}

/// Ablation 3: shrink the model to zero bytes — the paper blames GOTTA's
/// script-side cost on Ray's object store (Fig. 13d, §IV-E).
pub struct ObjectStoreAblation;

impl Experiment for ObjectStoreAblation {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-objectstore",
            paper_artifact: "mechanism behind Fig. 13d",
            description: "GOTTA script with the 1.59 GB model vs a weightless model",
        }
    }

    fn run(&self) -> Artifact {
        let heavy = Calibration::paper();
        let mut light = Calibration::paper();
        light.gotta_model_bytes = 0;
        let mut t = Table::new(
            "GOTTA script @4 paragraphs: object-store contribution",
            &["model size", "script (s)"],
        );
        for (label, cal) in [("1.59 GB (paper)", &heavy), ("0 B (ablated)", &light)] {
            let s = gotta::script::run_script(&GottaParams::new(4, 1), cal)
                .expect("script")
                .seconds();
            t.push_row(vec![label.into(), format!("{s:.2}")]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (mechanism ablation)", &["-"]))
    }
}

/// Extension: rewrite GOTTA's script with Ray actors (model loaded once
/// per worker instead of fetched from the object store per task) — the
/// paradigm-level fix the paper's §IV-E analysis implies.
pub struct ActorExtension;

impl Experiment for ActorExtension {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-actors",
            paper_artifact: "extension of §IV-E",
            description: "GOTTA script: per-task object-store gets vs Ray actors",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let mut t = Table::new(
            "GOTTA script, tasks-with-gets vs actors",
            &[
                "paragraphs",
                "tasks + store gets (s)",
                "actors (s)",
                "workflow (s)",
            ],
        );
        for paragraphs in [1usize, 4, 16] {
            let params = GottaParams::new(paragraphs, 1);
            let plain = gotta::script::run_script(&params, &cal)
                .expect("script")
                .seconds();
            let actors = gotta::script_actors::run_script_actors(&params, &cal)
                .expect("actors")
                .seconds();
            let wf = gotta::workflow::run_workflow(&params, &cal)
                .expect("workflow")
                .seconds();
            t.push_row(vec![
                paragraphs.to_string(),
                format!("{plain:.2}"),
                format!("{actors:.2}"),
                format!("{wf:.2}"),
            ]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (extension)", &["-"]))
    }
}

/// Ablation 5: seal workflow edge batches as columnar vectors with
/// per-batch statistics (the engine path behind DESIGN.md's "Batch
/// representation" section) and re-run KGE — the task whose Fig. 13c
/// loss the paper pins on per-tuple engine overhead. Everything the
/// paper reports keeps the row engine; this isolates what the columnar
/// path would buy.
pub struct ColumnarAblation;

impl Experiment for ColumnarAblation {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-columnar",
            paper_artifact: "engine extension of Fig. 13c",
            description: "KGE workflow with row vs columnar edge batches",
        }
    }

    fn run(&self) -> Artifact {
        let row = Calibration::paper();
        let col = Calibration::paper_columnar();
        let mut t = Table::new(
            "KGE workflow: row vs columnar edge batches",
            &["products", "row (s)", "columnar (s)", "speedup"],
        );
        for products in [1_700usize, 6_800] {
            let run_with = |cal: &Calibration| {
                kge::workflow::run_workflow(&KgeParams::new(products, 1).with_fusion(3), cal)
                    .expect("workflow")
                    .seconds()
            };
            let r = run_with(&row);
            let c = run_with(&col);
            t.push_row(vec![
                products.to_string(),
                format!("{r:.2}"),
                format!("{c:.2}"),
                format!("{:.2}x", r / c),
            ]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (engine extension)", &["-"]))
    }
}

/// Ablation 4: sweep the pandas-join warm-up — the Table I mechanism.
pub struct LanguageSweep;

impl Experiment for LanguageSweep {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "ablate-language",
            paper_artifact: "mechanism behind Table I",
            description: "KGE @6.8k as the Python join warm-up varies",
        }
    }

    fn run(&self) -> Artifact {
        let mut fig = Figure::new(
            "ablate-language",
            "KGE @6.8k vs Python join warm-up",
            "warm-up extra (ms/tuple)",
            "execution time (s)",
        );
        let points = [0u64, 6, 12, 18, 24]
            .into_iter()
            .map(|ms| {
                let mut cal = Calibration::paper();
                cal.kge_py_join_warmup = SimDuration::from_micros(ms * 1000);
                let run = kge::workflow::run_workflow(
                    &KgeParams::new(6_800, 1).with_fusion(3).with_pandas_join(),
                    &cal,
                )
                .expect("workflow");
                (ms as f64, run.seconds())
            })
            .collect();
        fig.push_series(Series::new("Python join (pandas)", points));
        Artifact::Figure(fig)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(Table::new("no paper artifact (mechanism ablation)", &["-"]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_is_the_fig13a_mechanism() {
        let Artifact::Figure(fig) = PipeliningAblation.run() else {
            panic!("expected figure");
        };
        let on = &fig.series_by_label("pipelining on").unwrap().points;
        let off = &fig.series_by_label("pipelining off").unwrap().points;
        for ((x, y_on), (_, y_off)) in on.iter().zip(off) {
            assert!(
                y_off > &(y_on * 1.3),
                "at {x} pairs: off {y_off} should be much slower than on {y_on}"
            );
        }
    }

    #[test]
    fn serde_cost_explains_a_chunk_of_the_kge_gap() {
        let Artifact::Table(t) = SerdeAblation.run() else {
            panic!("expected table");
        };
        let charged: f64 = t.rows[0][1].parse().unwrap();
        let free: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            free < charged * 0.97,
            "serde-free {free} vs charged {charged}"
        );
    }

    #[test]
    fn object_store_explains_gotta_floor() {
        let Artifact::Table(t) = ObjectStoreAblation.run() else {
            panic!("expected table");
        };
        let heavy: f64 = t.rows[0][1].parse().unwrap();
        let light: f64 = t.rows[1][1].parse().unwrap();
        // Dropping the model payload removes the put + per-task gets.
        assert!(heavy - light > 2.0, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn actors_close_part_of_the_gap_but_not_all() {
        let Artifact::Table(t) = ActorExtension.run() else {
            panic!("expected table");
        };
        // At 16 paragraphs: actors < plain script (store tax removed),
        // but the workflow still wins (kernel pinning remains).
        let row = t.rows.iter().find(|r| r[0] == "16").unwrap();
        let plain: f64 = row[1].parse().unwrap();
        let actors: f64 = row[2].parse().unwrap();
        let wf: f64 = row[3].parse().unwrap();
        assert!(actors < plain, "actors {actors} vs plain {plain}");
        assert!(wf < actors, "workflow {wf} vs actors {actors}");
    }

    #[test]
    fn columnar_batches_speed_up_kge() {
        let Artifact::Table(t) = ColumnarAblation.run() else {
            panic!("expected table");
        };
        for row in &t.rows {
            let r: f64 = row[1].parse().unwrap();
            let c: f64 = row[2].parse().unwrap();
            assert!(
                c < r,
                "at {} products: columnar {c} must beat row {r}",
                row[0]
            );
        }
    }

    #[test]
    fn warmup_sweep_is_monotone() {
        let Artifact::Figure(fig) = LanguageSweep.run() else {
            panic!("expected figure");
        };
        let pts = &fig.series[0].points;
        for pair in pts.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "{pts:?} not monotone");
        }
    }
}
