//! The paper's reported numbers (§IV), used as references in every
//! experiment's side-by-side output and in the shape assertions.

/// Fig. 12a: lines of code per task — `(task, notebook, texera)`.
pub const FIG12A_LOC: [(&str, usize, usize); 4] = [
    ("DICE", 377, 215),
    ("WEF", 68, 62),
    ("GOTTA", 120, 105),
    ("KGE", 128, 134),
];

/// Fig. 12b: KGE seconds at 6.8k products by operator count — the three
/// values the paper quotes.
pub const FIG12B_POINTS: [(f64, f64); 3] = [(1.0, 138.97), (5.0, 114.05), (6.0, 115.143)];

/// Table I: KGE seconds — `(products, scala, python)`.
pub const TABLE1: [(usize, f64, f64); 2] = [(6_800, 98.67, 126.28), (68_000, 1_159.82, 1_170.57)];

/// Fig. 13a: DICE seconds by file pairs — `(pairs, notebook, texera)`.
pub const FIG13A: [(usize, f64, f64); 2] = [(10, 14.71, 10.73), (200, 239.54, 107.83)];

/// Fig. 13b: WEF seconds by tweets — `(tweets, notebook, texera)`.
pub const FIG13B: [(usize, f64, f64); 3] = [
    (200, 1_285.82, 1_264.93),
    (300, 1_922.86, 1_896.01),
    (400, 2_587.94, 2_525.96),
];

/// Fig. 13c: KGE seconds by products — `(products, notebook, texera)`.
pub const FIG13C: [(usize, f64, f64); 2] = [(6_800, 90.69, 135.85), (68_000, 975.46, 1_350.50)];

/// Fig. 13d: GOTTA seconds by paragraphs — `(paragraphs, notebook,
/// texera)`.
pub const FIG13D: [(usize, f64, f64); 3] = [
    (1, 163.22, 64.14),
    (4, 463.96, 149.45),
    (16, 1_389.93, 460.13),
];

/// Fig. 14a: DICE seconds at 200 pairs by workers — `(workers, notebook,
/// texera)`.
pub const FIG14A: [(usize, f64, f64); 3] =
    [(1, 239.54, 107.82), (2, 148.04, 87.13), (4, 85.65, 57.21)];

/// Fig. 14b: GOTTA seconds at 4 paragraphs by workers.
pub const FIG14B: [(usize, f64, f64); 3] =
    [(1, 463.96, 149.45), (2, 234.68, 104.16), (4, 139.66, 83.37)];

/// Fig. 14c: KGE seconds at 68k products by workers.
pub const FIG14C: [(usize, f64, f64); 3] = [
    (1, 975.46, 1_350.50),
    (2, 459.46, 618.39),
    (4, 273.89, 383.58),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_internally_consistent() {
        // Fig. 13 and Fig. 14 share their 1-worker / largest-size points.
        assert_eq!(FIG13A[1].1, FIG14A[0].1);
        assert_eq!(FIG13C[1].1, FIG14C[0].1);
        assert_eq!(FIG13D[1].1, FIG14B[0].1);
        assert_eq!(FIG13D[1].2, FIG14B[0].2);
    }
}
