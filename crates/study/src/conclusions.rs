//! The paper's §VI conclusions, recomputed from live runs.
//!
//! §VI makes four empirical claims; this module measures each one on the
//! calibrated task implementations and reports pass/fail, so the
//! reproduction's headline story is itself a tested artifact.

use scriptflow_core::{Calibration, Table};
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::wef::{self, WefParams};

/// One verified claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// The paper's wording (abridged).
    pub statement: &'static str,
    /// The evidence measured here.
    pub evidence: String,
    /// Whether the reproduction supports it.
    pub holds: bool,
}

/// Evaluate every §VI claim. Uses laptop-scale inputs; all virtual-time.
pub fn evaluate(cal: &Calibration) -> Vec<Claim> {
    let mut claims = Vec::new();

    // Claim 1: "in settings with low computational resources, Texera
    // performs well" — at 1 worker, Texera wins DICE and GOTTA outright.
    {
        let dice_s = dice::script::run_script(&DiceParams::new(50, 1), cal)
            .expect("dice script")
            .seconds();
        let dice_w = dice::workflow::run_workflow(&DiceParams::new(50, 1), cal)
            .expect("dice workflow")
            .seconds();
        let gotta_s = gotta::script::run_script(&GottaParams::new(4, 1), cal)
            .expect("gotta script")
            .seconds();
        let gotta_w = gotta::workflow::run_workflow(&GottaParams::new(4, 1), cal)
            .expect("gotta workflow")
            .seconds();
        claims.push(Claim {
            statement: "With low resources (1 worker), Texera performs well",
            evidence: format!(
                "DICE {dice_w:.1}s vs {dice_s:.1}s; GOTTA {gotta_w:.1}s vs {gotta_s:.1}s"
            ),
            holds: dice_w < dice_s && gotta_w < gotta_s,
        });
    }

    // Claim 2: "Jupyter Notebook achieves large relative performance
    // improvements as more computational resources are used" — the
    // script's 1→4-worker speedup exceeds Texera's on DICE and GOTTA.
    {
        let speedup = |one: f64, four: f64| one / four;
        let ds1 = dice::script::run_script(&DiceParams::new(50, 1), cal)
            .expect("run")
            .seconds();
        let ds4 = dice::script::run_script(&DiceParams::new(50, 4), cal)
            .expect("run")
            .seconds();
        let dw1 = dice::workflow::run_workflow(&DiceParams::new(50, 1), cal)
            .expect("run")
            .seconds();
        let dw4 = dice::workflow::run_workflow(&DiceParams::new(50, 4), cal)
            .expect("run")
            .seconds();
        let script_gain = speedup(ds1, ds4);
        let workflow_gain = speedup(dw1, dw4);
        claims.push(Claim {
            statement: "The notebook gains more, relatively, from added workers",
            evidence: format!(
                "DICE 1→4 workers: script {script_gain:.2}x vs workflow {workflow_gain:.2}x"
            ),
            holds: script_gain > workflow_gain,
        });
    }

    // Claim 3: "Texera users achieve similar or improved performance"
    // on training (WEF within a few percent).
    {
        let s = wef::script::run_script(&WefParams::new(100), cal)
            .expect("run")
            .seconds();
        let w = wef::workflow::run_workflow(&WefParams::new(100), cal)
            .expect("run")
            .seconds();
        let gap = (s - w).abs() / s;
        claims.push(Claim {
            statement: "Training performance is similar across paradigms",
            evidence: format!(
                "WEF @100 tweets: script {s:.1}s vs workflow {w:.1}s ({:.1}% gap)",
                gap * 100.0
            ),
            holds: gap < 0.05,
        });
    }

    // Claim 4: "in some cases [Texera] outperforms, in others the
    // notebook does" — the KGE counterexample must also reproduce.
    {
        let s = kge::script::run_script(&KgeParams::new(6_800, 1), cal)
            .expect("run")
            .seconds();
        let w = kge::workflow::run_workflow(&KgeParams::new(6_800, 1).with_fusion(3), cal)
            .expect("run")
            .seconds();
        claims.push(Claim {
            statement: "Neither paradigm dominates: the notebook wins KGE",
            evidence: format!("KGE @6.8k: script {s:.1}s vs workflow {w:.1}s"),
            holds: s < w,
        });
    }

    claims
}

/// Render the claims as a table.
pub fn as_table(claims: &[Claim]) -> Table {
    let mut t = Table::new(
        "§VI conclusions, recomputed",
        &["claim", "evidence", "holds"],
    );
    for c in claims {
        t.push_row(vec![
            c.statement.to_owned(),
            c.evidence.clone(),
            if c.holds { "✓" } else { "✗" }.to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_section_vi_claim_holds() {
        let claims = evaluate(&Calibration::paper());
        assert_eq!(claims.len(), 4);
        for c in &claims {
            assert!(c.holds, "claim failed: {} ({})", c.statement, c.evidence);
        }
        let table = as_table(&claims);
        assert_eq!(table.rows.len(), 4);
        assert!(table.to_string().contains('✓'));
    }
}
