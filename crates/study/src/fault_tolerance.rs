//! Paradigm fault-tolerance comparison (§III-A, accountability under
//! failure).
//!
//! The GUI paradigm's claim is that a failure stays *accountable*: the
//! engine pins it to one operator, every other operator keeps (and
//! shows) its progress, and the rows that already flowed downstream
//! survive in the sink. The script paradigm loses the whole unit: a
//! kernel fault costs the entire cell, a Ray stage abort throws away
//! every task behind the barrier, and the cells after the failure never
//! run at all. This module injects an equivalent mid-pipeline fault into
//! both paradigms — the workflow engine via a seeded
//! [`scriptflow_workflow::FaultPlan`], the script via
//! [`scriptflow_raysim::RayRuntime::arm_stage_abort`] — and counts what
//! each paradigm can say afterwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scriptflow_core::{Artifact, BackendChoice, BackendKind, Experiment, ExperimentMeta, Table};
use scriptflow_datakit::{Batch, DataError, DataType, Schema, Value};
use scriptflow_notebook::{Cell, Kernel, Notebook};
use scriptflow_raysim::RayTask;
use scriptflow_simcluster::SimDuration;
use scriptflow_workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow_workflow::{
    EngineConfig, ExecBackend, FaultPlan, LiveExecutor, OperatorState, PartitionStrategy,
    ProgressTrace, RetryConfig, RetryPolicy, Workflow, WorkflowBuilder,
};

use crate::{backend_workflow_label, SCRIPT_LABEL, WORKFLOW_LABEL};

/// Rows the load stage produces (identical for both paradigms).
const ROWS: i64 = 512;
/// 1-based tuple at which the injected fault strikes the parse stage.
const FAULT_AT: u64 = 400;

/// What one paradigm can report after an injected mid-pipeline fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The paradigm's failure unit ("operator" or "cell").
    pub unit: &'static str,
    /// Where the paradigm pinned the failure.
    pub pinned_to: String,
    /// Units that still finished their work (fully or on partial input).
    pub units_finished: usize,
    /// Units whose work was lost (failed, or never ran).
    pub units_lost: usize,
    /// Rows that survived downstream of the fault.
    pub salvaged_rows: u64,
    /// Rows the same faulted run delivers once a
    /// [`RetryPolicy::default`] budget replays the faulted quantum: the
    /// workflow engine salvages *every* row, while the script paradigm
    /// has no unit smaller than the cell to retry, so it still salvages
    /// nothing.
    pub retry_salvaged: u64,
}

/// Build the load → parse → count → sink fault pipeline around the
/// given parse operator (the stage both backends inject their fault
/// into).
fn fault_pipeline(parse_op: FilterOp) -> (Workflow, SinkHandle) {
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(schema, (0..ROWS).map(|i| vec![Value::Int(i)]).collect())
        .expect("schema matches rows");

    let mut b = WorkflowBuilder::new();
    let load = b.add(Arc::new(ScanOp::new("load", batch)), 1);
    let parse = b.add(Arc::new(parse_op), 1);
    // "count" passes everything through; the sink tallies what arrives.
    let count = b.add(Arc::new(FilterOp::new("count", |_| Ok(true))), 1);
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(load, parse, 0, PartitionStrategy::RoundRobin);
    b.connect(parse, count, 0, PartitionStrategy::RoundRobin);
    b.connect(count, sink, 0, PartitionStrategy::Single);
    (b.build().expect("fault pipeline is a valid DAG"), handle)
}

/// Read a [`FaultReport`] out of the partial trace a failed run left
/// behind.
fn report_from_trace(
    trace: &ProgressTrace,
    salvaged_rows: u64,
    retry_salvaged: u64,
) -> FaultReport {
    let (_, last) = trace
        .samples
        .last()
        .expect("partial trace survives the failure");
    let pinned_to = last
        .iter()
        .find(|s| s.state == OperatorState::Failed)
        .map(|s| format!("operator `{}`", s.name))
        .expect("the fault is pinned to one Failed operator");
    let units_finished = last
        .iter()
        .filter(|s| matches!(s.state, OperatorState::Completed | OperatorState::Degraded))
        .count();
    FaultReport {
        unit: "operator",
        pinned_to,
        units_finished,
        units_lost: last.len() - units_finished,
        salvaged_rows,
        retry_salvaged,
    }
}

/// Run a load → parse → count → sink pipeline on the pooled live
/// executor with a seeded fault plan that panics the parse operator at
/// tuple [`FAULT_AT`], then read the partial trace back.
pub fn observe_workflow_fault(seed: u64) -> FaultReport {
    // "parse" drops malformed rows (every 7th id); the fault plan kills
    // it from outside at tuple FAULT_AT.
    let (wf, handle) = fault_pipeline(FilterOp::new("parse", |t| Ok(t.get_int("id")? % 7 != 0)));

    let plan = FaultPlan::new(seed).panic_at("parse", FAULT_AT);
    let (trace, result) = LiveExecutor::new(32)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err(), "the injected panic fails the run");

    // Same fault, but with the default retry budget: the faulted
    // quantum replays and the whole pipeline completes — every row is
    // salvaged, exactly once.
    let (wf, retry_handle) =
        fault_pipeline(FilterOp::new("parse", |t| Ok(t.get_int("id")? % 7 != 0)));
    let plan = FaultPlan::new(seed).panic_at("parse", FAULT_AT);
    let (_, retried) = LiveExecutor::new(32)
        .with_pool_size(1)
        .with_faults(plan)
        .with_retry(RetryConfig::uniform(RetryPolicy::default()))
        .run_observed(&wf);
    retried.expect("the default retry budget absorbs the injected panic");

    report_from_trace(&trace, handle.len() as u64, retry_handle.len() as u64)
}

/// [`observe_workflow_fault`] on an explicit backend. The live path
/// injects the fault from outside via the seeded [`FaultPlan`]; the
/// fault plan hooks the live worker pool, so the simulator's equivalent
/// fault is a parse operator whose decode fails at the same tuple
/// index. Both runs end with the failure pinned to `parse` in the
/// terminal trace sample.
pub fn observe_workflow_fault_on(kind: BackendKind, seed: u64) -> FaultReport {
    if kind == BackendKind::Live {
        return observe_workflow_fault(seed);
    }
    // The fault is one-shot (`==`, not `>=`): without a retry budget the
    // first error is sticky-fatal anyway, and with one the replayed
    // quantum (fresh call counts) parses cleanly — the sim analogue of a
    // transient crash.
    let flaky_parse = || {
        let calls = AtomicU64::new(0);
        FilterOp::new("parse", move |t| {
            let n = calls.fetch_add(1, Ordering::Relaxed) + 1;
            if n == FAULT_AT {
                return Err(DataError::Decode {
                    line: n as usize,
                    message: "injected decode fault".into(),
                });
            }
            Ok(t.get_int("id")? % 7 != 0)
        })
    };
    let (wf, handle) = fault_pipeline(flaky_parse());
    let (trace, result) = ExecBackend::sim(EngineConfig::default()).run_observed(&wf);
    assert!(result.is_err(), "the injected decode fault fails the run");

    let (wf, retry_handle) = fault_pipeline(flaky_parse());
    let retry_cfg = EngineConfig {
        retry: RetryConfig::uniform(RetryPolicy::default()),
        ..EngineConfig::default()
    };
    let (_, retried) = ExecBackend::sim(retry_cfg).run_observed(&wf);
    retried.expect("the default retry budget absorbs the decode fault");

    report_from_trace(&trace, handle.len() as u64, retry_handle.len() as u64)
}

/// Run the script-paradigm equivalent: a three-cell notebook (load,
/// parse on Ray, count) whose parse stage is armed to abort at its
/// barrier. The whole cell is lost, the count cell never runs, and no
/// parsed row survives.
pub fn observe_script_fault() -> FaultReport {
    let mut nb = Notebook::new("fault-script");
    nb.push(
        Cell::new("load", "rows = load_rows()", |k| {
            k.advance(SimDuration::from_millis(50));
            k.set("rows", ROWS as usize);
            Ok(())
        })
        .writes(&["rows"]),
    );
    nb.push(
        Cell::new(
            "parse",
            "parsed = ray.get([parse.remote(c) for c in chunks])",
            |k| {
                let rows = *k.get::<usize>("rows")?;
                let parsed = k.ray().parallel_map(
                    (0..4usize)
                        .map(|i| {
                            RayTask::new(
                                format!("parse{i}"),
                                SimDuration::from_millis(20),
                                move |_| Ok(rows / 4),
                            )
                        })
                        .collect::<Vec<_>>(),
                )?;
                k.set("parsed", parsed.iter().sum::<usize>());
                Ok(())
            },
        )
        .reads(&["rows"])
        .writes(&["parsed"]),
    );
    nb.push(
        Cell::new("count", "stats = count(parsed)", |k| {
            let _ = *k.get::<usize>("parsed")?;
            k.set("stats", 1usize);
            Ok(())
        })
        .reads(&["parsed"])
        .writes(&["stats"]),
    );

    let mut kernel = Kernel::paper_default();
    // The parse cell's parallel_map is this run's first Ray stage.
    kernel
        .ray()
        .arm_stage_abort(1, "worker node lost mid-stage");
    let err = nb
        .run_all(&mut kernel)
        .expect_err("the armed stage abort fails the notebook");

    let pinned_to = format!(
        "cell `{}` (In [{}])",
        err.cell_name.as_deref().unwrap_or("?"),
        err.execution_count.unwrap_or(0),
    );
    let units_finished = kernel.cell_spans().iter().filter(|s| s.ok).count();
    FaultReport {
        unit: "cell",
        pinned_to,
        // Lost: the failed cell's whole work, plus every cell after it
        // that never got to run.
        units_finished,
        units_lost: nb.len() - units_finished,
        // Nothing survives the barrier: `parsed` was never bound.
        salvaged_rows: if kernel.contains("parsed") { 1 } else { 0 },
        // The script has no retryable unit below the cell: re-running
        // replays the whole cell from scratch, and the aborted stage
        // left nothing behind to resume from.
        retry_salvaged: 0,
    }
}

/// The fault-tolerance comparison as a study experiment: one row per
/// paradigm, measured by injecting an equivalent mid-pipeline fault into
/// real runs of the reproduction's engines.
pub struct FaultComparison;

const COLUMNS: [&str; 7] = [
    "paradigm",
    "failure unit",
    "pinned to",
    "units finished",
    "units lost",
    "salvaged rows",
    "salvaged w/ retry",
];

impl Experiment for FaultComparison {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fault",
            paper_artifact: "§III-A",
            description: "Fault tolerance: operator-pinned partial progress vs whole-cell loss",
        }
    }

    fn run(&self) -> Artifact {
        let wf = observe_workflow_fault(7);
        let sc = observe_script_fault();
        let mut t = Table::new("§III-A — fault accountability", &COLUMNS);
        for (label, r) in [(WORKFLOW_LABEL, &wf), (SCRIPT_LABEL, &sc)] {
            t.push_row(vec![
                label.to_owned(),
                r.unit.to_owned(),
                r.pinned_to.clone(),
                r.units_finished.to_string(),
                r.units_lost.to_string(),
                r.salvaged_rows.to_string(),
                r.retry_salvaged.to_string(),
            ]);
        }
        Artifact::Table(t)
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let mut t = Table::new(
            format!("§III-A — fault accountability [backend: {backend}]"),
            &COLUMNS,
        );
        for kind in backend.kinds() {
            let r = observe_workflow_fault_on(*kind, 7);
            t.push_row(vec![
                backend_workflow_label(*kind),
                r.unit.to_owned(),
                r.pinned_to.clone(),
                r.units_finished.to_string(),
                r.units_lost.to_string(),
                r.salvaged_rows.to_string(),
                r.retry_salvaged.to_string(),
            ]);
        }
        let sc = observe_script_fault();
        t.push_row(vec![
            SCRIPT_LABEL.to_owned(),
            sc.unit.to_owned(),
            sc.pinned_to.clone(),
            sc.units_finished.to_string(),
            sc.units_lost.to_string(),
            sc.salvaged_rows.to_string(),
            sc.retry_salvaged.to_string(),
        ]);
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("§III-A — fault accountability (paper)", &COLUMNS);
        t.push_row(vec![
            WORKFLOW_LABEL.to_owned(),
            "operator".to_owned(),
            "failed operator, colored in the GUI".to_owned(),
            "all others keep progress".to_owned(),
            "one".to_owned(),
            "partial results visible".to_owned(),
            "all rows (engine replays the quantum)".to_owned(),
        ]);
        t.push_row(vec![
            SCRIPT_LABEL.to_owned(),
            "cell".to_owned(),
            "cell trace (In [n])".to_owned(),
            "cells before the failure".to_owned(),
            "failed cell + everything after".to_owned(),
            "none past the stage barrier".to_owned(),
            "none (only the whole cell can re-run)".to_owned(),
        ]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_fault_pins_and_salvages() {
        let r = observe_workflow_fault(7);
        assert_eq!(r.unit, "operator");
        assert_eq!(r.pinned_to, "operator `parse`");
        // load completed; count and sink finished degraded on partial
        // input; only parse itself is lost.
        assert_eq!(r.units_finished, 3, "{r:?}");
        assert_eq!(r.units_lost, 1, "{r:?}");
        assert!(
            r.salvaged_rows > 0,
            "rows flushed before the fault survive in the sink: {r:?}"
        );
        // 512 rows minus the 74 ids divisible by 7 that parse drops:
        // with the default retry budget nothing else is lost.
        assert_eq!(r.retry_salvaged, 438, "{r:?}");
    }

    #[test]
    fn workflow_fault_report_is_deterministic() {
        assert_eq!(observe_workflow_fault(7), observe_workflow_fault(7));
    }

    #[test]
    fn sim_backend_fault_is_also_pinned_to_parse() {
        let r = observe_workflow_fault_on(BackendKind::Sim, 7);
        assert_eq!(r.unit, "operator");
        assert_eq!(r.pinned_to, "operator `parse`");
        // The simulator's terminal sample covers the whole DAG; at
        // minimum the parse operator itself is lost.
        assert!(r.units_lost >= 1, "{r:?}");
        assert_eq!(
            r.units_finished + r.units_lost,
            4,
            "all four operators accounted for: {r:?}"
        );
        assert_eq!(
            r.retry_salvaged, 438,
            "the sim retry replay salvages every row: {r:?}"
        );
    }

    #[test]
    fn script_fault_loses_the_cell_and_everything_after() {
        let r = observe_script_fault();
        assert_eq!(r.unit, "cell");
        assert_eq!(r.pinned_to, "cell `parse` (In [2])");
        assert_eq!(r.units_finished, 1, "only load survives: {r:?}");
        assert_eq!(r.units_lost, 2, "parse + count lost: {r:?}");
        assert_eq!(r.salvaged_rows, 0, "nothing crosses the barrier: {r:?}");
        assert_eq!(
            r.retry_salvaged, 0,
            "no unit below the cell to retry: {r:?}"
        );
    }

    #[test]
    fn comparison_experiment_contrasts_the_paradigms() {
        let Artifact::Table(t) = FaultComparison.run() else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], WORKFLOW_LABEL);
        assert_eq!(t.rows[1][0], SCRIPT_LABEL);
        let wf_salvaged: u64 = t.rows[0][5].parse().unwrap();
        let sc_salvaged: u64 = t.rows[1][5].parse().unwrap();
        assert!(
            wf_salvaged > sc_salvaged,
            "the workflow paradigm salvages rows the script loses: {wf_salvaged} vs {sc_salvaged}"
        );
        let wf_retry: u64 = t.rows[0][6].parse().unwrap();
        let sc_retry: u64 = t.rows[1][6].parse().unwrap();
        assert_eq!(wf_retry, 438, "retry salvages every surviving row");
        assert_eq!(sc_retry, 0, "the script still salvages nothing");
    }
}
