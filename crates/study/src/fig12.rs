//! Experiment #1 — modularity (Fig. 12a: lines of code; Fig. 12b: KGE
//! time vs operator count).

use scriptflow_core::{
    Artifact, BackendChoice, Calibration, Experiment, ExperimentMeta, Figure, Series, Table,
};
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::listing;

use crate::{anchors, backend_workflow_label, SCRIPT_LABEL, WORKFLOW_LABEL};

/// Fig. 12a: lines of code per task under both paradigms.
pub struct Fig12a;

impl Experiment for Fig12a {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig12a",
            paper_artifact: "Fig. 12a",
            description: "Lines of code per task: notebook vs workflow",
        }
    }

    fn run(&self) -> Artifact {
        let mut t = Table::new(
            "Fig. 12a — lines of code",
            &["task", SCRIPT_LABEL, WORKFLOW_LABEL],
        );
        let rows: [(&str, String, String); 4] = [
            (
                "DICE",
                listing::dice_script_listing(),
                listing::dice_workflow_listing(),
            ),
            (
                "WEF",
                listing::wef_script_listing(),
                listing::wef_workflow_listing(),
            ),
            (
                "GOTTA",
                listing::gotta_script_listing(),
                listing::gotta_workflow_listing(),
            ),
            (
                "KGE",
                listing::kge_script_listing(),
                listing::kge_workflow_listing(),
            ),
        ];
        for (task, script, workflow) in rows {
            t.push_row(vec![
                task.to_owned(),
                listing::count_loc(&script).to_string(),
                listing::count_loc(&workflow).to_string(),
            ]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new(
            "Fig. 12a — lines of code (paper)",
            &["task", SCRIPT_LABEL, WORKFLOW_LABEL],
        );
        for (task, nb, tex) in anchors::FIG12A_LOC {
            t.push_row(vec![task.to_owned(), nb.to_string(), tex.to_string()]);
        }
        Artifact::Table(t)
    }
}

/// Fig. 12b: KGE execution time at 6.8k products across fusion levels
/// 1–6, with the script time as the reference line.
pub struct Fig12b;

impl Experiment for Fig12b {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig12b",
            paper_artifact: "Fig. 12b",
            description: "KGE time vs number of workflow operators (modularity)",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let mut fig = Figure::new(
            "fig12b",
            "KGE modularity",
            "logical operators",
            "execution time (s)",
        );
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|fusion| {
                let p = KgeParams::new(6_800, 1).with_fusion(fusion);
                let run = kge::workflow::run_workflow(&p, &cal).expect("workflow run");
                (fusion as f64, run.seconds())
            })
            .collect();
        fig.push_series(Series::new(WORKFLOW_LABEL, points));
        let script = kge::script::run_script(&KgeParams::new(6_800, 1), &cal)
            .expect("script run")
            .seconds();
        fig.push_series(Series::new(
            format!("{SCRIPT_LABEL} (reference)"),
            (1..=6).map(|x| (x as f64, script)).collect(),
        ));
        Artifact::Figure(fig)
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        let mut fig = Figure::new(
            "fig12b",
            format!("KGE modularity [backend: {backend}]"),
            "logical operators",
            "execution time (s)",
        );
        for kind in backend.kinds() {
            let points: Vec<(f64, f64)> = (1..=6)
                .map(|fusion| {
                    let p = KgeParams::new(6_800, 1).with_fusion(fusion);
                    let run =
                        kge::workflow::run_workflow_on(&p, &cal, *kind).expect("workflow run");
                    (fusion as f64, run.seconds())
                })
                .collect();
            fig.push_series(Series::new(backend_workflow_label(*kind), points));
        }
        Artifact::Figure(fig)
    }

    fn paper_reference(&self) -> Artifact {
        let mut fig = Figure::new(
            "fig12b",
            "KGE modularity (paper)",
            "logical operators",
            "execution time (s)",
        );
        fig.push_series(Series::new(WORKFLOW_LABEL, anchors::FIG12B_POINTS.to_vec()));
        Artifact::Figure(fig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12a_reproduces_the_ordering() {
        let Artifact::Table(t) = Fig12a.run() else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), 4);
        for (row, (task, paper_nb, paper_tex)) in t.rows.iter().zip(anchors::FIG12A_LOC) {
            let nb: usize = row[1].parse().unwrap();
            let tex: usize = row[2].parse().unwrap();
            assert_eq!(
                nb > tex,
                paper_nb > paper_tex,
                "{task} ordering: measured {nb}/{tex}, paper {paper_nb}/{paper_tex}"
            );
        }
    }

    #[test]
    fn fig12b_shows_diminishing_modularity_returns() {
        let Artifact::Figure(fig) = Fig12b.run() else {
            panic!("expected figure");
        };
        let points = &fig.series_by_label(WORKFLOW_LABEL).unwrap().points;
        let y = |k: f64| {
            points
                .iter()
                .find(|(x, _)| (*x - k).abs() < 1e-9)
                .unwrap()
                .1
        };
        // The paper's claims: splitting helps (1 → 5 operators is ~20%
        // faster), but the benefit saturates (6 is not faster than 5).
        assert!(y(5.0) < y(1.0) * 0.92, "5-op {} vs 1-op {}", y(5.0), y(1.0));
        assert!(y(6.0) >= y(5.0), "6-op {} vs 5-op {}", y(6.0), y(5.0));
        // Note: fusion level 2 bundles filter+join+score into one hot
        // Python operator including its vectorization warm-up; the paper
        // only quotes levels 1, 5 and 6.
    }
}
