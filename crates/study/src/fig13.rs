//! Experiment #3 — dataset-size scaling (Fig. 13a–d).

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Figure, Series,
};
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_tasks::wef::{self, WefParams};

use crate::{anchors, backend_workflow_label, SCRIPT_LABEL, WORKFLOW_LABEL};

fn figure_from(id: &str, title: &str, x_label: &str, points: Vec<(f64, f64, f64)>) -> Figure {
    let mut fig = Figure::new(id, title, x_label, "execution time (s)");
    fig.push_series(Series::new(
        SCRIPT_LABEL,
        points.iter().map(|(x, s, _)| (*x, *s)).collect(),
    ));
    fig.push_series(Series::new(
        WORKFLOW_LABEL,
        points.iter().map(|(x, _, w)| (*x, *w)).collect(),
    ));
    fig
}

/// Backend-aware variant of [`figure_from`]: the simulated script series
/// stays the reference, while the workflow side gets one series per
/// selected backend (virtual seconds for sim, measured wall-clock for
/// live).
fn backend_figure(
    id: &str,
    title: &str,
    x_label: &str,
    backend: BackendChoice,
    xs: &[usize],
    script_at: impl Fn(usize) -> f64,
    workflow_at: impl Fn(usize, BackendKind) -> f64,
) -> Figure {
    let mut fig = Figure::new(
        id,
        format!("{title} [backend: {backend}]"),
        x_label,
        "execution time (s)",
    );
    fig.push_series(Series::new(
        SCRIPT_LABEL,
        xs.iter().map(|&x| (x as f64, script_at(x))).collect(),
    ));
    for kind in backend.kinds() {
        fig.push_series(Series::new(
            backend_workflow_label(*kind),
            xs.iter()
                .map(|&x| (x as f64, workflow_at(x, *kind)))
                .collect(),
        ));
    }
    fig
}

fn reference_figure(id: &str, title: &str, x_label: &str, rows: &[(usize, f64, f64)]) -> Artifact {
    Artifact::Figure(figure_from(
        id,
        title,
        x_label,
        rows.iter().map(|(x, s, w)| (*x as f64, *s, *w)).collect(),
    ))
}

/// Fig. 13a: DICE over 10..200 file pairs.
pub struct Fig13a;

impl Experiment for Fig13a {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig13a",
            paper_artifact: "Fig. 13a",
            description: "DICE execution time as the number of file pairs grows",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = [10, 50, 100, 200]
            .into_iter()
            .map(|pairs| {
                let p = DiceParams::new(pairs, 1);
                let s = dice::script::run_script(&p, &cal).expect("script run");
                let w = dice::workflow::run_workflow(&p, &cal).expect("workflow run");
                (pairs as f64, s.seconds(), w.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig13a", "DICE scaling", "file pairs", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig13a",
            "DICE scaling",
            "file pairs",
            backend,
            &[10, 50, 100, 200],
            |pairs| {
                dice::script::run_script(&DiceParams::new(pairs, 1), &cal)
                    .expect("script run")
                    .seconds()
            },
            |pairs, kind| {
                dice::workflow::run_workflow_on(&DiceParams::new(pairs, 1), &cal, kind)
                    .expect("workflow run")
                    .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference_figure(
            "fig13a",
            "DICE scaling (paper)",
            "file pairs",
            &anchors::FIG13A,
        )
    }
}

/// Fig. 13b: WEF over 200..400 tweets.
pub struct Fig13b;

impl Experiment for Fig13b {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig13b",
            paper_artifact: "Fig. 13b",
            description: "WEF training time as the number of tweets grows",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = [200, 300, 400]
            .into_iter()
            .map(|tweets| {
                let p = WefParams::new(tweets);
                let s = wef::script::run_script(&p, &cal).expect("script run");
                let w = wef::workflow::run_workflow(&p, &cal).expect("workflow run");
                (tweets as f64, s.seconds(), w.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig13b", "WEF scaling", "tweets", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig13b",
            "WEF scaling",
            "tweets",
            backend,
            &[200, 300, 400],
            |tweets| {
                wef::script::run_script(&WefParams::new(tweets), &cal)
                    .expect("script run")
                    .seconds()
            },
            |tweets, kind| {
                wef::workflow::run_workflow_on(&WefParams::new(tweets), &cal, kind)
                    .expect("workflow run")
                    .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference_figure("fig13b", "WEF scaling (paper)", "tweets", &anchors::FIG13B)
    }
}

/// Fig. 13c: KGE over 6.8k / 68k products.
pub struct Fig13c;

impl Experiment for Fig13c {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig13c",
            paper_artifact: "Fig. 13c",
            description: "KGE inference time as the number of products grows",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = [6_800usize, 68_000]
            .into_iter()
            .map(|products| {
                let p = KgeParams::new(products, 1).with_fusion(3);
                let s = kge::script::run_script(&p, &cal).expect("script run");
                let w = kge::workflow::run_workflow(&p, &cal).expect("workflow run");
                (products as f64, s.seconds(), w.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig13c", "KGE scaling", "products", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig13c",
            "KGE scaling",
            "products",
            backend,
            &[6_800, 68_000],
            |products| {
                kge::script::run_script(&KgeParams::new(products, 1).with_fusion(3), &cal)
                    .expect("script run")
                    .seconds()
            },
            |products, kind| {
                kge::workflow::run_workflow_on(
                    &KgeParams::new(products, 1).with_fusion(3),
                    &cal,
                    kind,
                )
                .expect("workflow run")
                .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference_figure(
            "fig13c",
            "KGE scaling (paper)",
            "products",
            &anchors::FIG13C,
        )
    }
}

/// Fig. 13d: GOTTA over 1 / 4 / 16 paragraphs.
pub struct Fig13d;

impl Experiment for Fig13d {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig13d",
            paper_artifact: "Fig. 13d",
            description: "GOTTA inference time as the number of paragraphs grows",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = [1usize, 4, 16]
            .into_iter()
            .map(|paragraphs| {
                let p = GottaParams::new(paragraphs, 1);
                let s = gotta::script::run_script(&p, &cal).expect("script run");
                let w = gotta::workflow::run_workflow(&p, &cal).expect("workflow run");
                (paragraphs as f64, s.seconds(), w.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig13d", "GOTTA scaling", "paragraphs", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig13d",
            "GOTTA scaling",
            "paragraphs",
            backend,
            &[1, 4, 16],
            |paragraphs| {
                gotta::script::run_script(&GottaParams::new(paragraphs, 1), &cal)
                    .expect("script run")
                    .seconds()
            },
            |paragraphs, kind| {
                gotta::workflow::run_workflow_on(&GottaParams::new(paragraphs, 1), &cal, kind)
                    .expect("workflow run")
                    .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference_figure(
            "fig13d",
            "GOTTA scaling (paper)",
            "paragraphs",
            &anchors::FIG13D,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_core::Artifact;

    type Points = Vec<(f64, f64)>;

    fn series_of(a: &Artifact) -> (Points, Points) {
        match a {
            Artifact::Figure(f) => (
                f.series_by_label(SCRIPT_LABEL).unwrap().points.clone(),
                f.series_by_label(WORKFLOW_LABEL).unwrap().points.clone(),
            ),
            other => panic!("expected figure, got {other:?}"),
        }
    }

    /// Assert measured y is within `tol` (relative) of the paper y for
    /// the points the paper quotes.
    fn assert_close(measured: &[(f64, f64)], paper: &[(usize, f64)], tol: f64, what: &str) {
        for (x, py) in paper {
            let my = measured
                .iter()
                .find(|(mx, _)| (*mx - *x as f64).abs() < 1e-9)
                .unwrap_or_else(|| panic!("{what}: missing x={x}"))
                .1;
            let rel = (my - py).abs() / py;
            assert!(
                rel < tol,
                "{what} at x={x}: measured {my:.2} vs paper {py:.2} ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn fig13a_matches_paper_shape() {
        let (s, w) = series_of(&Fig13a.run());
        let paper_s: Vec<(usize, f64)> = anchors::FIG13A.iter().map(|(x, s, _)| (*x, *s)).collect();
        let paper_w: Vec<(usize, f64)> = anchors::FIG13A.iter().map(|(x, _, w)| (*x, *w)).collect();
        assert_close(&s, &paper_s, 0.12, "fig13a script");
        assert_close(&w, &paper_w, 0.20, "fig13a workflow");
        // Texera wins at every measured size.
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(wy < sy);
        }
    }

    #[test]
    fn fig13b_matches_paper_shape() {
        let (s, w) = series_of(&Fig13b.run());
        let paper_s: Vec<(usize, f64)> = anchors::FIG13B.iter().map(|(x, s, _)| (*x, *s)).collect();
        let paper_w: Vec<(usize, f64)> = anchors::FIG13B.iter().map(|(x, _, w)| (*x, *w)).collect();
        assert_close(&s, &paper_s, 0.05, "fig13b script");
        assert_close(&w, &paper_w, 0.05, "fig13b workflow");
    }

    #[test]
    fn fig13c_matches_paper_shape() {
        let (s, w) = series_of(&Fig13c.run());
        let paper_s: Vec<(usize, f64)> = anchors::FIG13C.iter().map(|(x, s, _)| (*x, *s)).collect();
        let paper_w: Vec<(usize, f64)> = anchors::FIG13C.iter().map(|(x, _, w)| (*x, *w)).collect();
        assert_close(&s, &paper_s, 0.10, "fig13c script");
        assert_close(&w, &paper_w, 0.10, "fig13c workflow");
        // KGE is the task the script paradigm wins at every scale.
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(sy < wy);
        }
    }

    #[test]
    fn fig13d_matches_paper_shape() {
        let (s, w) = series_of(&Fig13d.run());
        let paper_s: Vec<(usize, f64)> = anchors::FIG13D.iter().map(|(x, s, _)| (*x, *s)).collect();
        let paper_w: Vec<(usize, f64)> = anchors::FIG13D.iter().map(|(x, _, w)| (*x, *w)).collect();
        assert_close(&s, &paper_s, 0.05, "fig13d script");
        assert_close(&w, &paper_w, 0.05, "fig13d workflow");
        // Texera wins by ~2.5-3x at every size.
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(*sy > wy * 2.0);
        }
    }
}
