//! Experiment #4 — worker scaling (Fig. 14a–c).

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Figure, Series,
};
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};

use crate::{anchors, backend_workflow_label, SCRIPT_LABEL, WORKFLOW_LABEL};

const WORKERS: [usize; 3] = [1, 2, 4];

fn figure_from(id: &str, title: &str, points: Vec<(f64, f64, f64)>) -> Figure {
    let mut fig = Figure::new(id, title, "workers", "execution time (s)");
    fig.push_series(Series::new(
        SCRIPT_LABEL,
        points.iter().map(|(x, s, _)| (*x, *s)).collect(),
    ));
    fig.push_series(Series::new(
        WORKFLOW_LABEL,
        points.iter().map(|(x, _, w)| (*x, *w)).collect(),
    ));
    fig
}

/// Backend-aware worker-scaling figure: simulated script reference plus
/// one workflow series per selected backend over the [`WORKERS`] sweep.
fn backend_figure(
    id: &str,
    title: &str,
    backend: BackendChoice,
    script_at: impl Fn(usize) -> f64,
    workflow_at: impl Fn(usize, BackendKind) -> f64,
) -> Figure {
    let mut fig = Figure::new(
        id,
        format!("{title} [backend: {backend}]"),
        "workers",
        "execution time (s)",
    );
    fig.push_series(Series::new(
        SCRIPT_LABEL,
        WORKERS.iter().map(|&w| (w as f64, script_at(w))).collect(),
    ));
    for kind in backend.kinds() {
        fig.push_series(Series::new(
            backend_workflow_label(*kind),
            WORKERS
                .iter()
                .map(|&w| (w as f64, workflow_at(w, *kind)))
                .collect(),
        ));
    }
    fig
}

fn reference(id: &str, title: &str, rows: &[(usize, f64, f64)]) -> Artifact {
    Artifact::Figure(figure_from(
        id,
        title,
        rows.iter().map(|(x, s, w)| (*x as f64, *s, *w)).collect(),
    ))
}

/// Fig. 14a: DICE at 200 pairs, 1/2/4 workers.
pub struct Fig14a;

impl Experiment for Fig14a {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig14a",
            paper_artifact: "Fig. 14a",
            description: "DICE at 200 file pairs as workers increase",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = WORKERS
            .into_iter()
            .map(|w| {
                let p = DiceParams::new(200, w);
                let s = dice::script::run_script(&p, &cal).expect("script run");
                let wf = dice::workflow::run_workflow(&p, &cal).expect("workflow run");
                (w as f64, s.seconds(), wf.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig14a", "DICE workers", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig14a",
            "DICE workers",
            backend,
            |w| {
                dice::script::run_script(&DiceParams::new(200, w), &cal)
                    .expect("script run")
                    .seconds()
            },
            |w, kind| {
                dice::workflow::run_workflow_on(&DiceParams::new(200, w), &cal, kind)
                    .expect("workflow run")
                    .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference("fig14a", "DICE workers (paper)", &anchors::FIG14A)
    }
}

/// Fig. 14b: GOTTA at 4 paragraphs, 1/2/4 workers.
pub struct Fig14b;

impl Experiment for Fig14b {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig14b",
            paper_artifact: "Fig. 14b",
            description: "GOTTA at 4 paragraphs as workers increase",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = WORKERS
            .into_iter()
            .map(|w| {
                let p = GottaParams::new(4, w);
                let s = gotta::script::run_script(&p, &cal).expect("script run");
                let wf = gotta::workflow::run_workflow(&p, &cal).expect("workflow run");
                (w as f64, s.seconds(), wf.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig14b", "GOTTA workers", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig14b",
            "GOTTA workers",
            backend,
            |w| {
                gotta::script::run_script(&GottaParams::new(4, w), &cal)
                    .expect("script run")
                    .seconds()
            },
            |w, kind| {
                gotta::workflow::run_workflow_on(&GottaParams::new(4, w), &cal, kind)
                    .expect("workflow run")
                    .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference("fig14b", "GOTTA workers (paper)", &anchors::FIG14B)
    }
}

/// Fig. 14c: KGE at 68k products, 1/2/4 workers.
pub struct Fig14c;

impl Experiment for Fig14c {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig14c",
            paper_artifact: "Fig. 14c",
            description: "KGE at 68k products as workers increase",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let points = WORKERS
            .into_iter()
            .map(|w| {
                let p = KgeParams::new(68_000, w).with_fusion(3);
                let s = kge::script::run_script(&p, &cal).expect("script run");
                let wf = kge::workflow::run_workflow(&p, &cal).expect("workflow run");
                (w as f64, s.seconds(), wf.seconds())
            })
            .collect();
        Artifact::Figure(figure_from("fig14c", "KGE workers", points))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        Artifact::Figure(backend_figure(
            "fig14c",
            "KGE workers",
            backend,
            |w| {
                kge::script::run_script(&KgeParams::new(68_000, w).with_fusion(3), &cal)
                    .expect("script run")
                    .seconds()
            },
            |w, kind| {
                kge::workflow::run_workflow_on(
                    &KgeParams::new(68_000, w).with_fusion(3),
                    &cal,
                    kind,
                )
                .expect("workflow run")
                .seconds()
            },
        ))
    }

    fn paper_reference(&self) -> Artifact {
        reference("fig14c", "KGE workers (paper)", &anchors::FIG14C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Points = Vec<(f64, f64)>;

    fn series_of(a: &Artifact) -> (Points, Points) {
        match a {
            Artifact::Figure(f) => (
                f.series_by_label(SCRIPT_LABEL).unwrap().points.clone(),
                f.series_by_label(WORKFLOW_LABEL).unwrap().points.clone(),
            ),
            other => panic!("expected figure, got {other:?}"),
        }
    }

    fn assert_monotone_decreasing(points: &[(f64, f64)], what: &str) {
        for pair in points.windows(2) {
            assert!(pair[1].1 < pair[0].1, "{what}: {:?} not decreasing", points);
        }
    }

    #[test]
    fn fig14a_shape() {
        let (s, w) = series_of(&Fig14a.run());
        assert_monotone_decreasing(&s, "fig14a script");
        assert_monotone_decreasing(&w, "fig14a workflow");
        // Texera wins at every worker count (the paper's headline).
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(wy < sy);
        }
        // The script narrows the gap as workers grow (±: paper saw the
        // relative difference fall from 122% to 50%).
        let gap_1 = s[0].1 / w[0].1;
        let gap_4 = s[2].1 / w[2].1;
        assert!(gap_4 < gap_1, "gap must narrow: {gap_1} -> {gap_4}");
    }

    #[test]
    fn fig14b_shape() {
        let (s, w) = series_of(&Fig14b.run());
        assert_monotone_decreasing(&s, "fig14b script");
        assert_monotone_decreasing(&w, "fig14b workflow");
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(wy < sy, "Texera wins GOTTA at every worker count");
        }
        // Script roughly halves per doubling (near-linear scaling).
        let speedup = s[0].1 / s[2].1;
        assert!((3.0..4.2).contains(&speedup), "script speedup {speedup}");
    }

    #[test]
    fn fig14c_shape() {
        let (s, w) = series_of(&Fig14c.run());
        assert_monotone_decreasing(&s, "fig14c script");
        assert_monotone_decreasing(&w, "fig14c workflow");
        for ((_, sy), (_, wy)) in s.iter().zip(&w) {
            assert!(sy < wy, "script wins KGE at every worker count");
        }
        // Paper: Texera 28-33% slower at 1 worker; stays slower throughout.
        let slower_1 = w[0].1 / s[0].1 - 1.0;
        assert!((0.2..0.6).contains(&slower_1), "slower_1 {slower_1}");
    }
}
