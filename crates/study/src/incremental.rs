//! Incremental re-execution of an edited workflow (engine extension,
//! not a paper artifact).
//!
//! §III-B credits GUI workflow systems with exactly this affordance: a
//! user tweaks one operator in the canvas and the engine re-runs only
//! what the edit invalidated, serving everything upstream from cached
//! results — while a script re-executes from the top. This experiment
//! quantifies that story on the reproduction's engines. It runs the KGE
//! pipeline (fusion 3, the configuration with a standalone join
//! operator) three times against one shared result cache:
//!
//! 1. **cold** — empty cache; every operator computes and publishes its
//!    sealed output keyed by its [`OpFingerprint`];
//! 2. **warm** — the identical pipeline again; the serve frontier (the
//!    last cacheable operator) replays from compressed segments and its
//!    entire upstream cone is skipped outright;
//! 3. **edited** — the paper's Table I edit (the Python join swapped
//!    for the Scala pipeline); only the join's downstream cone
//!    recomputes, its unedited inputs replay from the cache.
//!
//! A fourth, cache-free run of the edited pipeline pins correctness:
//! the edited warm rerun must produce byte-identical rows to a cold
//! run of the same DAG.
//!
//! [`OpFingerprint`]: scriptflow_core::fingerprint::OpFingerprint

use std::sync::Arc;

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Table,
};
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_workflow::ResultCache;

/// Sizes the experiment sweeps (the paper's Fig. 13c small/mid points;
/// the edit-rerun story is about re-execution fraction, not scale).
pub const SIZES: [usize; 2] = [1_700, 6_800];

/// One (size, backend) observation: the cold/warm/edited triple against
/// a shared cache, plus the cache-free control of the edited pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EditRerunObservation {
    /// Products in the KGE input.
    pub products: usize,
    /// Backend that executed all four runs.
    pub kind: BackendKind,
    /// Seconds for the cold run (empty cache; all misses).
    pub cold_secs: f64,
    /// Seconds for the identical warm rerun (all cacheable ops hit).
    pub warm_secs: f64,
    /// Seconds for the edited rerun (join swapped; partial hits).
    pub edited_secs: f64,
    /// Cacheable operators the cold run computed and published.
    pub cold_misses: u64,
    /// Compressed bytes the cold run sealed into the cache.
    pub cold_published: u64,
    /// Operators the warm rerun served from sealed segments. Only the
    /// serve *frontier* counts: anything upstream of a served node is
    /// skipped outright, so a fully-warm rerun replays just the last
    /// cacheable operator.
    pub warm_hits: u64,
    /// Cacheable operators the warm rerun still computed (0: the rerun
    /// is identical, so nothing is invalidated).
    pub warm_misses: u64,
    /// Operators the edited rerun served — the frontier of the unedited
    /// cone feeding the recomputed join (the stock filter and the
    /// embedding scan; the candidates scan behind the filter is
    /// skipped).
    pub edited_hits: u64,
    /// Cacheable operators the edit invalidated (the join and its
    /// downstream cone).
    pub edited_misses: u64,
    /// Warm rerun rows == cold run rows, sorted.
    pub warm_matches: bool,
    /// Edited warm rerun rows == cache-free edited run rows, sorted.
    pub edited_matches: bool,
}

impl EditRerunObservation {
    /// Fraction of the cold makespan the warm rerun costs.
    pub fn warm_fraction(&self) -> f64 {
        self.warm_secs / self.cold_secs.max(1e-9)
    }
}

/// Run the cold/warm/edited sweep at one size on one backend.
pub fn observe_edit_rerun(products: usize, kind: BackendKind) -> EditRerunObservation {
    let cal = Calibration::paper();
    let base = || KgeParams::new(products, 2).with_fusion(3);
    let edited_params = || base().with_join_language(Language::Scala);

    let cache = Arc::new(ResultCache::new());
    let cold = kge::workflow::run_workflow_cached(&base(), &cal, kind, &cache).expect("cold run");
    let warm = kge::workflow::run_workflow_cached(&base(), &cal, kind, &cache).expect("warm rerun");
    let edited = kge::workflow::run_workflow_cached(&edited_params(), &cal, kind, &cache)
        .expect("edited rerun");
    let control =
        kge::workflow::run_workflow_on(&edited_params(), &cal, kind).expect("edited control");

    EditRerunObservation {
        products,
        kind,
        cold_secs: cold.seconds(),
        warm_secs: warm.seconds(),
        edited_secs: edited.seconds(),
        cold_misses: cold.cache_misses,
        cold_published: cold.cache_published,
        warm_hits: warm.cache_hits,
        warm_misses: warm.cache_misses,
        edited_hits: edited.cache_hits,
        edited_misses: edited.cache_misses,
        warm_matches: warm.run.output == cold.run.output,
        edited_matches: edited.run.output == control.run.output,
    }
}

const COLUMNS: [&str; 9] = [
    "products",
    "backend",
    "cold (s)",
    "warm (s)",
    "edited (s)",
    "warm hits",
    "edited hits",
    "edited misses",
    "warm/cold",
];

fn table_for(backend: BackendChoice, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "KGE edit-rerun: cold vs warm vs join-swapped against one result cache",
        &COLUMNS,
    );
    for &products in sizes {
        for kind in backend.kinds() {
            let o = observe_edit_rerun(products, *kind);
            assert!(o.warm_matches, "warm KGE rerun diverged: {o:?}");
            assert!(o.edited_matches, "edited KGE rerun diverged: {o:?}");
            t.push_row(vec![
                o.products.to_string(),
                o.kind.label().to_owned(),
                format!("{:.2}", o.cold_secs),
                format!("{:.2}", o.warm_secs),
                format!("{:.2}", o.edited_secs),
                o.warm_hits.to_string(),
                o.edited_hits.to_string(),
                o.edited_misses.to_string(),
                format!("{:.2}x", o.warm_fraction()),
            ]);
        }
    }
    t
}

/// The incremental re-execution experiment (`edit-rerun`). Lives in its
/// own [`crate::incremental_registry`] because it extends the engines
/// rather than reproducing a numbered artifact.
pub struct EditRerun;

impl Experiment for EditRerun {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "edit-rerun",
            paper_artifact: "engine extension of §III-B (GUI edit-and-rerun affordance)",
            description: "KGE re-run against a shared result cache: the identical rerun \
                          replays its serve frontier from sealed segments and skips the rest; \
                          the Table I join swap recomputes only the edited cone",
        }
    }

    fn run(&self) -> Artifact {
        Artifact::Table(table_for(BackendChoice::Sim, &SIZES))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        Artifact::Table(table_for(backend, &SIZES))
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("no paper artifact (engine extension)", &COLUMNS);
        t.push_row(vec![
            "§III-B, qualitative".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small size so the suite stays fast; hit/miss structure does not
    /// depend on scale.
    const TEST_PRODUCTS: usize = 1_700;

    #[test]
    fn warm_rerun_hits_everything_and_matches_cold() {
        let o = observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.warm_matches, "{o:?}");
        assert!(o.cold_misses > 0, "{o:?}");
        assert!(o.cold_published > 0, "{o:?}");
        // The serve frontier of a fully-warm rerun is the single last
        // cacheable operator; its whole upstream cone is skipped.
        assert_eq!(o.warm_hits, 1, "{o:?}");
        assert_eq!(o.warm_misses, 0, "identical rerun must not recompute: {o:?}");
        // Replaying sealed segments is charged far below recomputation
        // on the virtual clock.
        assert!(o.warm_secs < o.cold_secs, "{o:?}");
    }

    #[test]
    fn edit_recomputes_only_the_join_cone() {
        let o = observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.edited_matches, "{o:?}");
        // The serve frontier of the unedited cone — the stock filter and
        // the embedding scan, the two inputs of the recomputed join —
        // replays from the cache (the candidates scan behind the filter
        // is skipped outright).
        assert_eq!(o.edited_hits, 2, "{o:?}");
        // The swapped-in Scala pipeline and everything downstream of it
        // recomputes.
        assert!(o.edited_misses > 0, "{o:?}");
    }

    #[test]
    fn observation_is_deterministic_on_sim() {
        assert_eq!(
            observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim),
            observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim)
        );
    }

    #[test]
    fn experiment_table_has_one_row_per_size() {
        let Artifact::Table(t) = EditRerun.run_on(BackendChoice::Sim) else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), SIZES.len());
        for row in &t.rows {
            let hits: u64 = row[5].parse().unwrap();
            assert!(hits > 0, "row {row:?} never hit the cache");
        }
    }
}
