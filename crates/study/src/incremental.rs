//! Incremental re-execution of an edited workflow (engine extension,
//! not a paper artifact).
//!
//! §III-B credits GUI workflow systems with exactly this affordance: a
//! user tweaks one operator in the canvas and the engine re-runs only
//! what the edit invalidated, serving everything upstream from cached
//! results — while a script re-executes from the top. This experiment
//! quantifies that story on the reproduction's engines. It runs the KGE
//! pipeline (fusion 3, the configuration with a standalone join
//! operator) three times against one shared result cache:
//!
//! 1. **cold** — empty cache; every operator computes and publishes its
//!    sealed output keyed by its [`OpFingerprint`];
//! 2. **warm** — the identical pipeline again; the serve frontier (the
//!    last cacheable operator) replays from compressed segments and its
//!    entire upstream cone is skipped outright;
//! 3. **edited** — the paper's Table I edit (the Python join swapped
//!    for the Scala pipeline); only the join's downstream cone
//!    recomputes, its unedited inputs replay from the cache.
//!
//! A fourth, cache-free run of the edited pipeline pins correctness:
//! the edited warm rerun must produce byte-identical rows to a cold
//! run of the same DAG.
//!
//! A second experiment, [`EditLoop`] (`edit-loop`), plays the same
//! story *across sessions*: the cache persists sealed segments on disk
//! (see [`ResultCache::persistent`]), so a process restart reopens the
//! store and still serves warm, and reverting an edit replays the
//! original segments published sessions ago. Its script-paradigm
//! counterpart is a notebook whose [`LineageGraph`] limits the rerun to
//! the edit's stale cone — versus the rerun-everything default §III-A
//! describes — with both sides costed from the same calibrated
//! per-stage constants.
//!
//! [`OpFingerprint`]: scriptflow_core::fingerprint::OpFingerprint

use std::sync::Arc;

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Table,
};
use scriptflow_notebook::{Cell, LineageGraph, Notebook};
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{self, KgeParams};
use scriptflow_workflow::ResultCache;

/// Sizes the experiment sweeps (the paper's Fig. 13c small/mid points;
/// the edit-rerun story is about re-execution fraction, not scale).
pub const SIZES: [usize; 2] = [1_700, 6_800];

/// One (size, backend) observation: the cold/warm/edited triple against
/// a shared cache, plus the cache-free control of the edited pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EditRerunObservation {
    /// Products in the KGE input.
    pub products: usize,
    /// Backend that executed all four runs.
    pub kind: BackendKind,
    /// Seconds for the cold run (empty cache; all misses).
    pub cold_secs: f64,
    /// Seconds for the identical warm rerun (all cacheable ops hit).
    pub warm_secs: f64,
    /// Seconds for the edited rerun (join swapped; partial hits).
    pub edited_secs: f64,
    /// Cacheable operators the cold run computed and published.
    pub cold_misses: u64,
    /// Compressed bytes the cold run sealed into the cache.
    pub cold_published: u64,
    /// Operators the warm rerun served from sealed segments. Only the
    /// serve *frontier* counts: anything upstream of a served node is
    /// skipped outright, so a fully-warm rerun replays just the last
    /// cacheable operator.
    pub warm_hits: u64,
    /// Cacheable operators the warm rerun still computed (0: the rerun
    /// is identical, so nothing is invalidated).
    pub warm_misses: u64,
    /// Operators the edited rerun served — the frontier of the unedited
    /// cone feeding the recomputed join (the stock filter and the
    /// embedding scan; the candidates scan behind the filter is
    /// skipped).
    pub edited_hits: u64,
    /// Cacheable operators the edit invalidated (the join and its
    /// downstream cone).
    pub edited_misses: u64,
    /// Warm rerun rows == cold run rows, sorted.
    pub warm_matches: bool,
    /// Edited warm rerun rows == cache-free edited run rows, sorted.
    pub edited_matches: bool,
}

impl EditRerunObservation {
    /// Fraction of the cold makespan the warm rerun costs.
    pub fn warm_fraction(&self) -> f64 {
        self.warm_secs / self.cold_secs.max(1e-9)
    }
}

/// Run the cold/warm/edited sweep at one size on one backend.
pub fn observe_edit_rerun(products: usize, kind: BackendKind) -> EditRerunObservation {
    let cal = Calibration::paper();
    let base = || KgeParams::new(products, 2).with_fusion(3);
    let edited_params = || base().with_join_language(Language::Scala);

    let cache = Arc::new(ResultCache::new());
    let cold = kge::workflow::run_workflow_cached(&base(), &cal, kind, &cache).expect("cold run");
    let warm = kge::workflow::run_workflow_cached(&base(), &cal, kind, &cache).expect("warm rerun");
    let edited = kge::workflow::run_workflow_cached(&edited_params(), &cal, kind, &cache)
        .expect("edited rerun");
    let control =
        kge::workflow::run_workflow_on(&edited_params(), &cal, kind).expect("edited control");

    EditRerunObservation {
        products,
        kind,
        cold_secs: cold.seconds(),
        warm_secs: warm.seconds(),
        edited_secs: edited.seconds(),
        cold_misses: cold.cache_misses,
        cold_published: cold.cache_published,
        warm_hits: warm.cache_hits,
        warm_misses: warm.cache_misses,
        edited_hits: edited.cache_hits,
        edited_misses: edited.cache_misses,
        warm_matches: warm.run.output == cold.run.output,
        edited_matches: edited.run.output == control.run.output,
    }
}

const COLUMNS: [&str; 9] = [
    "products",
    "backend",
    "cold (s)",
    "warm (s)",
    "edited (s)",
    "warm hits",
    "edited hits",
    "edited misses",
    "warm/cold",
];

fn table_for(backend: BackendChoice, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "KGE edit-rerun: cold vs warm vs join-swapped against one result cache",
        &COLUMNS,
    );
    for &products in sizes {
        for kind in backend.kinds() {
            let o = observe_edit_rerun(products, *kind);
            assert!(o.warm_matches, "warm KGE rerun diverged: {o:?}");
            assert!(o.edited_matches, "edited KGE rerun diverged: {o:?}");
            t.push_row(vec![
                o.products.to_string(),
                o.kind.label().to_owned(),
                format!("{:.2}", o.cold_secs),
                format!("{:.2}", o.warm_secs),
                format!("{:.2}", o.edited_secs),
                o.warm_hits.to_string(),
                o.edited_hits.to_string(),
                o.edited_misses.to_string(),
                format!("{:.2}x", o.warm_fraction()),
            ]);
        }
    }
    t
}

/// The incremental re-execution experiment (`edit-rerun`). Lives in its
/// own [`crate::incremental_registry`] because it extends the engines
/// rather than reproducing a numbered artifact.
pub struct EditRerun;

impl Experiment for EditRerun {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "edit-rerun",
            paper_artifact: "engine extension of §III-B (GUI edit-and-rerun affordance)",
            description: "KGE re-run against a shared result cache: the identical rerun \
                          replays its serve frontier from sealed segments and skips the rest; \
                          the Table I join swap recomputes only the edited cone",
        }
    }

    fn run(&self) -> Artifact {
        Artifact::Table(table_for(BackendChoice::Sim, &SIZES))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        Artifact::Table(table_for(backend, &SIZES))
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("no paper artifact (engine extension)", &COLUMNS);
        t.push_row(vec![
            "§III-B, qualitative".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        Artifact::Table(t)
    }
}

// ---------------------------------------------------------------------------
// Edit loop across sessions (edit-loop)
// ---------------------------------------------------------------------------

/// One (size, backend) observation of the cross-session edit loop: a
/// persistent on-disk cache carries the workflow paradigm through a
/// restart and an edit-then-revert; the notebook counterpart reruns
/// only the lineage stale cone.
#[derive(Debug, Clone, PartialEq)]
pub struct EditLoopObservation {
    /// Products in the KGE input.
    pub products: usize,
    /// Backend that executed the workflow sessions.
    pub kind: BackendKind,
    /// Session 1: cold run against an empty cache directory (all
    /// misses; segments sealed to disk).
    pub cold_secs: f64,
    /// Session 2, after a simulated restart (the directory reopened by
    /// a fresh [`ResultCache`]): the identical rerun served from
    /// segments decoded off disk.
    pub warm_secs: f64,
    /// Session 2: the Table I join swap; only the edited cone
    /// recomputes (and publishes its own segments).
    pub edited_secs: f64,
    /// Session 3, after another restart: the edit reverted. The
    /// original fingerprints still sit in the store, so the revert
    /// replays segments published back in session 1.
    pub revert_secs: f64,
    /// Serve-frontier hits in the restarted warm rerun (> 0 proves the
    /// segments came off disk, not from the in-memory map).
    pub warm_hits: u64,
    /// Serve-frontier hits in the reverted rerun.
    pub revert_hits: u64,
    /// Compressed bytes session 1 sealed into the store.
    pub cold_published: u64,
    /// Cells in the notebook counterpart.
    pub notebook_cells: usize,
    /// Cells the join edit leaves stale (the edited cell plus its
    /// transitive dependents).
    pub stale_cells: usize,
    /// Seconds a rerun-everything notebook pays after the edit.
    pub notebook_naive_secs: f64,
    /// Seconds a lineage-aware notebook pays rerunning just the cone.
    pub notebook_stale_secs: f64,
    /// Restarted warm rows == session-1 cold rows, sorted.
    pub warm_matches: bool,
    /// Reverted rows == session-1 cold rows, sorted.
    pub revert_matches: bool,
}

impl EditLoopObservation {
    /// Fraction of the cold makespan the restarted warm rerun costs.
    pub fn warm_fraction(&self) -> f64 {
        self.warm_secs / self.cold_secs.max(1e-9)
    }

    /// Fraction of the rerun-everything cost the stale-cone rerun pays.
    pub fn stale_fraction(&self) -> f64 {
        self.notebook_stale_secs / self.notebook_naive_secs.max(1e-9)
    }
}

/// A fresh, collision-free cache directory under the OS temp dir (the
/// sweep removes it when done).
fn fresh_cache_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "scriptflow-edit-loop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The KGE pipeline written the way §III-A's notebooks write it: one
/// cell per stage, reads/writes declaring the def-use chain. Costs are
/// the *same* calibrated per-stage constants the workflow operators
/// charge, so the edit-loop comparison isolates the re-execution
/// strategy (stale-cone vs rerun-all vs cached replay), not paradigm
/// constant differences.
fn kge_notebook(cal: &Calibration, products: usize) -> (Notebook, Vec<f64>) {
    let n = products as u64;
    let mut nb = Notebook::new("kge-edit-loop");
    nb.push(Cell::new("load", "candidates = load()", |_| Ok(())).writes(&["candidates"]));
    nb.push(
        Cell::new("score", "scored = score(candidates)", |_| Ok(()))
            .reads(&["candidates"])
            .writes(&["scored"]),
    );
    nb.push(
        Cell::new("filter", "in_stock = filter(scored)", |_| Ok(()))
            .reads(&["scored"])
            .writes(&["in_stock"]),
    );
    nb.push(
        Cell::new("join", "joined = join(in_stock, emb)", |_| Ok(()))
            .reads(&["in_stock"])
            .writes(&["joined"]),
    );
    nb.push(
        Cell::new("rank", "ranked = rank(joined)", |_| Ok(()))
            .reads(&["joined"])
            .writes(&["ranked"]),
    );
    nb.push(Cell::new("report", "report(ranked)", |_| Ok(())).reads(&["ranked"]));
    let costs = vec![
        cal.kge_py_op_setup.as_secs_f64(),
        (cal.kge_wf_score_per_product * n).as_secs_f64(),
        (cal.kge_wf_filter_per_product * n).as_secs_f64(),
        (cal.kge_py_join_warmup + cal.kge_wf_join_per_product * n).as_secs_f64(),
        (cal.kge_wf_rank_per_product * n).as_secs_f64(),
        (cal.kge_wf_build_per_entry * n).as_secs_f64(),
    ];
    debug_assert_eq!(costs.len(), nb.len());
    (nb, costs)
}

/// Index of the notebook cell the Table I edit touches (the join).
const EDITED_CELL: usize = 3;

/// Run the cross-session edit loop at one size on one backend.
pub fn observe_edit_loop(products: usize, kind: BackendKind) -> EditLoopObservation {
    let cal = Calibration::paper();
    let base = || KgeParams::new(products, 2).with_fusion(3);
    let edited_params = || base().with_join_language(Language::Scala);
    let dir = fresh_cache_dir(&format!("{products}-{}", kind.label()));

    // Session 1: cold against an empty store; segments sealed to disk.
    let session1 = Arc::new(ResultCache::persistent(&dir).expect("open cache dir"));
    let cold = kge::workflow::run_workflow_cached(&base(), &cal, kind, &session1).expect("cold");

    // Session 2: a restart — a fresh cache over the same directory. The
    // warm rerun decodes its serve frontier off disk; the edit then
    // recomputes only the join cone.
    let session2 = Arc::new(ResultCache::persistent(&dir).expect("reopen cache dir"));
    let warm = kge::workflow::run_workflow_cached(&base(), &cal, kind, &session2).expect("warm");
    let edited = kge::workflow::run_workflow_cached(&edited_params(), &cal, kind, &session2)
        .expect("edited");

    // Session 3: another restart, edit reverted — served from the
    // segments session 1 published.
    let session3 = Arc::new(ResultCache::persistent(&dir).expect("reopen cache dir"));
    let revert =
        kge::workflow::run_workflow_cached(&base(), &cal, kind, &session3).expect("revert");
    let _ = std::fs::remove_dir_all(&dir);

    // Script-paradigm counterpart: the same pipeline as notebook cells.
    let (nb, costs) = kge_notebook(&cal, products);
    let lineage = LineageGraph::from_notebook(&nb);
    let stale = lineage.stale_after_edit(&[EDITED_CELL]);
    let naive: f64 = costs.iter().sum();
    let cone: f64 = stale.iter().map(|&i| costs[i]).sum();

    EditLoopObservation {
        products,
        kind,
        cold_secs: cold.seconds(),
        warm_secs: warm.seconds(),
        edited_secs: edited.seconds(),
        revert_secs: revert.seconds(),
        warm_hits: warm.cache_hits,
        revert_hits: revert.cache_hits,
        cold_published: cold.cache_published,
        notebook_cells: nb.len(),
        stale_cells: stale.len(),
        notebook_naive_secs: naive,
        notebook_stale_secs: cone,
        warm_matches: warm.run.output == cold.run.output,
        revert_matches: revert.run.output == cold.run.output,
    }
}

const LOOP_COLUMNS: [&str; 10] = [
    "products",
    "backend",
    "cold (s)",
    "warm@restart (s)",
    "edited (s)",
    "revert@restart (s)",
    "nb rerun-all (s)",
    "nb stale-cone (s)",
    "stale cells",
    "warm/cold",
];

fn loop_table_for(backend: BackendChoice, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "KGE edit loop across sessions: on-disk cache restarts vs notebook stale-cone reruns",
        &LOOP_COLUMNS,
    );
    for &products in sizes {
        for kind in backend.kinds() {
            let o = observe_edit_loop(products, *kind);
            assert!(o.warm_matches, "restarted warm rerun diverged: {o:?}");
            assert!(o.revert_matches, "reverted rerun diverged: {o:?}");
            t.push_row(vec![
                o.products.to_string(),
                o.kind.label().to_owned(),
                format!("{:.2}", o.cold_secs),
                format!("{:.2}", o.warm_secs),
                format!("{:.2}", o.edited_secs),
                format!("{:.2}", o.revert_secs),
                format!("{:.2}", o.notebook_naive_secs),
                format!("{:.2}", o.notebook_stale_secs),
                format!("{}/{}", o.stale_cells, o.notebook_cells),
                format!("{:.2}x", o.warm_fraction()),
            ]);
        }
    }
    t
}

/// The cross-session edit-loop experiment (`edit-loop`): the workflow
/// paradigm's persistent result cache against the script paradigm's
/// lineage-aware notebook rerun.
pub struct EditLoop;

impl Experiment for EditLoop {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "edit-loop",
            paper_artifact: "engine extension of §III-A/§III-B (edit loops across sessions)",
            description: "KGE edit-then-revert across simulated restarts: the on-disk result \
                          cache serves warm after reopening and replays reverted edits from \
                          old segments; the notebook counterpart reruns only the lineage \
                          stale cone instead of the whole script",
        }
    }

    fn run(&self) -> Artifact {
        Artifact::Table(loop_table_for(BackendChoice::Sim, &SIZES))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        Artifact::Table(loop_table_for(backend, &SIZES))
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("no paper artifact (engine extension)", &LOOP_COLUMNS);
        t.push_row(vec!["§III-A/§III-B, qualitative".into(); LOOP_COLUMNS.len()]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small size so the suite stays fast; hit/miss structure does not
    /// depend on scale.
    const TEST_PRODUCTS: usize = 1_700;

    #[test]
    fn warm_rerun_hits_everything_and_matches_cold() {
        let o = observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.warm_matches, "{o:?}");
        assert!(o.cold_misses > 0, "{o:?}");
        assert!(o.cold_published > 0, "{o:?}");
        // The serve frontier of a fully-warm rerun is the single last
        // cacheable operator; its whole upstream cone is skipped.
        assert_eq!(o.warm_hits, 1, "{o:?}");
        assert_eq!(o.warm_misses, 0, "identical rerun must not recompute: {o:?}");
        // Replaying sealed segments is charged far below recomputation
        // on the virtual clock.
        assert!(o.warm_secs < o.cold_secs, "{o:?}");
    }

    #[test]
    fn edit_recomputes_only_the_join_cone() {
        let o = observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.edited_matches, "{o:?}");
        // The serve frontier of the unedited cone — the stock filter and
        // the embedding scan, the two inputs of the recomputed join —
        // replays from the cache (the candidates scan behind the filter
        // is skipped outright).
        assert_eq!(o.edited_hits, 2, "{o:?}");
        // The swapped-in Scala pipeline and everything downstream of it
        // recomputes.
        assert!(o.edited_misses > 0, "{o:?}");
    }

    #[test]
    fn observation_is_deterministic_on_sim() {
        assert_eq!(
            observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim),
            observe_edit_rerun(TEST_PRODUCTS, BackendKind::Sim)
        );
    }

    #[test]
    fn edit_loop_survives_restarts_and_reverts_from_disk() {
        let o = observe_edit_loop(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.warm_matches, "{o:?}");
        assert!(o.revert_matches, "{o:?}");
        assert!(o.cold_published > 0, "{o:?}");
        // Both restarted reruns were *served* — their segments came off
        // disk, because each session opened a fresh cache over the dir.
        assert!(o.warm_hits > 0, "{o:?}");
        assert!(o.revert_hits > 0, "{o:?}");
        assert!(o.warm_secs < o.cold_secs, "{o:?}");
        assert!(o.revert_secs < o.cold_secs, "{o:?}");
    }

    #[test]
    fn edit_loop_notebook_cone_is_a_strict_subset() {
        let o = observe_edit_loop(TEST_PRODUCTS, BackendKind::Sim);
        // Editing the join leaves load/score/filter valid: the
        // lineage-aware rerun is strictly cheaper than rerun-all.
        assert_eq!(o.notebook_cells, 6, "{o:?}");
        assert_eq!(o.stale_cells, 3, "{o:?}");
        assert!(o.notebook_stale_secs < o.notebook_naive_secs, "{o:?}");
        assert!(o.stale_fraction() < 1.0, "{o:?}");
    }

    #[test]
    fn edit_loop_observation_is_deterministic_on_sim() {
        assert_eq!(
            observe_edit_loop(TEST_PRODUCTS, BackendKind::Sim),
            observe_edit_loop(TEST_PRODUCTS, BackendKind::Sim)
        );
    }

    #[test]
    fn edit_loop_table_has_one_row_per_size() {
        let Artifact::Table(t) = EditLoop.run_on(BackendChoice::Sim) else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), SIZES.len());
    }

    #[test]
    fn experiment_table_has_one_row_per_size() {
        let Artifact::Table(t) = EditRerun.run_on(BackendChoice::Sim) else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), SIZES.len());
        for row in &t.rows {
            let hits: u64 = row[5].parse().unwrap();
            assert!(hits > 0, "row {row:?} never hit the cache");
        }
    }
}
