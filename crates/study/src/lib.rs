//! # scriptflow-study
//!
//! The concrete experiment suite: one module per paper artifact, plus
//! ablations for the design choices DESIGN.md calls out.
//!
//! Every experiment implements [`scriptflow_core::Experiment`]: it runs
//! deterministically against the calibrated task implementations and
//! returns the same table/figure the paper printed, side-by-side with
//! the paper's own numbers ([`anchors`]).
//!
//! `registry()` assembles the full suite in paper order; the bench crate
//! and the `repro` binary drive it.

#![warn(missing_docs)]

pub mod ablate;
pub mod anchors;
pub mod conclusions;
pub mod fault_tolerance;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod incremental;
pub mod observability;
pub mod report;
pub mod sensitivity;
pub mod service;
pub mod spill;
pub mod table1;

use scriptflow_core::{BackendKind, Registry};

/// Label used for the script paradigm series (the paper's legend).
pub const SCRIPT_LABEL: &str = "Jupyter Notebook";
/// Label used for the workflow paradigm series.
pub const WORKFLOW_LABEL: &str = "Texera";

/// Per-backend workflow series/row label for backend-aware reports,
/// e.g. `"Texera (live, wall-clock s)"`. The script paradigm is always
/// simulated, so only the workflow side fans out per backend.
pub fn backend_workflow_label(kind: BackendKind) -> String {
    format!("{WORKFLOW_LABEL} ({}, {})", kind.label(), kind.time_unit())
}

/// The full experiment suite, in the paper's order.
pub fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(fig12::Fig12a));
    r.register(Box::new(fig12::Fig12b));
    r.register(Box::new(table1::Table1));
    r.register(Box::new(fig13::Fig13a));
    r.register(Box::new(fig13::Fig13b));
    r.register(Box::new(fig13::Fig13c));
    r.register(Box::new(fig13::Fig13d));
    r.register(Box::new(fig14::Fig14a));
    r.register(Box::new(fig14::Fig14b));
    r.register(Box::new(fig14::Fig14c));
    r
}

/// The observability suite (§III-A, qualitative paradigm comparison
/// quantified on this reproduction's engines; not a numbered artifact).
pub fn observability_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(observability::ObsComparison));
    r
}

/// The fault-tolerance suite (§III-A, accountability under injected
/// failure, measured on this reproduction's engines; not a numbered
/// artifact).
pub fn fault_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(fault_tolerance::FaultComparison));
    r
}

/// The multi-tenant service suite (§I, the shared-deployment story
/// quantified on this reproduction's workflow service; not a numbered
/// artifact).
pub fn service_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(service::ServiceIsolation));
    r
}

/// The bounded-memory suite (engine extension of Fig. 13c: scaling past
/// RAM by spilling blocking state to the compressed block store; not a
/// numbered artifact, so it stays out of [`registry`]).
pub fn spill_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(spill::Fig13Spill));
    r
}

/// The incremental re-execution suite (engine extension of §III-B's
/// edit-and-rerun affordance: fingerprinted operator memoization; not a
/// numbered artifact, so it stays out of [`registry`]).
pub fn incremental_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(incremental::EditRerun));
    r.register(Box::new(incremental::EditLoop));
    r
}

/// The ablation suite (not paper artifacts; they explain them).
pub fn ablation_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(ablate::PipeliningAblation));
    r.register(Box::new(ablate::SerdeAblation));
    r.register(Box::new(ablate::ObjectStoreAblation));
    r.register(Box::new(ablate::LanguageSweep));
    r.register(Box::new(ablate::ActorExtension));
    r.register(Box::new(ablate::ColumnarAblation));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_ten_paper_artifacts() {
        let r = registry();
        assert_eq!(r.experiments().len(), 10);
        for id in [
            "fig12a", "fig12b", "table1", "fig13a", "fig13b", "fig13c", "fig13d", "fig14a",
            "fig14b", "fig14c",
        ] {
            assert!(r.by_id(id).is_some(), "missing experiment {id}");
        }
    }

    #[test]
    fn ablation_registry_is_populated() {
        assert_eq!(ablation_registry().experiments().len(), 6);
    }

    #[test]
    fn observability_registry_is_populated() {
        let r = observability_registry();
        assert_eq!(r.experiments().len(), 1);
        assert!(r.by_id("obs").is_some());
    }

    #[test]
    fn fault_registry_is_populated() {
        let r = fault_registry();
        assert_eq!(r.experiments().len(), 1);
        assert!(r.by_id("fault").is_some());
    }

    #[test]
    fn service_registry_is_populated() {
        let r = service_registry();
        assert_eq!(r.experiments().len(), 1);
        assert!(r.by_id("service").is_some());
    }

    #[test]
    fn spill_registry_is_populated() {
        let r = spill_registry();
        assert_eq!(r.experiments().len(), 1);
        assert!(r.by_id("fig13-spill").is_some());
    }

    #[test]
    fn incremental_registry_is_populated() {
        let r = incremental_registry();
        assert_eq!(r.experiments().len(), 2);
        assert!(r.by_id("edit-rerun").is_some());
        assert!(r.by_id("edit-loop").is_some());
    }
}
