//! Paradigm observability comparison (§III-A).
//!
//! The paper's central GUI-paradigm claim is about *visibility*: Texera
//! "utilizes different colors to visually represent the status of each
//! operator … and provides information about the amount of data being
//! processed by each operator", while the script paradigm reports
//! progress and failures at the granularity of a whole cell. This
//! module measures that contrast on the reproduction's own engines:
//!
//! * the workflow engine emits a [`scriptflow_workflow::ProgressTrace`]
//!   — per-operator states and tuple counts sampled over the run;
//! * the notebook kernel records one [`scriptflow_notebook::CellSpan`]
//!   per executed cell, and the embedded Ray runtime records one
//!   [`scriptflow_raysim::SpanEvent`] per stage barrier or object-store
//!   transfer — nothing finer exists to observe.

use std::time::Duration;

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Table,
};
use scriptflow_notebook::{Cell, Kernel, Notebook};
use scriptflow_raysim::RayTask;
use scriptflow_simcluster::SimDuration;
use scriptflow_tasks::dice::{self, workflow::build_dice_workflow, DiceParams};
use scriptflow_workflow::{ExecBackend, LiveExecutor, SimExecutor};

use crate::{backend_workflow_label, SCRIPT_LABEL, WORKFLOW_LABEL};

/// What one paradigm exposes about a running DICE-sized job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationReport {
    /// The paradigm's unit of progress ("operator" or "cell").
    pub unit: &'static str,
    /// How many such units the run tracked.
    pub units: usize,
    /// Total observability events recorded over the run (trace snapshot
    /// points for the workflow; cell + runtime spans for the script).
    pub events: usize,
    /// Where a failure would surface.
    pub failure_granularity: &'static str,
}

/// Observe a DICE workflow run: simulate the DAG with progress tracing
/// enabled and count what the GUI would have had to display.
pub fn observe_workflow(params: &DiceParams, cal: &Calibration) -> ObservationReport {
    observe_workflow_on(params, cal, BackendKind::Sim)
}

/// [`observe_workflow`] on an explicit backend: the simulator samples
/// its virtual clock every 100 ms of simulated time, the live pooled
/// executor samples its wall clock every millisecond. Either way the
/// run ends with a terminal trace sample, so `events` is never zero.
pub fn observe_workflow_on(
    params: &DiceParams,
    cal: &Calibration,
    kind: BackendKind,
) -> ObservationReport {
    let (wf, _handle) = build_dice_workflow(params, cal).expect("DICE workflow builds");
    let cfg = dice::workflow::engine_config(cal);
    let backend = match kind {
        BackendKind::Sim => {
            ExecBackend::from_sim(SimExecutor::new(cfg).with_trace(SimDuration::from_millis(100)))
        }
        BackendKind::Live => ExecBackend::from_live(
            LiveExecutor::new(cfg.batch_size.max(1)).with_trace(Duration::from_millis(1)),
        ),
    };
    let res = backend.run_detached(&wf).expect("DICE workflow runs");
    let operators = res.metrics.operators.len();
    ObservationReport {
        unit: "operator",
        units: operators,
        events: res.trace.len() * operators,
        failure_granularity: "operator state (Failed)",
    }
}

/// Observe a DICE-shaped notebook run: three cells (load, parse on Ray,
/// count), then read back every span the paradigm recorded.
pub fn observe_script() -> ObservationReport {
    let mut nb = Notebook::new("dice-script");
    nb.push(
        Cell::new("load", "ann, txt = load_files()", |k| {
            k.advance(SimDuration::from_millis(50));
            k.set("files", 40usize);
            Ok(())
        })
        .writes(&["files"]),
    );
    nb.push(
        Cell::new(
            "parse",
            "spans = ray.get([parse.remote(c) for c in chunks])",
            |k| {
                let files = *k.get::<usize>("files")?;
                let parsed = k.ray().parallel_map(
                    (0..4usize)
                        .map(|i| {
                            RayTask::new(
                                format!("parse{i}"),
                                SimDuration::from_millis(20),
                                move |_| Ok(i),
                            )
                        })
                        .collect::<Vec<_>>(),
                )?;
                k.set("parsed", files + parsed.len());
                Ok(())
            },
        )
        .reads(&["files"])
        .writes(&["parsed"]),
    );
    nb.push(
        Cell::new("count", "stats = count(parsed)", |k| {
            let _ = *k.get::<usize>("parsed")?;
            k.advance(SimDuration::from_millis(10));
            k.set("stats", 1usize);
            Ok(())
        })
        .reads(&["parsed"])
        .writes(&["stats"]),
    );

    let mut kernel = Kernel::paper_default();
    nb.run_all(&mut kernel).expect("script notebook runs");
    let cell_spans = kernel.cell_spans().len();
    let ray_spans = kernel.ray().spans().len();
    ObservationReport {
        unit: "cell",
        units: nb.len(),
        events: cell_spans + ray_spans,
        failure_granularity: "cell trace (In [n])",
    }
}

/// The observability comparison as a study experiment: one table row per
/// paradigm, counted from real runs of the reproduction's engines.
pub struct ObsComparison;

const COLUMNS: [&str; 5] = [
    "paradigm",
    "progress unit",
    "units tracked",
    "events recorded",
    "failure surfaced at",
];

impl Experiment for ObsComparison {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "obs",
            paper_artifact: "§III-A",
            description: "Observability: per-operator trace vs cell/stage spans",
        }
    }

    fn run(&self) -> Artifact {
        let cal = Calibration::paper();
        let wf = observe_workflow(&DiceParams::new(40, 2), &cal);
        let sc = observe_script();
        let mut t = Table::new("§III-A — paradigm observability", &COLUMNS);
        for (label, r) in [(WORKFLOW_LABEL, &wf), (SCRIPT_LABEL, &sc)] {
            t.push_row(vec![
                label.to_owned(),
                r.unit.to_owned(),
                r.units.to_string(),
                r.events.to_string(),
                r.failure_granularity.to_owned(),
            ]);
        }
        Artifact::Table(t)
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let cal = Calibration::paper();
        let mut t = Table::new(
            format!("§III-A — paradigm observability [backend: {backend}]"),
            &COLUMNS,
        );
        for kind in backend.kinds() {
            let r = observe_workflow_on(&DiceParams::new(40, 2), &cal, *kind);
            t.push_row(vec![
                backend_workflow_label(*kind),
                r.unit.to_owned(),
                r.units.to_string(),
                r.events.to_string(),
                r.failure_granularity.to_owned(),
            ]);
        }
        let sc = observe_script();
        t.push_row(vec![
            SCRIPT_LABEL.to_owned(),
            sc.unit.to_owned(),
            sc.units.to_string(),
            sc.events.to_string(),
            sc.failure_granularity.to_owned(),
        ]);
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("§III-A — paradigm observability (paper)", &COLUMNS);
        t.push_row(vec![
            WORKFLOW_LABEL.to_owned(),
            "operator".to_owned(),
            "every operator".to_owned(),
            "status colors + tuple counts, continuously".to_owned(),
            "operator state (Failed)".to_owned(),
        ]);
        t.push_row(vec![
            SCRIPT_LABEL.to_owned(),
            "cell".to_owned(),
            "current cell only".to_owned(),
            "execution counter + cell output".to_owned(),
            "cell trace (In [n])".to_owned(),
        ]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_observation_covers_every_operator() {
        let r = observe_workflow(&DiceParams::new(20, 2), &Calibration::paper());
        assert_eq!(r.unit, "operator");
        assert!(r.units >= 5, "DICE has a multi-operator DAG: {r:?}");
        // At least the final trace sample covers all operators.
        assert!(r.events >= r.units, "{r:?}");
    }

    #[test]
    fn live_observation_also_covers_every_operator() {
        let r = observe_workflow_on(
            &DiceParams::new(20, 2),
            &Calibration::paper(),
            BackendKind::Live,
        );
        assert_eq!(r.unit, "operator");
        assert!(r.units >= 5, "live DICE run tracks the full DAG: {r:?}");
        assert!(r.events >= r.units, "{r:?}");
    }

    #[test]
    fn script_observation_is_cell_and_stage_grained() {
        let r = observe_script();
        assert_eq!(r.unit, "cell");
        assert_eq!(r.units, 3);
        // 3 cell spans + at least the parse stage's runtime span.
        assert!(r.events >= 4, "{r:?}");
    }

    #[test]
    fn comparison_experiment_produces_two_rows() {
        let Artifact::Table(t) = ObsComparison.run() else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], WORKFLOW_LABEL);
        assert_eq!(t.rows[1][0], SCRIPT_LABEL);
        // The workflow paradigm records strictly more observability
        // events than the script paradigm on the same task shape.
        let wf_events: usize = t.rows[0][3].parse().unwrap();
        let sc_events: usize = t.rows[1][3].parse().unwrap();
        assert!(wf_events > sc_events, "{wf_events} vs {sc_events}");
    }
}
