//! Sensitivity analysis: do the paper's qualitative findings survive
//! perturbation of the calibrated constants?
//!
//! The reproduction's absolute seconds depend on fitted constants; its
//! *claims* should not. This module perturbs each load-bearing constant
//! by ±25% and re-checks the four headline winners:
//!
//! 1. Texera wins DICE (pipelining),
//! 2. Texera wins GOTTA (no per-task store tax + unrestricted kernel),
//! 3. the notebook wins KGE (serde overhead),
//! 4. Scala beats Python on the KGE join swap.
//!
//! A claim that flips under a small perturbation would mean the result
//! was an artifact of tuning rather than of the modelled mechanisms.

use scriptflow_core::{Calibration, Table};
use scriptflow_simcluster::Language;
use scriptflow_tasks::dice::{self, DiceParams};
use scriptflow_tasks::gotta::{self, GottaParams};
use scriptflow_tasks::kge::{self, KgeParams};

/// Which constant a perturbation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// DICE: workflow parse operator per-annotation cost.
    DiceParse,
    /// GOTTA: per-question generation work.
    GottaWork,
    /// KGE: workflow scoring per-product cost.
    KgeScore,
    /// Engine: per-tuple serde cost at operator boundaries.
    SerdePerTuple,
    /// Table I: the pandas join warm-up.
    JoinWarmup,
    /// GOTTA: the model size in the object store.
    ModelBytes,
}

impl Knob {
    /// All perturbable knobs.
    pub const ALL: [Knob; 6] = [
        Knob::DiceParse,
        Knob::GottaWork,
        Knob::KgeScore,
        Knob::SerdePerTuple,
        Knob::JoinWarmup,
        Knob::ModelBytes,
    ];

    fn label(&self) -> &'static str {
        match self {
            Knob::DiceParse => "dice_wf_parse_per_annotation",
            Knob::GottaWork => "gotta_work_per_question",
            Knob::KgeScore => "kge_wf_score_per_product",
            Knob::SerdePerTuple => "wf_serde_per_tuple",
            Knob::JoinWarmup => "kge_py_join_warmup",
            Knob::ModelBytes => "gotta_model_bytes",
        }
    }

    fn apply(&self, cal: &mut Calibration, factor: f64) {
        match self {
            Knob::DiceParse => {
                cal.dice_wf_parse_per_annotation = cal.dice_wf_parse_per_annotation.scale(factor)
            }
            Knob::GottaWork => {
                cal.gotta_work_per_question = cal.gotta_work_per_question.scale(factor)
            }
            Knob::KgeScore => {
                cal.kge_wf_score_per_product = cal.kge_wf_score_per_product.scale(factor)
            }
            Knob::SerdePerTuple => cal.wf_serde_per_tuple = cal.wf_serde_per_tuple.scale(factor),
            Knob::JoinWarmup => cal.kge_py_join_warmup = cal.kge_py_join_warmup.scale(factor),
            Knob::ModelBytes => {
                cal.gotta_model_bytes = (cal.gotta_model_bytes as f64 * factor) as u64
            }
        }
    }
}

/// Outcome of the four headline checks under one perturbed calibration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The perturbed knob.
    pub knob: Knob,
    /// The multiplicative factor applied.
    pub factor: f64,
    /// Texera wins DICE.
    pub dice_workflow_wins: bool,
    /// Texera wins GOTTA.
    pub gotta_workflow_wins: bool,
    /// The notebook wins KGE.
    pub kge_script_wins: bool,
    /// Scala beats Python on the join swap.
    pub scala_wins: bool,
}

impl Outcome {
    /// True when every headline claim held.
    pub fn all_hold(&self) -> bool {
        self.dice_workflow_wins
            && self.gotta_workflow_wins
            && self.kge_script_wins
            && self.scala_wins
    }
}

/// Check the four headline claims under `cal` (small inputs: the claims
/// are scale-stable, the checks need not be slow).
pub fn check(cal: &Calibration) -> (bool, bool, bool, bool) {
    let dice = {
        let p = DiceParams::new(30, 1);
        let s = dice::script::run_script(&p, cal)
            .expect("dice script")
            .seconds();
        let w = dice::workflow::run_workflow(&p, cal)
            .expect("dice workflow")
            .seconds();
        w < s
    };
    let gotta = {
        let p = GottaParams::new(4, 1);
        let s = gotta::script::run_script(&p, cal)
            .expect("gotta script")
            .seconds();
        let w = gotta::workflow::run_workflow(&p, cal)
            .expect("gotta workflow")
            .seconds();
        w < s
    };
    let kge = {
        let p = KgeParams::new(3_000, 1).with_fusion(3);
        let s = kge::script::run_script(&p, cal)
            .expect("kge script")
            .seconds();
        let w = kge::workflow::run_workflow(&p, cal)
            .expect("kge workflow")
            .seconds();
        s < w
    };
    let scala = {
        let py = kge::workflow::run_workflow(
            &KgeParams::new(3_000, 1).with_fusion(3).with_pandas_join(),
            cal,
        )
        .expect("python join")
        .seconds();
        let sc = kge::workflow::run_workflow(
            &KgeParams::new(3_000, 1)
                .with_fusion(3)
                .with_join_language(Language::Scala),
            cal,
        )
        .expect("scala join")
        .seconds();
        sc < py
    };
    (dice, gotta, kge, scala)
}

/// Sweep every knob by the given factors.
pub fn sweep(factors: &[f64]) -> Vec<Outcome> {
    let mut outcomes = Vec::new();
    for knob in Knob::ALL {
        for &factor in factors {
            let mut cal = Calibration::paper();
            knob.apply(&mut cal, factor);
            let (dice, gotta, kge, scala) = check(&cal);
            outcomes.push(Outcome {
                knob,
                factor,
                dice_workflow_wins: dice,
                gotta_workflow_wins: gotta,
                kge_script_wins: kge,
                scala_wins: scala,
            });
        }
    }
    outcomes
}

/// Render outcomes as a table.
pub fn as_table(outcomes: &[Outcome]) -> Table {
    let mut t = Table::new(
        "Sensitivity of the headline claims to calibration (±25%)",
        &["knob", "factor", "DICE", "GOTTA", "KGE", "Scala"],
    );
    let tick = |b: bool| if b { "✓" } else { "✗" }.to_owned();
    for o in outcomes {
        t.push_row(vec![
            o.knob.label().to_owned(),
            format!("{:.2}", o.factor),
            tick(o.dice_workflow_wins),
            tick(o.gotta_workflow_wins),
            tick(o.kge_script_wins),
            tick(o.scala_wins),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_are_robust_to_25_percent_perturbation() {
        for o in sweep(&[0.75, 1.25]) {
            assert!(
                o.all_hold(),
                "claims flipped under {} × {:.2}: {o:?}",
                o.knob.label(),
                o.factor
            );
        }
    }

    #[test]
    fn baseline_calibration_passes_all_checks() {
        let (a, b, c, d) = check(&Calibration::paper());
        assert!(a && b && c && d);
    }

    #[test]
    fn table_renders_every_outcome() {
        let outcomes = sweep(&[1.0]);
        let t = as_table(&outcomes);
        assert_eq!(t.rows.len(), Knob::ALL.len());
    }
}
