//! Multi-tenant isolation study (§I, the shared Texera deployment).
//!
//! The GUI paradigm's deployment story is a *service*: one cluster,
//! many users, each clicking "run" on their own workflow without
//! coordinating with anyone else. The claim worth measuring is
//! isolation — a neighbor's broken workflow (a fault storm, a retry
//! loop) must not change what *your* run computes, and overload must be
//! an explicit answer rather than a silent stall. This module stages
//! exactly that on [`scriptflow_workflow::service::WorkflowService`]:
//! a noisy tenant running a seeded fault + retry storm, a quiet tenant
//! running a clean pipeline on the same two worker threads, and an
//! overload probe that must be turned away with a named reason.

use std::sync::Arc;
use std::time::Duration;

use scriptflow_core::{Artifact, Experiment, ExperimentMeta, Table};
use scriptflow_datakit::{Batch, DataType, Schema, Value};
use scriptflow_workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow_workflow::service::{
    RunOptions, ServiceConfig, SubmitError, TenantQuota, WorkflowService,
};
use scriptflow_workflow::{
    Backoff, FaultPlan, LiveExecutor, PartitionStrategy, RetryConfig, RetryPolicy, Workflow,
    WorkflowBuilder,
};

/// Rows each tenant's pipeline scans.
const ROWS: i64 = 4_096;
/// Seed for the noisy tenant's fault plan.
const SEED: u64 = 7;
/// 1-based tuple at which the noisy tenant's filter panics.
const FAULT_AT: u64 = 512;

/// What one tenant of the shared service can report after its run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name as admitted by the service.
    pub tenant: &'static str,
    /// What the tenant submitted.
    pub workload: &'static str,
    /// Run outcome ("completed" / "failed: …" / "rejected: …").
    pub outcome: String,
    /// Rows delivered to the tenant's sink.
    pub rows: u64,
    /// Rows the same DAG delivers on a solo executor (the anchor).
    pub rows_solo: u64,
}

/// scan → filter(even) → sink with a fresh sink per build.
fn tenant_pipeline(name_prefix: &str) -> (Workflow, SinkHandle) {
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(schema, (0..ROWS).map(|i| vec![Value::Int(i)]).collect())
        .expect("schema matches rows");
    let mut b = WorkflowBuilder::new();
    let scan = b.add(
        Arc::new(ScanOp::new(format!("{name_prefix}-scan"), batch)),
        1,
    );
    let filter = b.add(
        Arc::new(FilterOp::new(format!("{name_prefix}-filter"), |t| {
            Ok(t.get_int("id")? % 2 == 0)
        })),
        2,
    );
    let sink_op = Arc::new(SinkOp::new(format!("{name_prefix}-sink")));
    let handle = sink_op.handle();
    let sink = b.add(sink_op, 1);
    b.connect(scan, filter, 0, PartitionStrategy::RoundRobin);
    b.connect(filter, sink, 0, PartitionStrategy::Single);
    (b.build().expect("tenant pipeline is a valid DAG"), handle)
}

/// Stage the isolation scenario: one 2-thread service, a noisy tenant
/// whose filter panics mid-run under a retry budget (the storm), a
/// quiet tenant running clean, and an over-quota probe. Deterministic:
/// the fault is seeded, the retry budget absorbs it, and both tenants'
/// row multisets are fixed by the DAGs.
pub fn observe_isolation() -> (TenantReport, TenantReport, String) {
    // Solo anchors first — what each DAG computes with the pool to
    // itself.
    let (solo_wf, solo_sink) = tenant_pipeline("quiet");
    LiveExecutor::new(64)
        .with_pool_size(2)
        .run(&solo_wf)
        .expect("solo anchor runs");
    let quiet_solo = solo_sink.len() as u64;

    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(2)
            .with_max_active_runs(2)
            .with_default_quota(TenantQuota::default().with_max_in_flight(1)),
    );

    // The benign slow edge keeps the noisy run deterministically in
    // flight while the over-quota probe below is attempted; the panic
    // plus the retry budget is the storm itself.
    let (noisy_wf, noisy_sink) = tenant_pipeline("noisy");
    let storm = FaultPlan::new(SEED)
        .panic_at("noisy-filter", FAULT_AT)
        .slow_edge("noisy-filter", 500);
    let retry = RetryConfig::uniform(RetryPolicy::attempts(3).with_backoff(Backoff {
        base: Duration::from_millis(2),
        factor: 2,
        cap: Duration::from_millis(8),
    }));
    let noisy_run = svc
        .submit(
            "noisy",
            &noisy_wf,
            RunOptions::default().with_faults(storm).with_retry(retry),
        )
        .expect("noisy tenant admitted");

    let (quiet_wf, quiet_sink) = tenant_pipeline("quiet");
    let quiet_run = svc
        .submit("quiet", &quiet_wf, RunOptions::default())
        .expect("quiet tenant admitted");

    // The noisy tenant is at its in-flight quota of 1: its second
    // submission is the overload probe and must be rejected by name.
    let (probe_wf, _probe_sink) = tenant_pipeline("probe");
    let probe = match svc.submit("noisy", &probe_wf, RunOptions::default()) {
        Err(e @ SubmitError::TenantOverQuota { .. }) => format!("rejected: {e}"),
        other => format!("NOT rejected: {other:?}"),
    };

    let quiet_report = quiet_run.wait();
    let quiet = TenantReport {
        tenant: "quiet",
        workload: "clean scan→filter→sink",
        outcome: match &quiet_report.result {
            Ok(_) => "completed".into(),
            Err(e) => format!("failed: {e}"),
        },
        rows: quiet_sink.len() as u64,
        rows_solo: quiet_solo,
    };

    let noisy_report = noisy_run.wait();
    let noisy = TenantReport {
        tenant: "noisy",
        workload: "same DAG + seeded panic@512 + retry budget",
        outcome: match &noisy_report.result {
            Ok(_) => "completed (storm absorbed by retry)".into(),
            Err(e) => format!("failed: {e}"),
        },
        rows: noisy_sink.len() as u64,
        // The retry budget replays the faulted quantum exactly once,
        // so the storm changes nothing about what the DAG computes.
        rows_solo: quiet_solo,
    };

    (noisy, quiet, probe)
}

/// The multi-tenant isolation scenario as a study experiment: one row
/// per tenant plus the overload probe, all deterministic.
pub struct ServiceIsolation;

const COLUMNS: [&str; 5] = [
    "tenant",
    "workload",
    "outcome",
    "rows delivered",
    "rows solo",
];

impl Experiment for ServiceIsolation {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "service",
            paper_artifact: "§I (shared deployment)",
            description: "Multi-tenant isolation: a neighbor's fault+retry storm on the shared \
                          pool changes nothing about what a quiet tenant computes",
        }
    }

    fn run(&self) -> Artifact {
        let (noisy, quiet, probe) = observe_isolation();
        let mut t = Table::new("shared service — tenant isolation", &COLUMNS);
        for r in [&quiet, &noisy] {
            t.push_row(vec![
                r.tenant.to_owned(),
                r.workload.to_owned(),
                r.outcome.clone(),
                r.rows.to_string(),
                r.rows_solo.to_string(),
            ]);
        }
        t.push_row(vec![
            "noisy (2nd run)".to_owned(),
            "over-quota probe".to_owned(),
            probe,
            "0".to_owned(),
            "-".to_owned(),
        ]);
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("shared service — tenant isolation (paper)", &COLUMNS);
        t.push_row(vec![
            "any user".to_owned(),
            "own workflow on the shared cluster".to_owned(),
            "unaffected by neighbors".to_owned(),
            "same as running alone".to_owned(),
            "same as running alone".to_owned(),
        ]);
        t.push_row(vec![
            "over capacity".to_owned(),
            "one more concurrent run".to_owned(),
            "explicit admission control".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
        ]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_tenant_is_isolated_from_the_storm() {
        let (noisy, quiet, probe) = observe_isolation();
        assert_eq!(quiet.outcome, "completed");
        assert_eq!(quiet.rows, quiet.rows_solo, "{quiet:?}");
        assert_eq!(quiet.rows, (ROWS / 2) as u64);
        // The retry budget absorbs the storm: the noisy tenant also
        // delivers its full row count, exactly once.
        assert_eq!(noisy.rows, noisy.rows_solo, "{noisy:?}");
        assert!(noisy.outcome.starts_with("completed"), "{noisy:?}");
        assert!(probe.starts_with("rejected:"), "{probe}");
    }

    #[test]
    fn isolation_report_is_deterministic() {
        assert_eq!(observe_isolation(), observe_isolation());
    }

    #[test]
    fn experiment_table_has_tenant_rows_and_probe() {
        let Artifact::Table(t) = ServiceIsolation.run() else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "quiet");
        assert_eq!(t.rows[1][0], "noisy");
        assert_eq!(t.rows[0][3], t.rows[0][4], "quiet rows match solo");
        assert!(t.rows[2][2].starts_with("rejected:"));
    }
}
