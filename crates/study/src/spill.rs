//! Bounded-memory extension of Fig. 13c (engine extension, not a paper
//! artifact).
//!
//! The paper scales each task until the workstation runs out of
//! patience, not memory — every Fig. 13 point still fits in RAM. This
//! experiment asks the next question: what happens to the workflow
//! paradigm's scaling story once the blocking state (the KGE hash-join
//! build side) no longer fits? We re-run the KGE scaling sweep one
//! dataset size past the paper's largest, twice per size: once
//! unbounded (the paper's configuration, byte-identical results) and
//! once under a deliberately tiny per-operator memory budget that
//! forces the grace hash join to seal its build partitions into the
//! compressed block store and stream them back during probe. The table
//! reports the spill volume and the slowdown ("amplification") the
//! budget costs — the price of bounded memory.

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Table,
};
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{self, KgeParams};

/// Per-operator memory budget (bytes) for the budgeted leg: far below
/// the KGE build side's footprint at every measured size, so every size
/// spills.
pub const SPILL_BUDGET: usize = 16 << 10;

/// The paper's largest KGE size (Fig. 13c) and the extension sizes this
/// experiment adds beyond it.
pub const SIZES: [usize; 3] = [6_800, 68_000, 136_000];

/// One (size, backend) observation: the unbounded/budgeted pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillObservation {
    /// Products in the KGE input.
    pub products: usize,
    /// Backend that executed both legs.
    pub kind: BackendKind,
    /// Seconds with no memory budget (the paper's configuration).
    pub unbounded_secs: f64,
    /// Seconds under [`SPILL_BUDGET`].
    pub budgeted_secs: f64,
    /// Compressed blocks the budgeted leg spilled (must be non-zero).
    pub spilled_blocks: u64,
    /// Compressed bytes the budgeted leg spilled.
    pub spilled_bytes: u64,
    /// Whether both legs produced identical sorted output rows.
    pub outputs_match: bool,
}

impl SpillObservation {
    /// Slowdown the budget costs: budgeted over unbounded seconds.
    pub fn amplification(&self) -> f64 {
        self.budgeted_secs / self.unbounded_secs.max(1e-9)
    }
}

/// Run the unbounded/budgeted KGE pair at one size on one backend.
///
/// Uses the Scala join pipeline (fusion 3): that configuration routes
/// the embedding join through the engine's standalone [`HashJoinOp`],
/// the operator that grace-partitions under a memory budget. The
/// default fused UDF join keeps its own state and never spills.
///
/// [`HashJoinOp`]: scriptflow_workflow::ops::HashJoinOp
pub fn observe_spill(products: usize, kind: BackendKind) -> SpillObservation {
    let p = KgeParams::new(products, 1)
        .with_fusion(3)
        .with_join_language(Language::Scala);
    let unbounded = kge::workflow::run_workflow_on(&p, &Calibration::paper(), kind)
        .expect("unbounded KGE run");
    let mut cal = Calibration::paper();
    cal.wf_memory_budget = Some(SPILL_BUDGET);
    let budgeted = kge::workflow::run_workflow_on(&p, &cal, kind).expect("budgeted KGE run");
    SpillObservation {
        products,
        kind,
        unbounded_secs: unbounded.seconds(),
        budgeted_secs: budgeted.seconds(),
        spilled_blocks: budgeted.spilled_blocks,
        spilled_bytes: budgeted.spilled_bytes,
        outputs_match: unbounded.run.output == budgeted.run.output,
    }
}

const COLUMNS: [&str; 7] = [
    "products",
    "backend",
    "unbounded (s)",
    "budgeted (s)",
    "spilled blocks",
    "spilled KiB",
    "amplification",
];

fn table_for(backend: BackendChoice, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "KGE scaling past RAM: unbounded vs 16 KiB operator budget",
        &COLUMNS,
    );
    for &products in sizes {
        for kind in backend.kinds() {
            let o = observe_spill(products, *kind);
            assert!(o.outputs_match, "budgeted KGE output diverged: {o:?}");
            t.push_row(vec![
                o.products.to_string(),
                o.kind.label().to_owned(),
                format!("{:.2}", o.unbounded_secs),
                format!("{:.2}", o.budgeted_secs),
                o.spilled_blocks.to_string(),
                format!("{:.1}", o.spilled_bytes as f64 / 1024.0),
                format!("{:.2}x", o.amplification()),
            ]);
        }
    }
    t
}

/// The bounded-memory scaling experiment (`fig13-spill`). Lives in its
/// own [`crate::spill_registry`] because it extends a paper artifact
/// rather than reproducing one.
pub struct Fig13Spill;

impl Experiment for Fig13Spill {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "fig13-spill",
            paper_artifact: "engine extension of Fig. 13c",
            description: "KGE scaling one size past the paper's largest, unbounded vs a tiny \
                          memory budget that spills the join build side to the compressed \
                          block store",
        }
    }

    fn run(&self) -> Artifact {
        Artifact::Table(table_for(BackendChoice::Sim, &SIZES))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        Artifact::Table(table_for(backend, &SIZES))
    }

    fn paper_reference(&self) -> Artifact {
        let mut t = Table::new("no paper artifact (engine extension)", &COLUMNS);
        t.push_row(vec![
            "beyond Fig. 13c".into(),
            "-".into(),
            "in-RAM only".into(),
            "not measured".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        Artifact::Table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small size so the test stays fast; the budget still forces a
    /// spill because it is far below the build side's footprint.
    const TEST_PRODUCTS: usize = 1_700;

    #[test]
    fn budgeted_leg_spills_and_matches_unbounded() {
        let o = observe_spill(TEST_PRODUCTS, BackendKind::Sim);
        assert!(o.outputs_match, "{o:?}");
        assert!(o.spilled_blocks > 0, "budget must force a spill: {o:?}");
        assert!(o.spilled_bytes > 0, "{o:?}");
        // The simulator charges spill I/O on the virtual clock, so the
        // budgeted leg is strictly slower.
        assert!(o.amplification() > 1.0, "{o:?}");
    }

    #[test]
    fn observation_is_deterministic_on_sim() {
        assert_eq!(
            observe_spill(TEST_PRODUCTS, BackendKind::Sim),
            observe_spill(TEST_PRODUCTS, BackendKind::Sim)
        );
    }

    #[test]
    fn experiment_table_has_one_row_per_size() {
        let Artifact::Table(t) = Fig13Spill.run_on(BackendChoice::Sim) else {
            panic!("expected table");
        };
        assert_eq!(t.rows.len(), SIZES.len());
        for row in &t.rows {
            let blocks: u64 = row[4].parse().unwrap();
            assert!(blocks > 0, "row {row:?} did not spill");
        }
    }
}
