//! Experiment #2 — language efficiency (Table I).

use scriptflow_core::{
    Artifact, BackendChoice, BackendKind, Calibration, Experiment, ExperimentMeta, Table,
};
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{self, KgeParams};

use crate::anchors;

/// Table I: KGE execution times with Scala-based vs Python-based join
/// operators at 6.8k and 68k products.
pub struct Table1;

impl Table1 {
    /// Run both variants; returns `(products, scala seconds, python
    /// seconds)` rows.
    pub fn measure() -> Vec<(usize, f64, f64)> {
        Self::measure_on(BackendKind::Sim)
    }

    /// [`Table1::measure`] on an explicit backend: virtual seconds on
    /// the simulator, measured wall-clock on the live executor.
    pub fn measure_on(kind: BackendKind) -> Vec<(usize, f64, f64)> {
        let cal = Calibration::paper();
        [6_800usize, 68_000]
            .into_iter()
            .map(|products| {
                let python = kge::workflow::run_workflow_on(
                    &KgeParams::new(products, 1)
                        .with_fusion(3)
                        .with_pandas_join(),
                    &cal,
                    kind,
                )
                .expect("python workflow")
                .seconds();
                let scala = kge::workflow::run_workflow_on(
                    &KgeParams::new(products, 1)
                        .with_fusion(3)
                        .with_join_language(Language::Scala),
                    &cal,
                    kind,
                )
                .expect("scala workflow")
                .seconds();
                (products, scala, python)
            })
            .collect()
    }
}

fn render(title: &str, rows: &[(usize, f64, f64)]) -> Table {
    let mut t = Table::new(title, &["", "6.8K pairs", "68K pairs"]);
    let find = |n: usize| rows.iter().find(|(p, _, _)| *p == n).expect("row");
    let (_, s_small, p_small) = find(6_800);
    let (_, s_large, p_large) = find(68_000);
    t.push_row(vec![
        "Time for Scala-based operators (s)".into(),
        format!("{s_small:.2}"),
        format!("{s_large:.2}"),
    ]);
    t.push_row(vec![
        "Time for Python-based operators (s)".into(),
        format!("{p_small:.2}"),
        format!("{p_large:.2}"),
    ]);
    t
}

impl Experiment for Table1 {
    fn meta(&self) -> ExperimentMeta {
        ExperimentMeta {
            id: "table1",
            paper_artifact: "Table I",
            description: "KGE with the Python join swapped for nine Scala operators",
        }
    }

    fn run(&self) -> Artifact {
        Artifact::Table(render(
            "TABLE I — KGE execution times, Scala vs Python operators",
            &Self::measure(),
        ))
    }

    fn run_on(&self, backend: BackendChoice) -> Artifact {
        if backend == BackendChoice::Sim {
            return self.run();
        }
        let mut t = Table::new(
            format!(
                "TABLE I — KGE execution times, Scala vs Python operators [backend: {backend}]"
            ),
            &["", "6.8K pairs", "68K pairs"],
        );
        for kind in backend.kinds() {
            let rows = Self::measure_on(*kind);
            let find = |n: usize| rows.iter().find(|(p, _, _)| *p == n).expect("row");
            let (_, s_small, p_small) = find(6_800);
            let (_, s_large, p_large) = find(68_000);
            let suffix = format!("({}, {})", kind.label(), kind.time_unit());
            t.push_row(vec![
                format!("Time for Scala-based operators {suffix}"),
                format!("{s_small:.2}"),
                format!("{s_large:.2}"),
            ]);
            t.push_row(vec![
                format!("Time for Python-based operators {suffix}"),
                format!("{p_small:.2}"),
                format!("{p_large:.2}"),
            ]);
        }
        Artifact::Table(t)
    }

    fn paper_reference(&self) -> Artifact {
        Artifact::Table(render("TABLE I (paper)", &anchors::TABLE1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scala_wins_and_its_advantage_shrinks_with_scale() {
        let rows = Table1::measure();
        let (_, s_small, p_small) = rows[0];
        let (_, s_large, p_large) = rows[1];
        // Scala is faster at both scales…
        assert!(
            s_small < p_small,
            "6.8k: scala {s_small} vs python {p_small}"
        );
        assert!(
            s_large < p_large,
            "68k: scala {s_large} vs python {p_large}"
        );
        // …but the relative advantage shrinks as data grows (the paper's
        // 24.5% → 0.92%).
        let rel_small = p_small / s_small - 1.0;
        let rel_large = p_large / s_large - 1.0;
        assert!(
            rel_large < rel_small,
            "advantage must shrink: {rel_small:.3} -> {rel_large:.3}"
        );
        assert!(
            rel_large < 0.06,
            "large-scale advantage {rel_large} not small"
        );
    }
}
