use scriptflow_core::{BackendKind, Calibration};
use scriptflow_tasks::dice::{
    script::run_script,
    workflow::{run_workflow, run_workflow_on},
    DiceParams,
};

fn main() {
    let cal = Calibration::paper();
    println!("Fig13a (paper JN: 10->14.71, 200->239.54; Tex: 10->10.73, 200->107.83)");
    for pairs in [10, 25, 50, 100, 200] {
        let p = DiceParams::new(pairs, 1);
        let s = run_script(&p, &cal).unwrap().seconds();
        let w = run_workflow(&p, &cal).unwrap().seconds();
        println!("  pairs={pairs:<4} script={s:8.2} workflow={w:8.2}");
    }
    println!("Fig14a @200 pairs (paper JN: 239.54/148.04/85.65; Tex: 107.82/87.13/57.21)");
    for workers in [1, 2, 4] {
        let p = DiceParams::new(200, workers);
        let s = run_script(&p, &cal).unwrap().seconds();
        let w = run_workflow(&p, &cal).unwrap().seconds();
        println!("  workers={workers} script={s:8.2} workflow={w:8.2}");
    }
    let live = run_workflow_on(&DiceParams::new(10, 1), &cal, BackendKind::Live).unwrap();
    println!(
        "live backend @10 pairs: wall-clock={:.3}s rows={}",
        live.wall_clock.unwrap().as_secs_f64(),
        live.run.output.len()
    );
}
