use scriptflow_core::{BackendKind, Calibration};
use scriptflow_tasks::gotta::{
    script::run_script,
    workflow::{run_workflow, run_workflow_on},
    GottaParams,
};
fn main() {
    let cal = Calibration::paper();
    println!("Fig13d (paper JN: 163.22/463.96/1389.93; Tex: 64.14/149.45/460.13)");
    for p in [1, 4, 16] {
        let s = run_script(&GottaParams::new(p, 1), &cal).unwrap().seconds();
        let w = run_workflow(&GottaParams::new(p, 1), &cal).unwrap().seconds();
        println!("  paragraphs={p:<3} script={s:8.2} workflow={w:8.2}");
    }
    println!("Fig14b @4 paragraphs (paper JN: 463.96/234.68/139.66; Tex: 149.45/104.16/83.37)");
    for wk in [1, 2, 4] {
        let s = run_script(&GottaParams::new(4, wk), &cal).unwrap().seconds();
        let w = run_workflow(&GottaParams::new(4, wk), &cal).unwrap().seconds();
        println!("  workers={wk} script={s:8.2} workflow={w:8.2}");
    }
    let live = run_workflow_on(&GottaParams::new(1, 1), &cal, BackendKind::Live).unwrap();
    println!(
        "live backend @1 paragraph: wall-clock={:.3}s rows={}",
        live.wall_clock.unwrap().as_secs_f64(),
        live.run.output.len()
    );
}
