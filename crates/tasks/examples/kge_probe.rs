use scriptflow_core::{BackendKind, Calibration};
use scriptflow_simcluster::Language;
use scriptflow_tasks::kge::{
    script::run_script,
    workflow::{run_workflow, run_workflow_on},
    KgeParams,
};
fn main() {
    let cal = Calibration::paper();
    println!("Fig13c (paper JN: 90.69/975.46; Tex: 135.85/1350.50)");
    for n in [6_800, 68_000] {
        let s = run_script(&KgeParams::new(n, 1), &cal).unwrap().seconds();
        let w3 = run_workflow(&KgeParams::new(n, 1).with_fusion(3), &cal).unwrap().seconds();
        let w4 = run_workflow(&KgeParams::new(n, 1).with_fusion(4), &cal).unwrap().seconds();
        println!("  n={n:<6} script={s:8.2} wf_f3={w3:8.2} wf_f4={w4:8.2}");
    }
    println!("Fig12b @6.8k (paper: 1op=138.97, 5op=114.05, 6op=115.14)");
    for f in 1..=6 {
        let w = run_workflow(&KgeParams::new(6_800, 1).with_fusion(f), &cal).unwrap().seconds();
        println!("  fusion={f} wf={w:8.2}");
    }
    println!("TableI (paper Scala: 98.67/1159.82; Python: 126.28/1170.57)");
    for n in [6_800, 68_000] {
        let py = run_workflow(&KgeParams::new(n, 1).with_fusion(3).with_pandas_join(), &cal).unwrap().seconds();
        let sc = run_workflow(&KgeParams::new(n, 1).with_fusion(3).with_join_language(Language::Scala), &cal).unwrap().seconds();
        println!("  n={n:<6} python={py:8.2} scala={sc:8.2}");
    }
    println!("Fig14c @68k (paper JN: 975.46/459.46/273.89; Tex: 1350.50/618.39/383.58)");
    for wk in [1, 2, 4] {
        let s = run_script(&KgeParams::new(68_000, wk), &cal).unwrap().seconds();
        let w = run_workflow(&KgeParams::new(68_000, wk).with_fusion(3), &cal).unwrap().seconds();
        println!("  workers={wk} script={s:8.2} workflow={w:8.2}");
    }
    let live = run_workflow_on(&KgeParams::new(600, 1), &cal, BackendKind::Live).unwrap();
    println!(
        "live backend @600 products: wall-clock={:.3}s rows={}",
        live.wall_clock.unwrap().as_secs_f64(),
        live.run.output.len()
    );
}
