fn main() {
    use scriptflow_tasks::listing::*;
    for (t, s, w) in [
        ("DICE", dice_script_listing(), dice_workflow_listing()),
        ("WEF", wef_script_listing(), wef_workflow_listing()),
        ("GOTTA", gotta_script_listing(), gotta_workflow_listing()),
        ("KGE", kge_script_listing(), kge_workflow_listing()),
    ] {
        println!("{t}: script {} workflow {}", count_loc(&s), count_loc(&w));
    }
}
