use scriptflow_core::{BackendKind, Calibration};
use scriptflow_tasks::wef::{
    script::run_script,
    workflow::{run_workflow, run_workflow_on},
    WefParams,
};
fn main() {
    let cal = Calibration::paper();
    println!("Fig13b (paper JN: 1285.82/1922.86/2587.94; Tex: 1264.93/1896.01/2525.96)");
    for n in [200, 300, 400] {
        let p = WefParams::new(n);
        let s = run_script(&p, &cal).unwrap().seconds();
        let w = run_workflow(&p, &cal).unwrap().seconds();
        println!("  tweets={n} script={s:9.2} workflow={w:9.2}");
    }
    let live = run_workflow_on(&WefParams::new(80), &cal, BackendKind::Live).unwrap();
    println!(
        "live backend @80 tweets: wall-clock={:.3}s rows={}",
        live.wall_clock.unwrap().as_secs_f64(),
        live.run.output.len()
    );
}
