use scriptflow_core::Calibration;
use scriptflow_tasks::wef::{script::run_script, workflow::run_workflow, WefParams};
fn main() {
    let cal = Calibration::paper();
    println!("Fig13b (paper JN: 1285.82/1922.86/2587.94; Tex: 1264.93/1896.01/2525.96)");
    for n in [200, 300, 400] {
        let p = WefParams::new(n);
        let s = run_script(&p, &cal).unwrap().seconds();
        let w = run_workflow(&p, &cal).unwrap().seconds();
        println!("  tweets={n} script={s:9.2} workflow={w:9.2}");
    }
}
