//! Shared result types for task runs.

use std::time::Duration;

use scriptflow_core::{BackendKind, ExecutionMetrics, Paradigm, RunReport};
use scriptflow_simcluster::SimTime;
use scriptflow_workflow::{EngineRun, PoolStats, ProgressTrace};

/// One task execution: the comparable report plus the real output.
#[derive(Debug, Clone)]
pub struct TaskRun {
    /// The paper-style measurement record.
    pub report: RunReport,
    /// Sorted fingerprint of the task's real output rows. Two paradigm
    /// implementations of the same task on the same input must produce
    /// identical fingerprints.
    pub output: Vec<String>,
}

impl TaskRun {
    /// Assemble a run record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        task: &str,
        paradigm: Paradigm,
        config: String,
        makespan: SimTime,
        parallel_processes: usize,
        lines_of_code: usize,
        operator_count: usize,
        mut output: Vec<String>,
    ) -> Self {
        output.sort_unstable();
        TaskRun {
            report: RunReport {
                task: task.to_owned(),
                paradigm,
                config,
                metrics: ExecutionMetrics {
                    total_seconds: makespan.as_secs_f64(),
                    parallel_processes,
                    lines_of_code,
                    operator_count,
                },
            },
            output,
        }
    }

    /// Seconds the run took (virtual for simulated runs, wall-clock for
    /// live-backend runs).
    pub fn seconds(&self) -> f64 {
        self.report.metrics.total_seconds
    }
}

/// A workflow-paradigm task executed on an explicitly chosen backend:
/// the paradigm-comparison record plus the backend's own observability.
///
/// Produced by each task's `run_workflow_on`; the backend-agnostic
/// `run_workflow` entry points stay sim-only and return the inner
/// [`TaskRun`] unchanged, so paper anchors are untouched.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which backend executed the DAG.
    pub kind: BackendKind,
    /// The paradigm-comparison record; `total_seconds` is on the
    /// backend's own clock ([`BackendKind::time_unit`]).
    pub run: TaskRun,
    /// Measured host time; `None` on the simulator.
    pub wall_clock: Option<Duration>,
    /// Per-operator progress samples; both backends guarantee at least
    /// the terminal sample.
    pub trace: ProgressTrace,
    /// Pool scheduling counters; `Some` only on the pooled live backend.
    pub pool: Option<PoolStats>,
    /// Whole input batches dropped by zone-map checks across the DAG
    /// (0 unless the calibration enables the columnar batch path).
    pub batches_skipped: u64,
    /// Compressed spill blocks written across the DAG (0 unless the
    /// calibration sets a memory budget and a blocking operator
    /// outgrew it).
    pub spilled_blocks: u64,
    /// Compressed bytes across all spilled blocks.
    pub spilled_bytes: u64,
    /// Operators served from the result cache (0 unless the
    /// calibration enables the cache and the run was warm).
    pub cache_hits: u64,
    /// Cacheable operators computed fresh (0 with the cache off).
    pub cache_misses: u64,
    /// Compressed bytes replayed from cached segments.
    pub cache_bytes: u64,
    /// Compressed bytes sealed into the cache by this run.
    pub cache_published: u64,
    /// Entries evicted by the cache's byte budget while this run's
    /// recordings were committed (0 with the cache unbounded).
    pub cache_evictions: u64,
}

impl BackendRun {
    /// Pair a task's comparison record with the engine run that
    /// produced it.
    pub fn from_engine(run: TaskRun, engine: EngineRun) -> Self {
        BackendRun {
            kind: engine.kind,
            run,
            wall_clock: engine.wall_clock,
            trace: engine.trace,
            pool: engine.pool,
            batches_skipped: engine.batches_skipped,
            spilled_blocks: engine.spilled_blocks,
            spilled_bytes: engine.spilled_bytes,
            cache_hits: engine.cache_hits,
            cache_misses: engine.cache_misses,
            cache_bytes: engine.cache_bytes,
            cache_published: engine.cache_published,
            cache_evictions: engine.cache_evictions,
        }
    }

    /// Seconds on the backend's own clock.
    pub fn seconds(&self) -> f64 {
        self.run.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_sorted() {
        let run = TaskRun::new(
            "T",
            Paradigm::Script,
            "c".into(),
            SimTime::from_micros(1_000_000),
            1,
            10,
            1,
            vec!["b".into(), "a".into()],
        );
        assert_eq!(run.output, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(run.seconds(), 1.0);
    }
}
