//! Shared result types for task runs.

use scriptflow_core::{ExecutionMetrics, Paradigm, RunReport};
use scriptflow_simcluster::SimTime;

/// One task execution: the comparable report plus the real output.
#[derive(Debug, Clone)]
pub struct TaskRun {
    /// The paper-style measurement record.
    pub report: RunReport,
    /// Sorted fingerprint of the task's real output rows. Two paradigm
    /// implementations of the same task on the same input must produce
    /// identical fingerprints.
    pub output: Vec<String>,
}

impl TaskRun {
    /// Assemble a run record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        task: &str,
        paradigm: Paradigm,
        config: String,
        makespan: SimTime,
        parallel_processes: usize,
        lines_of_code: usize,
        operator_count: usize,
        mut output: Vec<String>,
    ) -> Self {
        output.sort_unstable();
        TaskRun {
            report: RunReport {
                task: task.to_owned(),
                paradigm,
                config,
                metrics: ExecutionMetrics {
                    total_seconds: makespan.as_secs_f64(),
                    parallel_processes,
                    lines_of_code,
                    operator_count,
                },
            },
            output,
        }
    }

    /// Virtual seconds the run took.
    pub fn seconds(&self) -> f64 {
        self.report.metrics.total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_sorted() {
        let run = TaskRun::new(
            "T",
            Paradigm::Script,
            "c".into(),
            SimTime::from_micros(1_000_000),
            1,
            10,
            1,
            vec!["b".into(), "a".into()],
        );
        assert_eq!(run.output, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(run.seconds(), 1.0);
    }
}
