//! Task 1 — DICE data wrangling (§II-A).
//!
//! Preprocess MACCROBAT-style clinical reports into MACCROBAT-EE: split
//! annotations into entities and events, filter events on trigger
//! resolvability, join triggered events with their trigger entities to
//! recover spans, rejoin the held-out (trigger-less) events, and link
//! every annotation to its containing sentence (Fig. 4 of the paper).
//!
//! Both implementations produce the same output rows; see
//! [`script::run_script`] and [`workflow::run_workflow`].

pub mod script;
pub mod workflow;

use scriptflow_datagen::maccrobat::{AnnotationKind, MaccrobatDataset};

/// Parameters of one DICE run.
#[derive(Debug, Clone)]
pub struct DiceParams {
    /// Number of text/annotation file pairs.
    pub pairs: usize,
    /// Sentences per report (the paper's corpus averages ~8).
    pub sentences_per_report: usize,
    /// Worker count (Ray CPUs / Texera operator parallelism).
    pub workers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl DiceParams {
    /// A run over `pairs` file pairs with `workers` workers.
    pub fn new(pairs: usize, workers: usize) -> Self {
        DiceParams {
            pairs,
            sentences_per_report: 8,
            workers,
            seed: 0xD1CE,
        }
    }

    /// Generate the input dataset for these parameters.
    pub fn dataset(&self) -> MaccrobatDataset {
        MaccrobatDataset::generate(self.pairs, self.sentences_per_report, self.seed)
    }

    /// Human-readable config string for reports.
    pub fn config_string(&self) -> String {
        format!("{} pairs, {} workers", self.pairs, self.workers)
    }
}

/// Canonical fingerprint of one MACCROBAT-EE output row. Both paradigm
/// implementations and the oracle build rows through this single
/// function, so equality checks are byte-exact.
pub fn row_fingerprint(
    doc_id: i64,
    sent_idx: Option<i64>,
    key: &str,
    kind: &str,
    ann_type: &str,
    text: Option<&str>,
    sentence: Option<&str>,
) -> String {
    format!(
        "doc={doc_id}|sent={}|key={key}|kind={kind}|type={ann_type}|text={}|sentence={}",
        sent_idx.map_or("null".to_owned(), |s| s.to_string()),
        text.unwrap_or("null"),
        sentence.unwrap_or("null"),
    )
}

/// Reference implementation: the expected MACCROBAT-EE rows, computed
/// directly on the dataset structures (no engine involved). Tests compare
/// both paradigm outputs against this.
pub fn oracle(dataset: &MaccrobatDataset) -> Vec<String> {
    let mut rows = Vec::new();
    for report in &dataset.reports {
        for a in &report.annotations {
            match a.kind {
                AnnotationKind::Entity => {
                    let sent = report
                        .sentence_of(a.start)
                        .expect("entities always fall inside a sentence");
                    let (s, e) = report.sentences[sent];
                    rows.push(row_fingerprint(
                        report.doc_id,
                        Some(sent as i64),
                        &a.key,
                        "T",
                        &a.ann_type,
                        Some(&a.text),
                        Some(&report.text[s..e]),
                    ));
                }
                AnnotationKind::Event => match &a.trigger {
                    Some(trigger_key) => {
                        let trigger = report
                            .annotations
                            .iter()
                            .find(|t| {
                                t.kind == AnnotationKind::Entity && &t.key == trigger_key
                            })
                            .expect("generator guarantees trigger exists");
                        let sent = report
                            .sentence_of(trigger.start)
                            .expect("trigger falls inside a sentence");
                        let (s, e) = report.sentences[sent];
                        rows.push(row_fingerprint(
                            report.doc_id,
                            Some(sent as i64),
                            &a.key,
                            "E",
                            &a.ann_type,
                            Some(&trigger.text),
                            Some(&report.text[s..e]),
                        ));
                    }
                    None => rows.push(row_fingerprint(
                        report.doc_id,
                        None,
                        &a.key,
                        "E",
                        &a.ann_type,
                        None,
                        None,
                    )),
                },
            }
        }
    }
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_match_annotations() {
        let params = DiceParams::new(6, 1);
        let ds = params.dataset();
        let rows = oracle(&ds);
        assert_eq!(rows.len(), ds.annotation_count());
    }

    #[test]
    fn oracle_links_entities_to_their_sentence() {
        let params = DiceParams::new(3, 1);
        let ds = params.dataset();
        let rows = oracle(&ds);
        // Every entity row names a sentence containing its text.
        for row in rows.iter().filter(|r| r.contains("|kind=T|")) {
            let text = row.split("|text=").nth(1).unwrap().split('|').next().unwrap();
            let sentence = row.split("|sentence=").nth(1).unwrap();
            assert!(
                sentence.contains(text),
                "entity text `{text}` not in its sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn heldout_events_have_null_links() {
        let params = DiceParams {
            pairs: 40,
            ..DiceParams::new(40, 1)
        };
        let rows = oracle(&params.dataset());
        let nulls: Vec<&String> = rows.iter().filter(|r| r.contains("sent=null")).collect();
        assert!(!nulls.is_empty(), "expected some held-out events");
        for r in nulls {
            assert!(r.contains("kind=E"));
            assert!(r.ends_with("sentence=null"));
        }
    }

    #[test]
    fn fingerprint_format() {
        let fp = row_fingerprint(3, Some(1), "T2", "T", "Age", Some("34-yr-old"), Some("s"));
        assert_eq!(
            fp,
            "doc=3|sent=1|key=T2|kind=T|type=Age|text=34-yr-old|sentence=s"
        );
    }
}
