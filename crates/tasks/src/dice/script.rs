//! DICE under the script paradigm: a notebook driving Ray stages.
//!
//! Cell structure mirrors the paper's description of the straightforward
//! script approach (§III-B): load everything, build in-memory hash
//! tables, loop and probe. Scaling out follows the Ray idiom — partition
//! the file pairs, run one remote task per chunk per stage, barrier with
//! `ray.get`.

use std::sync::Arc;

use scriptflow_core::{Calibration, Paradigm};
use scriptflow_datagen::maccrobat::{AnnotationKind, CaseReport, MaccrobatDataset};
use scriptflow_notebook::{Cell, CellError, Kernel, Notebook};
use scriptflow_raysim::{RayConfig, RayTask};
use scriptflow_simcluster::ClusterSpec;

use super::{row_fingerprint, DiceParams};
use crate::common::TaskRun;
use crate::listing;

/// Wrangle one report into its output rows (the real computation each
/// Ray task performs).
fn wrangle_report(report: &CaseReport) -> Vec<String> {
    // Entity hash table: key -> (start, text), the "global annotation
    // table" the paper says the script approach keeps in memory.
    let entities: std::collections::HashMap<&str, (usize, &str)> = report
        .annotations
        .iter()
        .filter(|a| a.kind == AnnotationKind::Entity)
        .map(|a| (a.key.as_str(), (a.start, a.text.as_str())))
        .collect();
    let mut rows = Vec::with_capacity(report.annotations.len());
    for a in &report.annotations {
        match a.kind {
            AnnotationKind::Entity => {
                let sent = report.sentence_of(a.start).expect("entity in sentence");
                let (s, e) = report.sentences[sent];
                rows.push(row_fingerprint(
                    report.doc_id,
                    Some(sent as i64),
                    &a.key,
                    "T",
                    &a.ann_type,
                    Some(&a.text),
                    Some(&report.text[s..e]),
                ));
            }
            AnnotationKind::Event => match a.trigger.as_deref().and_then(|t| entities.get(t)) {
                Some((start, text)) => {
                    let sent = report.sentence_of(*start).expect("trigger in sentence");
                    let (s, e) = report.sentences[sent];
                    rows.push(row_fingerprint(
                        report.doc_id,
                        Some(sent as i64),
                        &a.key,
                        "E",
                        &a.ann_type,
                        Some(text),
                        Some(&report.text[s..e]),
                    ));
                }
                None => rows.push(row_fingerprint(
                    report.doc_id,
                    None,
                    &a.key,
                    "E",
                    &a.ann_type,
                    None,
                    None,
                )),
            },
        }
    }
    rows
}

/// Run DICE as a notebook + Ray job; returns the report and output rows.
pub fn run_script(params: &DiceParams, cal: &Calibration) -> Result<TaskRun, CellError> {
    let dataset = Arc::new(params.dataset());
    let mut kernel = Kernel::new(
        &ClusterSpec::paper_cluster(),
        RayConfig::with_cpus(params.workers),
    );

    let mut nb = Notebook::new("dice");
    // Cell 1: imports + config (driver-side setup).
    {
        let setup = cal.dice_script_setup;
        nb.push(
            Cell::new("setup", listing::dice_script_cell_setup(), move |k| {
                k.advance(setup);
                Ok(())
            })
            .writes(&["config"]),
        );
    }
    // Cell 2: parse the file pairs with one Ray task per chunk.
    {
        let ds = dataset.clone();
        let parse_cost = cal.dice_script_parse_per_pair;
        let workers = params.workers;
        nb.push(
            Cell::new("parse", listing::dice_script_cell_parse(), move |k| {
                let chunks = chunk_docs(ds.reports.len(), workers);
                let ds_ref = k.ray().put(ds.clone(), 2_000_000);
                let tasks: Vec<RayTask<Vec<usize>>> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(i, chunk)| {
                        let work = parse_cost * chunk.len() as u64;
                        RayTask::new(format!("parse_{i}"), work, move |d| {
                            // Parsing validates annotation structure.
                            let ds = d.get(ds_ref)?;
                            for &doc in &chunk {
                                assert!(!ds.reports[doc].annotations.is_empty());
                            }
                            Ok(chunk)
                        })
                        .with_input(ds_ref)
                    })
                    .collect();
                let parsed = k.ray().parallel_map(tasks)?;
                k.set("parsed_chunks", parsed);
                k.set("ds_ref", ds_ref);
                Ok(())
            })
            .reads(&["config"])
            .writes(&["parsed_chunks", "ds_ref"]),
        );
    }
    // Cell 3: wrangle each chunk (filter + join + sentence link).
    {
        let wrangle_cost = cal.dice_script_wrangle_per_pair;
        nb.push(
            Cell::new("wrangle", listing::dice_script_cell_wrangle(), move |k| {
                let chunks = k.get::<Vec<Vec<usize>>>("parsed_chunks")?;
                let ds_ref = *k.get::<scriptflow_raysim::ObjRef<Arc<MaccrobatDataset>>>("ds_ref")?;
                let tasks: Vec<RayTask<Vec<String>>> = chunks
                    .iter()
                    .enumerate()
                    .map(|(i, chunk)| {
                        let chunk = chunk.clone();
                        let work = wrangle_cost * chunk.len() as u64;
                        RayTask::new(format!("wrangle_{i}"), work, move |d| {
                            let ds = d.get(ds_ref)?;
                            let mut rows = Vec::new();
                            for &doc in &chunk {
                                rows.extend(wrangle_report(&ds.reports[doc]));
                            }
                            Ok(rows)
                        })
                        .with_input(ds_ref)
                    })
                    .collect();
                let results = k.ray().parallel_map(tasks)?;
                k.set("wrangled", results);
                Ok(())
            })
            .reads(&["parsed_chunks", "ds_ref"])
            .writes(&["wrangled"]),
        );
    }
    // Cell 4: collect + write out (driver-side, not distributed).
    {
        let collect = cal.dice_script_collect_per_pair;
        let pairs = params.pairs;
        nb.push(
            Cell::new("collect", listing::dice_script_cell_collect(), move |k| {
                let chunks = k.get::<Vec<Vec<String>>>("wrangled")?;
                k.advance(collect * pairs as u64);
                let rows: Vec<String> = chunks.iter().flatten().cloned().collect();
                k.set("maccrobat_ee", rows);
                Ok(())
            })
            .reads(&["wrangled"])
            .writes(&["maccrobat_ee"]),
        );
    }

    nb.run_all(&mut kernel)?;
    let output = (*kernel.get::<Vec<String>>("maccrobat_ee")?).clone();
    let loc = nb.lines_of_code();
    let cells = nb.len();
    Ok(TaskRun::new(
        "DICE",
        Paradigm::Script,
        params.config_string(),
        kernel.now(),
        params.workers,
        loc,
        cells,
        output,
    ))
}

/// Round-robin the doc indices into `workers` chunks.
fn chunk_docs(n_docs: usize, workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for doc in 0..n_docs {
        chunks[doc % workers].push(doc);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dice::oracle;

    #[test]
    fn script_output_matches_oracle() {
        let params = DiceParams::new(8, 2);
        let run = run_script(&params, &Calibration::paper()).unwrap();
        assert_eq!(run.output, oracle(&params.dataset()));
        assert_eq!(run.report.paradigm, Paradigm::Script);
        assert!(run.seconds() > 0.0);
    }

    #[test]
    fn more_workers_are_faster() {
        let cal = Calibration::paper();
        let one = run_script(&DiceParams::new(40, 1), &cal).unwrap();
        let four = run_script(&DiceParams::new(40, 4), &cal).unwrap();
        assert!(four.seconds() < one.seconds());
        // Same data either way.
        assert_eq!(one.output, four.output);
    }

    #[test]
    fn time_scales_roughly_linearly() {
        let cal = Calibration::paper();
        let small = run_script(&DiceParams::new(10, 1), &cal).unwrap();
        let large = run_script(&DiceParams::new(40, 1), &cal).unwrap();
        let ratio = large.seconds() / small.seconds();
        assert!((2.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn chunking_covers_all_docs() {
        let chunks = chunk_docs(10, 3);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert_eq!(chunk_docs(2, 8).len(), 2);
    }
}
