//! DICE under the GUI-workflow paradigm: a 10-operator Texera-style DAG.
//!
//! ```text
//! [Annotations Scan] → [Parse] → [Entities Filter]   ──────────────┐
//!                             ↘ [Triggered Events]→┐               │
//!                             ↘ [Held-out Events] ─┼─(join w/ entities)
//! [Sentences Scan] ──(broadcast)──────────────┐    │               │
//!                                    [Link Sentences] ← [Union] ←──┘
//!                                             ↓
//!                                         [Results]
//! ```
//!
//! Unlike the script version there is no global annotation table: the
//! entity side is explicitly hash-partitioned into the join, and the
//! sentence boundary index is broadcast to every link worker — the exact
//! structural constraint §III-B describes.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_core::{BackendKind, Calibration, Paradigm};
use scriptflow_datakit::{DataType, Schema, Tuple, Value};
use scriptflow_simcluster::ClusterSpec;
use scriptflow_workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp, StatefulUdfOp, UdfOp};
use scriptflow_workflow::{
    CostProfile, EngineConfig, ExecBackend, PartitionStrategy, ResultCache, WorkflowBuilder,
    WorkflowError, WorkflowResult,
};

use super::{row_fingerprint, DiceParams};
use crate::common::{BackendRun, TaskRun};
use crate::listing;

/// The normalized annotation schema flowing into the union/link stage.
fn normalized_schema() -> scriptflow_datakit::SchemaRef {
    Schema::of(&[
        ("doc_id", DataType::Int),
        ("key", DataType::Str),
        ("kind", DataType::Str),
        ("ann_type", DataType::Str),
        ("pos", DataType::Int),
        ("text", DataType::Str),
    ])
}

/// The final MACCROBAT-EE schema.
fn output_schema() -> scriptflow_datakit::SchemaRef {
    Schema::of(&[
        ("doc_id", DataType::Int),
        ("sent_idx", DataType::Int),
        ("key", DataType::Str),
        ("kind", DataType::Str),
        ("ann_type", DataType::Str),
        ("text", DataType::Str),
        ("sentence", DataType::Str),
    ])
}

fn norm_tuple(doc: i64, key: &str, kind: &str, ann_type: &str, pos: Value, text: Value) -> Tuple {
    Tuple::new_unchecked(
        normalized_schema(),
        vec![
            Value::Int(doc),
            Value::Str(key.to_owned()),
            Value::Str(kind.to_owned()),
            Value::Str(ann_type.to_owned()),
            pos,
            text,
        ],
    )
}

/// Build the DICE workflow DAG; returns it with the results handle.
/// Shared by the simulated run and the live-executor integration tests.
pub fn build_dice_workflow(
    params: &DiceParams,
    cal: &Calibration,
) -> WorkflowResult<(
    scriptflow_workflow::Workflow,
    scriptflow_workflow::ops::SinkHandle,
)> {
    let dataset = params.dataset();
    let w = params.workers.max(1);

    let mut b = WorkflowBuilder::new();
    let ann_scan = b.add(
        Arc::new(ScanOp::new("Annotations Scan", dataset.annotation_batch())),
        w,
    );
    let sent_scan = b.add(
        Arc::new(ScanOp::new("Sentences Scan", dataset.sentence_batch())),
        1,
    );

    // Parse: validates raw annotation rows (the heavy per-record step).
    let parse = b.add(
        Arc::new(
            UdfOp::with_schema_fn(
                "Parse Annotations",
                1,
                |inputs| Ok((*inputs[0]).clone()),
                |t, _, out| {
                    out.emit(t);
                    Ok(())
                },
            )
            .with_cost(CostProfile {
                per_tuple: cal.dice_wf_parse_per_annotation,
                ..CostProfile::default()
            }),
        ),
        w,
    );

    // Three-way split.
    let entities = b.add(
        Arc::new(FilterOp::new("Entities", |t| Ok(t.get_str("kind")? == "T"))),
        w,
    );
    let triggered = b.add(
        Arc::new(FilterOp::new("Triggered Events", |t| {
            Ok(t.get_str("kind")? == "E" && !t.get("trigger")?.is_null())
        })),
        w,
    );
    let heldout = b.add(
        Arc::new(FilterOp::new("Held-out Events", |t| {
            Ok(t.get_str("kind")? == "E" && t.get("trigger")?.is_null())
        })),
        w,
    );

    // Join triggered events (probe) with entities (build) on
    // (doc_id, trigger) = (doc_id, key).
    let join = b.add(
        Arc::new(
            HashJoinOp::new(
                "Resolve Triggers",
                &["doc_id", "trigger"],
                &["doc_id", "key"],
            )
            .with_cost(
                CostProfile {
                    per_tuple: cal.dice_wf_join_per_annotation,
                    ..CostProfile::default()
                }
                .with_port_cost(0, scriptflow_simcluster::SimDuration::from_micros(2_000)),
            ),
        ),
        w,
    );

    // Normalizers project each branch to the shared schema.
    let norm_entities = b.add(
        Arc::new(UdfOp::new(
            "Normalize Entities",
            (*normalized_schema()).clone(),
            |t, _, out| {
                out.emit(norm_tuple(
                    t.get_int("doc_id")
                        .map_err(|e| WorkflowError::from_data("Normalize Entities", e))?,
                    t.get_str("key")
                        .map_err(|e| WorkflowError::from_data("Normalize Entities", e))?,
                    "T",
                    t.get_str("ann_type")
                        .map_err(|e| WorkflowError::from_data("Normalize Entities", e))?,
                    t.get("start")
                        .map_err(|e| WorkflowError::from_data("Normalize Entities", e))?
                        .clone(),
                    t.get("text")
                        .map_err(|e| WorkflowError::from_data("Normalize Entities", e))?
                        .clone(),
                ));
                Ok(())
            },
        )),
        w,
    );
    let norm_events = b.add(
        Arc::new(UdfOp::new(
            "Normalize Events",
            (*normalized_schema()).clone(),
            |t, _, out| {
                let ctx = |e| WorkflowError::from_data("Normalize Events", e);
                out.emit(norm_tuple(
                    t.get_int("doc_id").map_err(ctx)?,
                    t.get_str("key").map_err(ctx)?,
                    "E",
                    t.get_str("ann_type").map_err(ctx)?,
                    t.get("start_r").map_err(ctx)?.clone(),
                    t.get("text_r").map_err(ctx)?.clone(),
                ));
                Ok(())
            },
        )),
        w,
    );
    let norm_heldout = b.add(
        Arc::new(UdfOp::new(
            "Normalize Held-out",
            (*normalized_schema()).clone(),
            |t, _, out| {
                let ctx = |e| WorkflowError::from_data("Normalize Held-out", e);
                out.emit(norm_tuple(
                    t.get_int("doc_id").map_err(ctx)?,
                    t.get_str("key").map_err(ctx)?,
                    "E",
                    t.get_str("ann_type").map_err(ctx)?,
                    Value::Null,
                    Value::Null,
                ));
                Ok(())
            },
        )),
        w,
    );

    // Union of the three normalized branches.
    let union = b.add(
        Arc::new(UdfOp::with_schema_fn(
            "Union",
            3,
            |inputs| Ok((*inputs[0]).clone()),
            |t, _, out| {
                out.emit(t);
                Ok(())
            },
        )),
        w,
    );

    // Link with sentences: port 0 (blocking) builds the per-doc boundary
    // index from the broadcast sentence stream; port 1 probes.
    type BoundaryIndex = HashMap<i64, Vec<(i64, i64, i64, String)>>;
    let out_schema_for_link = output_schema();
    let link = b.add(
        Arc::new(
            StatefulUdfOp::new(
                "Link Sentences",
                2,
                (*output_schema()).clone(),
                BoundaryIndex::new,
                move |index: &mut BoundaryIndex, t, port, out| {
                    let ctx = |e| WorkflowError::from_data("Link Sentences", e);
                    if port == 0 {
                        index
                            .entry(t.get_int("doc_id").map_err(ctx)?)
                            .or_default()
                            .push((
                                t.get_int("sent_idx").map_err(ctx)?,
                                t.get_int("start").map_err(ctx)?,
                                t.get_int("end").map_err(ctx)?,
                                t.get_str("sentence").map_err(ctx)?.to_owned(),
                            ));
                        return Ok(());
                    }
                    let doc = t.get_int("doc_id").map_err(ctx)?;
                    let pos = t.get("pos").map_err(ctx)?.as_int();
                    let (sent_idx, sentence) = match pos {
                        Some(p) => {
                            let hit = index
                                .get(&doc)
                                .and_then(|v| v.iter().find(|(_, s, e, _)| *s <= p && p < *e))
                                .ok_or_else(|| WorkflowError::OperatorFailed {
                                    operator: "Link Sentences".into(),
                                    message: format!("no sentence covers doc {doc} pos {p}"),
                                })?;
                            (Value::Int(hit.0), Value::Str(hit.3.clone()))
                        }
                        None => (Value::Null, Value::Null),
                    };
                    out.emit(Tuple::new_unchecked(
                        out_schema_for_link.clone(),
                        vec![
                            Value::Int(doc),
                            sent_idx,
                            t.get("key").map_err(ctx)?.clone(),
                            t.get("kind").map_err(ctx)?.clone(),
                            t.get("ann_type").map_err(ctx)?.clone(),
                            t.get("text").map_err(ctx)?.clone(),
                            sentence,
                        ],
                    ));
                    Ok(())
                },
                |_, _, _| Ok(()),
            )
            .with_blocking_ports(vec![0])
            .with_cost(
                CostProfile {
                    per_tuple: cal.dice_wf_link_probe_per_annotation,
                    ..CostProfile::default()
                }
                .with_port_cost(0, cal.dice_wf_link_build_per_sentence),
            ),
        ),
        w,
    );

    let sink_op = SinkOp::new("Results");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);

    let rr = PartitionStrategy::RoundRobin;
    let by_doc = PartitionStrategy::Hash(vec!["doc_id".into()]);
    b.connect(ann_scan, parse, 0, rr.clone());
    b.connect(parse, entities, 0, rr.clone());
    b.connect(parse, triggered, 0, rr.clone());
    b.connect(parse, heldout, 0, rr.clone());
    b.connect(entities, join, 0, by_doc.clone());
    b.connect(triggered, join, 1, by_doc.clone());
    b.connect(entities, norm_entities, 0, rr.clone());
    b.connect(join, norm_events, 0, rr.clone());
    b.connect(heldout, norm_heldout, 0, rr.clone());
    b.connect(norm_entities, union, 0, rr.clone());
    b.connect(norm_events, union, 1, rr.clone());
    b.connect(norm_heldout, union, 2, rr.clone());
    b.connect(sent_scan, link, 0, PartitionStrategy::Broadcast);
    b.connect(union, link, 1, rr);
    b.connect(link, sink, 0, PartitionStrategy::Single);

    Ok((b.build()?, handle))
}

/// The engine configuration DICE runs under (shared by both backends;
/// only `batch_size` has a live analogue).
pub fn engine_config(cal: &Calibration) -> EngineConfig {
    EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        batch_size: cal.wf_batch_size,
        serde_per_tuple: cal.wf_serde_per_tuple,
        pipelining: cal.wf_pipelining,
        columnar: cal.wf_columnar,
        columnar_discount: cal.wf_columnar_discount,
        memory_budget: cal.wf_memory_budget,
        spill_write_per_block: cal.wf_spill_write_per_block,
        spill_read_per_block: cal.wf_spill_read_per_block,
        // A fresh per-run cache: records and publishes, but never hits.
        // Warm reruns come from `run_workflow_cached`, which shares one
        // cache across invocations.
        result_cache: cal.wf_result_cache.then(|| ResultCache::for_run(cal.wf_cache_byte_budget)),
        cache_read_per_block: cal.wf_cache_read_per_block,
        ..EngineConfig::default()
    }
}

/// Run DICE on the simulated workflow engine.
pub fn run_workflow(params: &DiceParams, cal: &Calibration) -> WorkflowResult<TaskRun> {
    Ok(run_workflow_on(params, cal, BackendKind::Sim)?.run)
}

/// Run DICE on an explicitly chosen execution backend.
pub fn run_workflow_on(
    params: &DiceParams,
    cal: &Calibration,
    kind: BackendKind,
) -> WorkflowResult<BackendRun> {
    run_with_config(params, cal, kind, engine_config(cal))
}

/// Run DICE serving and recording through a shared result cache; warm
/// reruns replay unedited operators from sealed segments.
pub fn run_workflow_cached(
    params: &DiceParams,
    cal: &Calibration,
    kind: BackendKind,
    cache: &Arc<ResultCache>,
) -> WorkflowResult<BackendRun> {
    let config = engine_config(cal).with_result_cache(cache.clone());
    run_with_config(params, cal, kind, config)
}

fn run_with_config(
    params: &DiceParams,
    cal: &Calibration,
    kind: BackendKind,
    config: EngineConfig,
) -> WorkflowResult<BackendRun> {
    let (wf, handle) = build_dice_workflow(params, cal)?;
    let operator_count = wf.operator_count();
    let total_workers = wf.total_workers();

    let engine = ExecBackend::of_kind(kind, config).run(&wf, &handle)?;

    let output: Vec<String> = engine
        .rows
        .iter()
        .map(|t| {
            row_fingerprint(
                t.get_int("doc_id").expect("schema"),
                t.get("sent_idx").expect("schema").as_int(),
                t.get_str("key").expect("schema"),
                t.get_str("kind").expect("schema"),
                t.get_str("ann_type").expect("schema"),
                t.get("text").expect("schema").as_str(),
                t.get("sentence").expect("schema").as_str(),
            )
        })
        .collect();

    let run = TaskRun::new(
        "DICE",
        Paradigm::Workflow,
        params.config_string(),
        engine.makespan,
        total_workers,
        listing::dice_workflow_listing().lines().count(),
        operator_count,
        output,
    );
    Ok(BackendRun::from_engine(run, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dice::oracle;
    use scriptflow_core::Calibration;

    #[test]
    fn workflow_output_matches_oracle() {
        let params = DiceParams::new(6, 2);
        let run = run_workflow(&params, &Calibration::paper()).unwrap();
        assert_eq!(run.output, oracle(&params.dataset()));
        assert_eq!(run.report.paradigm, Paradigm::Workflow);
        assert_eq!(run.report.metrics.operator_count, 13);
    }

    #[test]
    fn workflow_matches_script() {
        let params = DiceParams::new(10, 3);
        let cal = Calibration::paper();
        let wf = run_workflow(&params, &cal).unwrap();
        let sc = crate::dice::script::run_script(&params, &cal).unwrap();
        assert_eq!(wf.output, sc.output);
    }

    #[test]
    fn workflow_beats_script_at_scale_with_one_worker() {
        // Fig. 13a: Texera is faster at every dataset size.
        let cal = Calibration::paper();
        let params = DiceParams::new(25, 1);
        let wf = run_workflow(&params, &cal).unwrap();
        let sc = crate::dice::script::run_script(&params, &cal).unwrap();
        assert!(
            wf.seconds() < sc.seconds(),
            "workflow {} vs script {}",
            wf.seconds(),
            sc.seconds()
        );
    }
}
