//! Task 3 — GOTTA one-step inference (§II-C).
//!
//! Few-shot QA by prompt-based cloze data augmentation: prepare
//! (question, masked answer, paragraph) inputs, run a forward pass of the
//! fine-tuned generator over each, and evaluate exact match (Fig. 6).
//! The real model is the extractive [`scriptflow_mlkit::ClozeAnswerer`];
//! the virtual cost model charges what the paper's 1.59 GB BART charges —
//! including the Ray object-store tax that drives Fig. 13d.

pub mod script;
pub mod script_actors;
pub mod workflow;

use scriptflow_core::Calibration;
use scriptflow_datagen::fsqa::FsqaDataset;
use scriptflow_mlkit::ClozeAnswerer;
use scriptflow_simcluster::SimDuration;

/// Parameters of one GOTTA run.
#[derive(Debug, Clone)]
pub struct GottaParams {
    /// Number of paragraphs.
    pub paragraphs: usize,
    /// Worker count (Ray CPUs / inference-operator parallelism).
    pub workers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl GottaParams {
    /// A run over `paragraphs` paragraphs with `workers` workers.
    pub fn new(paragraphs: usize, workers: usize) -> Self {
        GottaParams {
            paragraphs,
            workers,
            seed: 0x607A,
        }
    }

    /// Generate the input dataset.
    pub fn dataset(&self, cal: &Calibration) -> FsqaDataset {
        FsqaDataset::generate(self.paragraphs, cal.gotta_questions_per_paragraph, self.seed)
    }

    /// Human-readable config string.
    pub fn config_string(&self) -> String {
        format!("{} paragraphs, {} workers", self.paragraphs, self.workers)
    }
}

/// Per-question generation work after batching amortization: the total
/// work over `paragraphs` scales as `P^exponent`, so each question's
/// share is `base · P^(exponent-1)`.
pub fn amortized_question_work(
    base: SimDuration,
    paragraphs: usize,
    exponent: f64,
) -> SimDuration {
    let p = paragraphs.max(1) as f64;
    base.scale(p.powf(exponent - 1.0))
}

/// The real inference both paradigms run for one paragraph: answer every
/// cloze question, producing fingerprint rows.
pub fn infer_paragraph(
    model: &ClozeAnswerer,
    example: &scriptflow_datagen::fsqa::FsqaExample,
) -> Vec<String> {
    example
        .questions
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            let pred = model.answer(&example.paragraph, &q.masked);
            let correct = pred.eq_ignore_ascii_case(&q.answer);
            format!(
                "p={}|q={qi}|pred={pred}|gold={}|correct={correct}",
                example.id, q.answer
            )
        })
        .collect()
}

/// Exact-match rate over fingerprint rows.
pub fn exact_match_of(rows: &[String]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let hits = rows.iter().filter(|r| r.ends_with("correct=true")).count();
    hits as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_decreases_with_scale() {
        let base = SimDuration::from_secs(48);
        let one = amortized_question_work(base, 1, 0.811);
        let sixteen = amortized_question_work(base, 16, 0.811);
        assert_eq!(one, base);
        assert!(sixteen < one);
        // 16^(0.811-1) = 16^-0.189 ≈ 0.592.
        let ratio = sixteen.as_secs_f64() / one.as_secs_f64();
        assert!((0.55..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn inference_solves_most_questions() {
        let params = GottaParams::new(16, 1);
        let ds = params.dataset(&Calibration::paper());
        let model = ClozeAnswerer::new();
        let rows: Vec<String> = ds
            .examples
            .iter()
            .flat_map(|e| infer_paragraph(&model, e))
            .collect();
        let em = exact_match_of(&rows);
        assert!(em > 0.5, "exact match {em}");
        assert_eq!(rows.len(), 48);
    }
}
