//! GOTTA under the script paradigm: Ray tasks fetching the model from
//! the shared object store.
//!
//! This is the configuration whose cost structure the paper dissects in
//! §IV-E: the 1.59 GB model is `ray.put` once, then **every task pays a
//! get**, and `num_cpus=1` pins the generation kernel to a single CPU.

use std::sync::Arc;

use scriptflow_core::{Calibration, Paradigm};
use scriptflow_mlkit::ClozeAnswerer;
use scriptflow_notebook::{Cell, CellError, Kernel, Notebook};
use scriptflow_raysim::{RayConfig, RayTask};
use scriptflow_simcluster::ClusterSpec;

use super::{amortized_question_work, infer_paragraph, GottaParams};
use crate::common::TaskRun;
use crate::listing;

/// Run GOTTA as a notebook + Ray job.
pub fn run_script(params: &GottaParams, cal: &Calibration) -> Result<TaskRun, CellError> {
    let dataset = Arc::new(params.dataset(cal));
    let mut kernel = Kernel::new(
        &ClusterSpec::paper_cluster(),
        RayConfig::with_cpus(params.workers),
    );

    let mut nb = Notebook::new("gotta");
    // Cell 1: load model from disk + put into the object store.
    {
        let setup = cal.gotta_script_setup;
        let model_bytes = cal.gotta_model_bytes;
        nb.push(
            Cell::new("load_model", listing::gotta_script_listing(), move |k| {
                k.advance(setup);
                let model_ref = k.ray().put(ClozeAnswerer::new(), model_bytes);
                k.set("model_ref", model_ref);
                Ok(())
            })
            .writes(&["model_ref"]),
        );
    }
    // Cell 2: build prompts and run one task per paragraph.
    {
        let ds = dataset.clone();
        let q_work = amortized_question_work(
            cal.gotta_work_per_question,
            params.paragraphs,
            cal.gotta_script_batch_exponent,
        );
        let per_paragraph = cal.gotta_questions_per_paragraph as u64;
        nb.push(
            Cell::new("inference", "preds = ray.get([infer.remote(c) for c in chunks])", move |k| {
                let model_ref =
                    *k.get::<scriptflow_raysim::ObjRef<ClozeAnswerer>>("model_ref")?;
                let tasks: Vec<RayTask<Vec<String>>> = ds
                    .examples
                    .iter()
                    .map(|example| {
                        let example = example.clone();
                        RayTask::new(
                            format!("infer_p{}", example.id),
                            q_work * per_paragraph,
                            move |d| {
                                let model = d.get(model_ref)?;
                                Ok(infer_paragraph(&model, &example))
                            },
                        )
                        .with_input(model_ref)
                    })
                    .collect();
                let preds = k.ray().parallel_map(tasks)?;
                k.set("preds", preds);
                Ok(())
            })
            .reads(&["model_ref"])
            .writes(&["preds"]),
        );
    }
    // Cell 3: flatten + evaluate exact match.
    nb.push(
        Cell::new("evaluate", "em = exact_match(flat_preds)", |k| {
            let preds = k.get::<Vec<Vec<String>>>("preds")?;
            let rows: Vec<String> = preds.iter().flatten().cloned().collect();
            let em = super::exact_match_of(&rows);
            k.set("rows", rows);
            k.set("exact_match", em);
            Ok(())
        })
        .reads(&["preds"])
        .writes(&["rows", "exact_match"]),
    );

    nb.run_all(&mut kernel)?;
    let output = (*kernel.get::<Vec<String>>("rows")?).clone();
    Ok(TaskRun::new(
        "GOTTA",
        Paradigm::Script,
        params.config_string(),
        kernel.now(),
        params.workers,
        listing::count_loc(&listing::gotta_script_listing()),
        nb.len(),
        output,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotta::exact_match_of;

    #[test]
    fn fig13d_script_anchors() {
        // Paper: 163.22 / 463.96 / 1389.93 s at 1 / 4 / 16 paragraphs.
        let cal = Calibration::paper();
        let t1 = run_script(&GottaParams::new(1, 1), &cal).unwrap().seconds();
        let t4 = run_script(&GottaParams::new(4, 1), &cal).unwrap().seconds();
        let t16 = run_script(&GottaParams::new(16, 1), &cal).unwrap().seconds();
        assert!((150.0..180.0).contains(&t1), "t1 {t1}");
        assert!((430.0..500.0).contains(&t4), "t4 {t4}");
        assert!((1290.0..1490.0).contains(&t16), "t16 {t16}");
    }

    #[test]
    fn model_is_fetched_per_task() {
        let cal = Calibration::paper();
        let params = GottaParams::new(4, 4);
        let ds = params.dataset(&cal);
        let run = run_script(&params, &cal).unwrap();
        // 4 paragraphs → 4 tasks → at least 4 declared gets + closures.
        assert_eq!(run.output.len(), ds.question_count());
        assert!(exact_match_of(&run.output) > 0.5);
    }

    #[test]
    fn workers_reduce_time() {
        let cal = Calibration::paper();
        let one = run_script(&GottaParams::new(4, 1), &cal).unwrap().seconds();
        let four = run_script(&GottaParams::new(4, 4), &cal).unwrap().seconds();
        assert!(four < one * 0.45, "four {four} vs one {one}");
    }
}
