//! GOTTA under the script paradigm, rewritten with Ray **actors** — the
//! standard fix for the object-store pathology the paper measured.
//!
//! §IV-E attributes the script's GOTTA cost partly to "uploading large
//! objects such as models into an object store, which … added execution
//! time for each access". Ray's own answer is an actor that loads the
//! model once per worker process and serves inference calls. This module
//! implements that rewrite (an extension beyond the paper's
//! configurations) so the `ablate-actors` experiment can quantify how
//! much of the gap it closes — and how much remains from the 1-CPU
//! kernel pinning.

use scriptflow_core::{Calibration, Paradigm};
use scriptflow_mlkit::ClozeAnswerer;
use scriptflow_notebook::{Cell, CellError, Kernel, Notebook};
use scriptflow_raysim::RayConfig;
use scriptflow_simcluster::ClusterSpec;

use super::{amortized_question_work, infer_paragraph, GottaParams};
use crate::common::TaskRun;

/// Run GOTTA with one inference actor per worker.
pub fn run_script_actors(params: &GottaParams, cal: &Calibration) -> Result<TaskRun, CellError> {
    let dataset = std::sync::Arc::new(params.dataset(cal));
    let workers = params.workers.max(1);
    let mut kernel = Kernel::new(
        &ClusterSpec::paper_cluster(),
        RayConfig::with_cpus(workers),
    );

    let mut nb = Notebook::new("gotta-actors");
    // Cell 1: spin up the actors — each ships the model ONCE.
    {
        let model_bytes = cal.gotta_model_bytes;
        let setup = cal.gotta_script_setup;
        nb.push(
            Cell::new(
                "actors",
                "actors = [Inference.remote() for _ in range(NUM_WORKERS)]",
                move |k| {
                    k.advance(setup);
                    let actors: Vec<_> = (0..workers)
                        .map(|_| {
                            k.ray().create_actor(
                                ClozeAnswerer::new(),
                                model_bytes,
                                scriptflow_simcluster::SimDuration::from_millis(500),
                            )
                        })
                        .collect();
                    k.set("actors", actors);
                    Ok(())
                },
            )
            .writes(&["actors"]),
        );
    }
    // Cell 2: round-robin paragraphs over the actors; calls on different
    // actors overlap, calls on one actor serialize (its single process).
    {
        let ds = dataset.clone();
        let q_work = amortized_question_work(
            cal.gotta_work_per_question,
            params.paragraphs,
            cal.gotta_script_batch_exponent,
        );
        let per_paragraph = cal.gotta_questions_per_paragraph as u64;
        nb.push(
            Cell::new(
                "inference",
                "preds = ray.get([actors[i % n].infer.remote(p) for i, p in enumerate(paragraphs)])",
                move |k| {
                    let actors = (*k
                        .get::<Vec<scriptflow_raysim::ActorRef<ClozeAnswerer>>>("actors")?)
                    .clone();
                    type Call = scriptflow_raysim::runtime::ActorCall<ClozeAnswerer, Vec<String>>;
                    let batches: Vec<(
                        scriptflow_raysim::ActorRef<ClozeAnswerer>,
                        Vec<Call>,
                    )> = actors
                        .iter()
                        .enumerate()
                        .map(|(ai, actor)| {
                            let calls: Vec<Call> = ds
                                .examples
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| i % actors.len() == ai)
                                .map(|(_, e)| -> Call {
                                    let example = e.clone();
                                    let work = q_work * per_paragraph;
                                    (
                                        work,
                                        Box::new(move |model: &mut ClozeAnswerer| {
                                            Ok(infer_paragraph(model, &example))
                                        }),
                                    )
                                })
                                .collect();
                            (*actor, calls)
                        })
                        .collect();
                    let rows: Vec<String> = k
                        .ray()
                        .actor_map_all(batches)?
                        .into_iter()
                        .flatten()
                        .flatten()
                        .collect();
                    k.set("rows", rows);
                    Ok(())
                },
            )
            .reads(&["actors"])
            .writes(&["rows"]),
        );
    }

    nb.run_all(&mut kernel)?;
    let output = (*kernel.get::<Vec<String>>("rows")?).clone();
    Ok(TaskRun::new(
        "GOTTA",
        Paradigm::Script,
        format!("{} (actors)", params.config_string()),
        kernel.now(),
        workers,
        0,
        nb.len(),
        output,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotta::script::run_script;

    #[test]
    fn actors_produce_identical_predictions() {
        let cal = Calibration::paper();
        let params = GottaParams::new(6, 2);
        let plain = run_script(&params, &cal).unwrap();
        let actors = run_script_actors(&params, &cal).unwrap();
        assert_eq!(plain.output, actors.output);
    }

    #[test]
    fn actors_beat_per_task_object_store_gets() {
        // The rewrite removes the per-task model get; with the kernel
        // still pinned to one CPU the saving is the store tax, not the
        // compute.
        let cal = Calibration::paper();
        let params = GottaParams::new(8, 1);
        let plain = run_script(&params, &cal).unwrap().seconds();
        let actors = run_script_actors(&params, &cal).unwrap().seconds();
        assert!(
            actors < plain,
            "actors {actors} should beat per-task gets {plain}"
        );
        // But not by an order of magnitude — the kernel time dominates.
        assert!(actors > plain * 0.8, "actors {actors} vs plain {plain}");
    }

    #[test]
    fn actor_calls_overlap_across_workers() {
        let cal = Calibration::paper();
        let one = run_script_actors(&GottaParams::new(8, 1), &cal).unwrap().seconds();
        let four = run_script_actors(&GottaParams::new(8, 4), &cal).unwrap().seconds();
        assert!(four < one * 0.45, "four {four} vs one {one}");
    }
}
