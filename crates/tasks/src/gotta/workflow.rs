//! GOTTA under the GUI-workflow paradigm.
//!
//! The controller ships the model to each inference worker **once** over
//! the network (no per-task object-store tax), and the generation kernel
//! is left unrestricted, spreading over the worker machine's CPUs — the
//! two reasons the paper gives for Texera's Fig. 13d win.

use std::sync::Arc;

use scriptflow_core::{BackendKind, Calibration, Paradigm};
use scriptflow_datakit::{DataType, Schema, Tuple, Value};
use scriptflow_mlkit::ClozeAnswerer;
use scriptflow_simcluster::ClusterSpec;
use scriptflow_workflow::ops::{ScanOp, SinkOp, UdfOp};
use scriptflow_workflow::{
    CostProfile, EngineConfig, ExecBackend, PartitionStrategy, ResultCache, WorkflowBuilder,
    WorkflowError, WorkflowResult,
};

use super::GottaParams;
use crate::common::{BackendRun, TaskRun};
use crate::listing;

/// Build the GOTTA workflow DAG; returns it with the results handle.
pub fn build_gotta_workflow(
    params: &GottaParams,
    cal: &Calibration,
) -> WorkflowResult<(
    scriptflow_workflow::Workflow,
    scriptflow_workflow::ops::SinkHandle,
)> {
    let dataset = params.dataset(cal);
    let w = params.workers.max(1);

    let question_schema = scriptflow_datagen::fsqa::FsqaDataset::question_schema();
    let out_schema = Schema::of(&[("row", DataType::Str)]);

    let mut b = WorkflowBuilder::new();
    let scan = b.add(
        Arc::new(ScanOp::new("Paragraphs Scan", dataset.question_batch())),
        1,
    );

    // Build Questions: cheap prompt construction per (paragraph, question).
    let build = b.add(
        Arc::new(UdfOp::with_schema_fn(
            "Build Questions",
            1,
            move |_| Ok((*question_schema).clone()),
            |t, _, out| {
                out.emit(t);
                Ok(())
            },
        )),
        1,
    );

    // BART Generate: the heavyweight malleable kernel. Model load is the
    // per-worker setup; the network broadcast is charged through the
    // model-sized setup + the engine's transfer model.
    let q_work = super::amortized_question_work(
        cal.gotta_work_per_question,
        params.paragraphs,
        cal.gotta_wf_batch_exponent,
    );
    let emit_schema = out_schema.clone();
    let model = ClozeAnswerer::new();
    let generate = b.add(
        Arc::new(
            UdfOp::new("BART Generate", (*out_schema).clone(), move |t, _, out| {
                let ctx = |e| WorkflowError::from_data("BART Generate", e);
                let paragraph = t.get_str("paragraph").map_err(ctx)?;
                let masked = t.get_str("masked").map_err(ctx)?;
                let gold = t.get_str("answer").map_err(ctx)?;
                let pred = model.answer(paragraph, masked);
                let correct = pred.eq_ignore_ascii_case(gold);
                let row = format!(
                    "p={}|q={}|pred={pred}|gold={gold}|correct={correct}",
                    t.get_int("paragraph_id").map_err(ctx)?,
                    t.get_int("question_idx").map_err(ctx)?,
                );
                out.emit(Tuple::new_unchecked(
                    emit_schema.clone(),
                    vec![Value::Str(row)],
                ));
                Ok(())
            })
            .with_cost(CostProfile {
                per_tuple: q_work,
                setup: cal.gotta_wf_model_setup,
                malleable: true,
                malleable_utilization: cal.gotta_malleable_utilization,
                ..CostProfile::default()
            }),
        ),
        w,
    );

    let evaluate = b.add(
        Arc::new(UdfOp::with_schema_fn(
            "Evaluate",
            1,
            |inputs| Ok((*inputs[0]).clone()),
            |t, _, out| {
                out.emit(t);
                Ok(())
            },
        )),
        1,
    );

    let sink_op = SinkOp::new("Results");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);

    b.connect(scan, build, 0, PartitionStrategy::RoundRobin);
    b.connect(build, generate, 0, PartitionStrategy::RoundRobin);
    b.connect(generate, evaluate, 0, PartitionStrategy::RoundRobin);
    b.connect(evaluate, sink, 0, PartitionStrategy::Single);

    Ok((b.build()?, handle))
}

/// The engine configuration GOTTA runs under.
pub fn engine_config(cal: &Calibration) -> EngineConfig {
    EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        batch_size: 1, // generation streams question-by-question
        serde_per_tuple: cal.wf_serde_per_tuple,
        pipelining: cal.wf_pipelining,
        columnar: cal.wf_columnar,
        columnar_discount: cal.wf_columnar_discount,
        memory_budget: cal.wf_memory_budget,
        spill_write_per_block: cal.wf_spill_write_per_block,
        spill_read_per_block: cal.wf_spill_read_per_block,
        // A fresh per-run cache: records and publishes, but never hits.
        // Warm reruns come from `run_workflow_cached`, which shares one
        // cache across invocations.
        result_cache: cal.wf_result_cache.then(|| ResultCache::for_run(cal.wf_cache_byte_budget)),
        cache_read_per_block: cal.wf_cache_read_per_block,
        ..EngineConfig::default()
    }
}

/// Run GOTTA on the simulated workflow engine.
pub fn run_workflow(params: &GottaParams, cal: &Calibration) -> WorkflowResult<TaskRun> {
    Ok(run_workflow_on(params, cal, BackendKind::Sim)?.run)
}

/// Run GOTTA on an explicitly chosen execution backend.
pub fn run_workflow_on(
    params: &GottaParams,
    cal: &Calibration,
    kind: BackendKind,
) -> WorkflowResult<BackendRun> {
    run_with_config(params, cal, kind, engine_config(cal))
}

/// Run GOTTA serving and recording through a shared result cache; warm
/// reruns replay unedited operators from sealed segments.
pub fn run_workflow_cached(
    params: &GottaParams,
    cal: &Calibration,
    kind: BackendKind,
    cache: &Arc<ResultCache>,
) -> WorkflowResult<BackendRun> {
    let config = engine_config(cal).with_result_cache(cache.clone());
    run_with_config(params, cal, kind, config)
}

fn run_with_config(
    params: &GottaParams,
    cal: &Calibration,
    kind: BackendKind,
    config: EngineConfig,
) -> WorkflowResult<BackendRun> {
    let (wf, handle) = build_gotta_workflow(params, cal)?;
    let operator_count = wf.operator_count();
    let total_workers = wf.total_workers();

    let engine = ExecBackend::of_kind(kind, config).run(&wf, &handle)?;

    let output: Vec<String> = engine
        .rows
        .iter()
        .map(|t| t.get_str("row").expect("schema").to_owned())
        .collect();

    let run = TaskRun::new(
        "GOTTA",
        Paradigm::Workflow,
        params.config_string(),
        engine.makespan,
        total_workers,
        listing::count_loc(&listing::gotta_workflow_listing()),
        operator_count,
        output,
    );
    Ok(BackendRun::from_engine(run, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotta::script::run_script;

    #[test]
    fn workflow_matches_script_output() {
        let cal = Calibration::paper();
        let params = GottaParams::new(4, 2);
        let wf = run_workflow(&params, &cal).unwrap();
        let sc = run_script(&params, &cal).unwrap();
        assert_eq!(wf.output, sc.output);
    }

    #[test]
    fn workflow_wins_fig13d() {
        // Paper: Texera 64.14 vs JN 163.22 at 1 paragraph; ~3x at 4 and 16.
        let cal = Calibration::paper();
        for paragraphs in [1, 4] {
            let params = GottaParams::new(paragraphs, 1);
            let wf = run_workflow(&params, &cal).unwrap().seconds();
            let sc = run_script(&params, &cal).unwrap().seconds();
            assert!(
                wf * 1.8 < sc,
                "paragraphs={paragraphs}: workflow {wf} vs script {sc}"
            );
        }
    }
}
