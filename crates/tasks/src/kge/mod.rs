//! Task 4 — KGE multi-step inference (§II-D).
//!
//! Triple prediction via knowledge-graph embeddings: filter candidate
//! products by availability, match each with its embedding, score
//! against the user's TransE translation, rank, and reverse-look-up the
//! top-k product names (Fig. 7).
//!
//! KGE is the paper's workhorse: it appears in the dataset-scaling
//! sweep (Fig. 13c), the worker sweep (Fig. 14c), the language swap
//! (Table I), and the modularity sweep (Fig. 12b). The workflow
//! implementation therefore supports fusion levels 1–6 and a
//! Python/Scala join pipeline swap.

pub mod script;
pub mod workflow;

use scriptflow_core::Calibration;
use scriptflow_datagen::amazon::AmazonCatalog;
use scriptflow_mlkit::kge::KgeScorer;
use scriptflow_simcluster::Language;

/// Parameters of one KGE run.
#[derive(Debug, Clone)]
pub struct KgeParams {
    /// Candidate products.
    pub products: usize,
    /// Worker count.
    pub workers: usize,
    /// Workflow fusion level 1–6 (Fig. 12b); ignored by the script.
    pub fusion: usize,
    /// Language of the embedding-join pipeline (Table I); ignored by the
    /// script.
    pub join_language: Language,
    /// Use the pandas-style Python join with vectorization warm-up (the
    /// Table I Python configuration). The standard workflow uses a plain
    /// dict-probe join without warm-up.
    pub pandas_join: bool,
    /// Dataset seed.
    pub seed: u64,
}

impl KgeParams {
    /// The standard configuration at `products` candidates and `workers`
    /// workers: fusion level 4 (filter / join / score / rank+lookup),
    /// Python join.
    pub fn new(products: usize, workers: usize) -> Self {
        KgeParams {
            products,
            workers,
            fusion: 4,
            join_language: Language::Python,
            pandas_join: false,
            seed: 0x4613,
        }
    }

    /// Same configuration with a different fusion level.
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        assert!((1..=6).contains(&fusion), "fusion level must be 1..=6");
        self.fusion = fusion;
        self
    }

    /// Same configuration with the join pipeline in another language.
    pub fn with_join_language(mut self, language: Language) -> Self {
        self.join_language = language;
        self
    }

    /// Same configuration with the pandas-style warm-up join (Table I's
    /// Python side).
    pub fn with_pandas_join(mut self) -> Self {
        self.pandas_join = true;
        self
    }

    /// Generate the input catalogue.
    pub fn catalog(&self, cal: &Calibration) -> AmazonCatalog {
        AmazonCatalog::generate(self.products, cal.kge_embedding_dim, self.seed)
    }

    /// Human-readable config string.
    pub fn config_string(&self) -> String {
        format!(
            "{} products, {} workers, fusion {}, {} join",
            self.products, self.workers, self.fusion, self.join_language
        )
    }
}

/// The real computation both paradigms share: filter, score, rank,
/// reverse-lookup. Returns the top-k fingerprint rows.
pub fn oracle(catalog: &AmazonCatalog, top_k: usize) -> Vec<String> {
    let scorer = KgeScorer::new(
        catalog.user_embedding.clone(),
        catalog.relation_embedding.clone(),
    );
    let candidates = catalog
        .products
        .iter()
        .filter(|p| p.in_stock)
        .map(|p| (p.id, catalog.embeddings.get(p.id).expect("embedding exists")));
    let ranked = scorer.top_k(candidates, top_k);
    let lookup = catalog.reverse_lookup();
    ranked
        .iter()
        .enumerate()
        .map(|(rank, (id, score))| {
            format!(
                "rank={}|id={id}|name={}|score={score:.4}",
                rank + 1,
                lookup.name(*id).expect("name exists"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_returns_k_ranked_rows() {
        let params = KgeParams::new(500, 1);
        let cal = Calibration::paper();
        let rows = oracle(&params.catalog(&cal), cal.kge_top_k);
        assert_eq!(rows.len(), 10);
        assert!(rows[0].starts_with("rank=1|"));
        // Only in-stock products can win.
        let catalog = params.catalog(&cal);
        for row in &rows {
            let id: i64 = row
                .split("|id=")
                .nth(1)
                .unwrap()
                .split('|')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(catalog.products[id as usize].in_stock);
        }
    }

    #[test]
    fn fusion_validation() {
        let p = KgeParams::new(10, 1).with_fusion(6);
        assert_eq!(p.fusion, 6);
    }

    #[test]
    #[should_panic(expected = "fusion level must be 1..=6")]
    fn fusion_out_of_range_panics() {
        KgeParams::new(10, 1).with_fusion(7);
    }
}
