//! KGE under the script paradigm: pandas-style driver + Ray scoring
//! stage.

use std::sync::Arc;

use scriptflow_core::{Calibration, Paradigm};
use scriptflow_datagen::amazon::AmazonCatalog;
use scriptflow_mlkit::kge::KgeScorer;
use scriptflow_notebook::{Cell, CellError, Kernel, Notebook};
use scriptflow_raysim::{RayConfig, RayTask};
use scriptflow_simcluster::ClusterSpec;

use super::KgeParams;
use crate::common::TaskRun;
use crate::listing;

/// Run KGE as a notebook + Ray job.
pub fn run_script(params: &KgeParams, cal: &Calibration) -> Result<TaskRun, CellError> {
    let catalog = Arc::new(params.catalog(cal));
    let mut kernel = Kernel::new(
        &ClusterSpec::paper_cluster(),
        RayConfig::with_cpus(params.workers),
    );

    let mut nb = Notebook::new("kge");
    // Cell 1: load candidates + embedding model into the object store.
    {
        let cat = catalog.clone();
        nb.push(
            Cell::new("load", listing::kge_script_listing(), move |k| {
                let bytes = cat.embeddings.approx_bytes().max(375_000_000);
                let emb_ref = k.ray().put(cat.clone(), bytes);
                k.set("emb_ref", emb_ref);
                Ok(())
            })
            .writes(&["emb_ref"]),
        );
    }
    // Cell 2: filter + score in parallel chunks (each task pays a model
    // get), then rank + reverse-lookup in the driver.
    {
        let per_product = cal.kge_script_per_product;
        let workers = params.workers.max(1);
        let top_k = cal.kge_top_k;
        let n_products = params.products;
        nb.push(
            Cell::new("score_and_rank", "scored = ray.get(futures); top = rank(scored)", move |k| {
                let emb_ref =
                    *k.get::<scriptflow_raysim::ObjRef<Arc<AmazonCatalog>>>("emb_ref")?;
                let chunk = n_products.div_ceil(workers);
                let tasks: Vec<RayTask<Vec<(i64, f32)>>> = (0..workers)
                    .map(|wi| {
                        let lo = wi * chunk;
                        let hi = ((wi + 1) * chunk).min(n_products);
                        let span = hi.saturating_sub(lo);
                        RayTask::new(
                            format!("score_{wi}"),
                            per_product * span as u64,
                            move |d| {
                                let cat = d.get(emb_ref)?;
                                let scorer = KgeScorer::new(
                                    cat.user_embedding.clone(),
                                    cat.relation_embedding.clone(),
                                );
                                Ok(cat.products[lo..hi]
                                    .iter()
                                    .filter(|p| p.in_stock)
                                    .map(|p| {
                                        let e =
                                            cat.embeddings.get(p.id).expect("embedding exists");
                                        (p.id, scorer.score(e))
                                    })
                                    .collect())
                            },
                        )
                        .with_input(emb_ref)
                    })
                    .filter(|t| t.work > scriptflow_simcluster::SimDuration::ZERO)
                    .collect();
                let scored = k.ray().parallel_map(tasks)?;
                // Driver-side rank + lookup (pandas nlargest + merge).
                let cat = k.ray().get(emb_ref)?;
                let mut all: Vec<(i64, f32)> = scored.into_iter().flatten().collect();
                all.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                all.truncate(top_k);
                let lookup = cat.reverse_lookup();
                let rows: Vec<String> = all
                    .iter()
                    .enumerate()
                    .map(|(rank, (id, score))| {
                        format!(
                            "rank={}|id={id}|name={}|score={score:.4}",
                            rank + 1,
                            lookup.name(*id).expect("name exists"),
                        )
                    })
                    .collect();
                k.set("top_products", rows);
                Ok(())
            })
            .reads(&["emb_ref"])
            .writes(&["top_products"]),
        );
    }

    nb.run_all(&mut kernel)?;
    let output = (*kernel.get::<Vec<String>>("top_products")?).clone();
    Ok(TaskRun::new(
        "KGE",
        Paradigm::Script,
        params.config_string(),
        kernel.now(),
        params.workers,
        listing::count_loc(&listing::kge_script_listing()),
        nb.len(),
        output,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kge::oracle;

    #[test]
    fn script_matches_oracle() {
        let cal = Calibration::paper();
        let params = KgeParams::new(800, 2);
        let run = run_script(&params, &cal).unwrap();
        let mut expected = oracle(&params.catalog(&cal), cal.kge_top_k);
        expected.sort_unstable();
        assert_eq!(run.output, expected);
    }

    #[test]
    fn fig13c_script_anchors() {
        // Paper: 90.69 s @6.8k and 975.46 s @68k.
        let cal = Calibration::paper();
        let small = run_script(&KgeParams::new(6_800, 1), &cal).unwrap().seconds();
        let large = run_script(&KgeParams::new(68_000, 1), &cal).unwrap().seconds();
        assert!((85.0..105.0).contains(&small), "6.8k {small}");
        assert!((930.0..1020.0).contains(&large), "68k {large}");
    }

    #[test]
    fn fig14c_script_worker_scaling() {
        // Paper: 975.46 / 459.46 / 273.89 s at 1 / 2 / 4 workers.
        let cal = Calibration::paper();
        let one = run_script(&KgeParams::new(68_000, 1), &cal).unwrap().seconds();
        let two = run_script(&KgeParams::new(68_000, 2), &cal).unwrap().seconds();
        let four = run_script(&KgeParams::new(68_000, 4), &cal).unwrap().seconds();
        assert!(one > two && two > four);
        let s2 = one / two;
        let s4 = one / four;
        assert!((1.7..2.2).contains(&s2), "2-worker speedup {s2}");
        assert!((3.0..4.1).contains(&s4), "4-worker speedup {s4}");
    }
}
