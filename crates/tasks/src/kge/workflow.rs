//! KGE under the GUI-workflow paradigm, with fusion levels 1–6 and a
//! Python/Scala join-pipeline swap.
//!
//! The logical pipeline is always filter → embedding-join → score →
//! rank → lookup (Fig. 7). The *fusion level* controls how many
//! operators those five steps are packed into (Fig. 12b's modularity
//! knob); [`super::KgeParams::join_language`] selects the paper's
//! Table I swap, replacing the one Python join operator with a
//! nine-operator built-in Scala pipeline of identical logic.
//!
//! Top-k ranking is distributed the way a real engine does it: each rank
//! worker keeps a local top-k, and a single merge operator finalizes the
//! global order — so the ranking step parallelizes without changing
//! results.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_core::{BackendKind, Calibration, Paradigm};
use scriptflow_datakit::{DataType, Schema, SchemaRef, Tuple, Value};
use scriptflow_mlkit::kge::KgeScorer;
use scriptflow_simcluster::{ClusterSpec, Language, SimDuration};
use scriptflow_workflow::ops::{HashJoinOp, ScanOp, SinkOp, StatefulUdfOp, UdfOp};
use scriptflow_workflow::{
    CostProfile, EngineConfig, ExecBackend, OpId, PartitionStrategy, ResultCache, WorkflowBuilder,
    WorkflowError, WorkflowResult,
};

use super::KgeParams;
use crate::common::{BackendRun, TaskRun};
use crate::listing;

/// (id, name, score) rows flowing after scoring.
fn scored_schema() -> SchemaRef {
    Schema::of(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("score", DataType::Float),
    ])
}

/// Final formatted row.
fn row_schema() -> SchemaRef {
    Schema::of(&[("row", DataType::Str)])
}

/// Ranked (rank, id, name, score) rows.
fn ranked_schema() -> SchemaRef {
    Schema::of(&[
        ("rank", DataType::Int),
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("score", DataType::Float),
    ])
}

/// Bounded local top-k accumulator (score desc, id asc tiebreak).
#[derive(Default)]
struct TopK {
    rows: Vec<(f64, i64, String)>,
}

impl TopK {
    fn push(&mut self, score: f64, id: i64, name: String, k: usize) {
        self.rows.push((score, id, name));
        self.rows.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        self.rows.truncate(k);
    }
}

fn format_row(rank: usize, id: i64, name: &str, score: f64) -> String {
    format!("rank={rank}|id={id}|name={name}|score={score:.4}")
}

/// Build the KGE workflow DAG at the params' fusion level; returns it
/// with the results handle.
pub fn build_kge_workflow(
    params: &KgeParams,
    cal: &Calibration,
) -> WorkflowResult<(
    scriptflow_workflow::Workflow,
    scriptflow_workflow::ops::SinkHandle,
)> {
    assert!(
        (1..=6).contains(&params.fusion),
        "fusion level must be 1..=6"
    );
    let catalog = Arc::new(params.catalog(cal));
    let w = params.workers.max(1);
    let k = cal.kge_top_k;
    let scorer = Arc::new(KgeScorer::new(
        catalog.user_embedding.clone(),
        catalog.relation_embedding.clone(),
    ));

    let py_setup = cal.kge_py_op_setup;
    let filter_c = cal.kge_wf_filter_per_product;
    let join_c = cal.kge_wf_join_per_product;
    let score_c = cal.kge_wf_score_per_product;
    let rank_c = cal.kge_wf_rank_per_product;
    let lookup_c = cal.kge_wf_lookup_per_product;

    let py_cost = |per_tuple: SimDuration| CostProfile {
        per_tuple,
        setup: py_setup,
        ..CostProfile::default()
    };

    let mut b = WorkflowBuilder::new();
    let candidates = b.add(
        Arc::new(ScanOp::new("Candidates Scan", catalog.product_batch())),
        w,
    );
    let embeddings = b.add(
        Arc::new(ScanOp::new("Embedding Scan", catalog.embedding_batch())),
        1,
    );

    // The merge + format tail shared by fusion levels 3..=6. Returns the
    // op whose output is formatted rows.
    let add_merge = |b: &mut WorkflowBuilder, upstream: OpId, k: usize| -> OpId {
        let schema = ranked_schema();
        let merge = b.add(
            Arc::new(
                StatefulUdfOp::new(
                    "Merge Top-K",
                    1,
                    (*ranked_schema()).clone(),
                    TopK::default,
                    move |state: &mut TopK, t, _, _| {
                        let ctx = |e| WorkflowError::from_data("Merge Top-K", e);
                        state.push(
                            t.get_float("score").map_err(ctx)?,
                            t.get_int("id").map_err(ctx)?,
                            t.get_str("name").map_err(ctx)?.to_owned(),
                            k,
                        );
                        Ok(())
                    },
                    move |state, _, out| {
                        for (i, (score, id, name)) in state.rows.drain(..).enumerate() {
                            out.emit(Tuple::new_unchecked(
                                schema.clone(),
                                vec![
                                    Value::Int((i + 1) as i64),
                                    Value::Int(id),
                                    Value::Str(name),
                                    Value::Float(score),
                                ],
                            ));
                        }
                        Ok(())
                    },
                )
                .with_cost(CostProfile::per_tuple_micros(200)),
            ),
            1,
        );
        b.connect(upstream, merge, 0, PartitionStrategy::Single);
        merge
    };

    // Build the fusion-level-specific body; returns the operator that
    // emits formatted `row` tuples.
    let rows_op: OpId = match params.fusion {
        1 => {
            // Everything in one blocking mega-operator.
            let cat = catalog.clone();
            let sc = scorer.clone();
            let schema = row_schema();
            let mega_cost = py_cost(filter_c + join_c + score_c + rank_c + lookup_c)
                .with_port_cost(0, cal.kge_wf_build_per_entry);
            struct MegaState {
                table: HashMap<i64, Vec<f32>>,
                top: TopK,
            }
            let mega = b.add(
                Arc::new(
                    StatefulUdfOp::new(
                        "KGE Pipeline",
                        2,
                        (*row_schema()).clone(),
                        || MegaState {
                            table: HashMap::new(),
                            top: TopK::default(),
                        },
                        move |state, t, port, _| {
                            let ctx = |e| WorkflowError::from_data("KGE Pipeline", e);
                            if port == 0 {
                                let id = t.get_int("id").map_err(ctx)?;
                                let v = t
                                    .get("embedding")
                                    .map_err(ctx)?
                                    .as_list()
                                    .map(|l| {
                                        l.iter()
                                            .map(|x| x.as_float().unwrap_or(0.0) as f32)
                                            .collect::<Vec<f32>>()
                                    })
                                    .unwrap_or_default();
                                state.table.insert(id, v);
                                return Ok(());
                            }
                            if !t.get("in_stock").map_err(ctx)?.as_bool().unwrap_or(false) {
                                return Ok(());
                            }
                            let id = t.get_int("id").map_err(ctx)?;
                            if let Some(v) = state.table.get(&id) {
                                let score = f64::from(sc.score(v));
                                state.top.push(
                                    score,
                                    id,
                                    t.get_str("name").map_err(ctx)?.to_owned(),
                                    k,
                                );
                            }
                            Ok(())
                        },
                        move |state, port, out| {
                            if port != 1 {
                                return Ok(());
                            }
                            let _ = &cat;
                            for (i, (score, id, name)) in state.top.rows.drain(..).enumerate() {
                                out.emit(Tuple::new_unchecked(
                                    schema.clone(),
                                    vec![Value::Str(format_row(i + 1, id, &name, score))],
                                ));
                            }
                            Ok(())
                        },
                    )
                    .with_blocking_ports(vec![0])
                    .with_cost(mega_cost),
                ),
                1,
            );
            b.connect(embeddings, mega, 0, PartitionStrategy::Single);
            b.connect(candidates, mega, 1, PartitionStrategy::Single);
            mega
        }
        level => {
            // Split pipeline. Stage A: filter (own op for level >= 3,
            // fused into the join group at level 2).
            let standalone_filter = level >= 3;
            let filter_op = if standalone_filter {
                let op = b.add(
                    Arc::new(
                        UdfOp::with_schema_fn(
                            "Stock Filter",
                            1,
                            |inputs| Ok((*inputs[0]).clone()),
                            |t, _, out| {
                                let keep = t
                                    .get("in_stock")
                                    .map_err(|e| WorkflowError::from_data("Stock Filter", e))?
                                    .as_bool()
                                    .unwrap_or(false);
                                if keep {
                                    out.emit(t);
                                }
                                Ok(())
                            },
                        )
                        .with_cost(py_cost(filter_c)),
                    ),
                    w,
                );
                b.connect(candidates, op, 0, PartitionStrategy::RoundRobin);
                Some(op)
            } else {
                None
            };

            // Stage B: the join (Python operator or the Scala pipeline),
            // possibly fused with filter (level 2) and score (level 2).
            // Its output carries (.., embedding) or (.., score).
            let fuse_score_into_join = level == 2;
            let join_out = build_join(
                &mut b,
                cal,
                params,
                JoinWiring {
                    candidates,
                    embeddings,
                    filtered: filter_op,
                    workers: w,
                    fuse_filter: !standalone_filter,
                    fuse_score: fuse_score_into_join,
                    scorer: scorer.clone(),
                    filter_c,
                    join_c,
                    score_c,
                    py_setup,
                },
            );

            // Stage C: score (own op for level >= 4; level 3 fuses the
            // scoring into the rank group below).
            let fuse_score_into_rank = level == 3;
            let scored = if fuse_score_into_join || fuse_score_into_rank {
                join_out
            } else {
                let sc = scorer.clone();
                let schema = scored_schema();
                let op = b.add(
                    Arc::new(
                        UdfOp::new("KGE Score", (*scored_schema()).clone(), move |t, _, out| {
                            let ctx = |e| WorkflowError::from_data("KGE Score", e);
                            let v: Vec<f32> = t
                                .get("embedding")
                                .map_err(ctx)?
                                .as_list()
                                .map(|l| {
                                    l.iter()
                                        .map(|x| x.as_float().unwrap_or(0.0) as f32)
                                        .collect()
                                })
                                .unwrap_or_default();
                            out.emit(Tuple::new_unchecked(
                                schema.clone(),
                                vec![
                                    Value::Int(t.get_int("id").map_err(ctx)?),
                                    Value::Str(t.get_str("name").map_err(ctx)?.to_owned()),
                                    Value::Float(f64::from(sc.score(&v))),
                                ],
                            ));
                            Ok(())
                        })
                        .with_cost(py_cost(score_c)),
                    ),
                    w,
                );
                b.connect(join_out, op, 0, PartitionStrategy::RoundRobin);
                op
            };

            // Stage D: rank (+ lookup/format depending on level).
            match level {
                2 => {
                    // [rank + lookup] fused, single worker, emits rows.
                    let schema = row_schema();
                    let op = b.add(
                        Arc::new(
                            StatefulUdfOp::new(
                                "Rank & Lookup",
                                1,
                                (*row_schema()).clone(),
                                TopK::default,
                                move |state: &mut TopK, t, _, _| {
                                    let ctx = |e| WorkflowError::from_data("Rank & Lookup", e);
                                    state.push(
                                        t.get_float("score").map_err(ctx)?,
                                        t.get_int("id").map_err(ctx)?,
                                        t.get_str("name").map_err(ctx)?.to_owned(),
                                        k,
                                    );
                                    Ok(())
                                },
                                move |state, _, out| {
                                    for (i, (score, id, name)) in state.top_rows().enumerate() {
                                        out.emit(Tuple::new_unchecked(
                                            schema.clone(),
                                            vec![Value::Str(format_row(i + 1, id, &name, score))],
                                        ));
                                    }
                                    Ok(())
                                },
                            )
                            .with_cost(py_cost(rank_c + lookup_c)),
                        ),
                        1,
                    );
                    b.connect(scored, op, 0, PartitionStrategy::Single);
                    op
                }
                3 => {
                    // [score+rank+lookup] fused: local scoring + top-k at
                    // `w` workers, then merge + format.
                    let local = add_scoring_rank(
                        &mut b,
                        scored,
                        w,
                        k,
                        scorer.clone(),
                        py_cost(score_c + rank_c + lookup_c),
                        "Score, Rank & Lookup (local)",
                    );
                    let merge = add_merge(&mut b, local, k);
                    add_format(&mut b, merge, "Format", CostProfile::per_tuple_micros(100))
                }
                4 => {
                    // [rank+lookup]: local top-k at `w` workers, then
                    // merge, then format fused into lookup.
                    let local = add_local_rank(
                        &mut b,
                        scored,
                        w,
                        k,
                        py_cost(rank_c + lookup_c),
                        "Rank & Lookup (local)",
                    );
                    let merge = add_merge(&mut b, local, k);
                    add_format(&mut b, merge, "Format", CostProfile::per_tuple_micros(100))
                }
                _ => {
                    // 5, 6: [rank] local + merge, [lookup], (6: [format]).
                    let local =
                        add_local_rank(&mut b, scored, w, k, py_cost(rank_c), "Top-K Rank (local)");
                    let merge = add_merge(&mut b, local, k);
                    if level == 5 {
                        add_format(&mut b, merge, "Reverse Lookup", py_cost(lookup_c))
                    } else {
                        let lookup = b.add(
                            Arc::new(
                                UdfOp::with_schema_fn(
                                    "Reverse Lookup",
                                    1,
                                    |inputs| Ok((*inputs[0]).clone()),
                                    |t, _, out| {
                                        out.emit(t);
                                        Ok(())
                                    },
                                )
                                .with_cost(py_cost(lookup_c)),
                            ),
                            1,
                        );
                        b.connect(merge, lookup, 0, PartitionStrategy::Single);
                        add_format(
                            &mut b,
                            lookup,
                            "Format",
                            py_cost(SimDuration::from_micros(100)),
                        )
                    }
                }
            }
        }
    };

    let sink_op = SinkOp::new("Results");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(rows_op, sink, 0, PartitionStrategy::Single);

    Ok((b.build()?, handle))
}

/// The engine configuration KGE runs under.
pub fn engine_config(cal: &Calibration) -> EngineConfig {
    EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        batch_size: cal.wf_batch_size,
        serde_per_tuple: cal.wf_serde_per_tuple,
        pipelining: cal.wf_pipelining,
        columnar: cal.wf_columnar,
        columnar_discount: cal.wf_columnar_discount,
        memory_budget: cal.wf_memory_budget,
        spill_write_per_block: cal.wf_spill_write_per_block,
        spill_read_per_block: cal.wf_spill_read_per_block,
        // A fresh per-run cache: records and publishes, but never hits.
        // Warm reruns come from `run_workflow_cached`, which shares one
        // cache across invocations.
        result_cache: cal.wf_result_cache.then(|| ResultCache::for_run(cal.wf_cache_byte_budget)),
        cache_read_per_block: cal.wf_cache_read_per_block,
        ..EngineConfig::default()
    }
}

/// Run KGE on the simulated workflow engine.
pub fn run_workflow(params: &KgeParams, cal: &Calibration) -> WorkflowResult<TaskRun> {
    Ok(run_workflow_on(params, cal, BackendKind::Sim)?.run)
}

/// Run KGE on an explicitly chosen execution backend.
pub fn run_workflow_on(
    params: &KgeParams,
    cal: &Calibration,
    kind: BackendKind,
) -> WorkflowResult<BackendRun> {
    run_with_config(params, cal, kind, engine_config(cal))
}

/// Run KGE serving and recording through a shared result cache: rerun
/// the same (or an edited) pipeline against the same `cache` and every
/// unedited upstream cone is replayed from sealed segments instead of
/// recomputed.
pub fn run_workflow_cached(
    params: &KgeParams,
    cal: &Calibration,
    kind: BackendKind,
    cache: &Arc<ResultCache>,
) -> WorkflowResult<BackendRun> {
    let config = engine_config(cal).with_result_cache(cache.clone());
    run_with_config(params, cal, kind, config)
}

fn run_with_config(
    params: &KgeParams,
    cal: &Calibration,
    kind: BackendKind,
    config: EngineConfig,
) -> WorkflowResult<BackendRun> {
    let (wf, handle) = build_kge_workflow(params, cal)?;
    let operator_count = wf.operator_count();
    let total_workers = wf.total_workers();

    let engine = ExecBackend::of_kind(kind, config).run(&wf, &handle)?;

    let output: Vec<String> = engine
        .rows
        .iter()
        .map(|t| t.get_str("row").expect("schema").to_owned())
        .collect();

    let run = TaskRun::new(
        "KGE",
        Paradigm::Workflow,
        params.config_string(),
        engine.makespan,
        total_workers,
        listing::count_loc(&listing::kge_workflow_listing()),
        operator_count,
        output,
    );
    Ok(BackendRun::from_engine(run, engine))
}

impl TopK {
    fn top_rows(&mut self) -> impl Iterator<Item = (f64, i64, String)> + '_ {
        self.rows.drain(..)
    }
}

/// Add a local top-k operator emitting `scored_schema` rows.
fn add_local_rank(
    b: &mut WorkflowBuilder,
    upstream: OpId,
    workers: usize,
    k: usize,
    cost: CostProfile,
    name: &str,
) -> OpId {
    let schema = scored_schema();
    let name_owned = name.to_owned();
    let op = b.add(
        Arc::new(
            StatefulUdfOp::new(
                name,
                1,
                (*scored_schema()).clone(),
                TopK::default,
                move |state: &mut TopK, t, _, _| {
                    let ctx = |e| WorkflowError::from_data(&name_owned, e);
                    state.push(
                        t.get_float("score").map_err(ctx)?,
                        t.get_int("id").map_err(ctx)?,
                        t.get_str("name").map_err(ctx)?.to_owned(),
                        k,
                    );
                    Ok(())
                },
                move |state, _, out| {
                    for (score, id, name) in state.rows.drain(..) {
                        out.emit(Tuple::new_unchecked(
                            schema.clone(),
                            vec![Value::Int(id), Value::Str(name), Value::Float(score)],
                        ));
                    }
                    Ok(())
                },
            )
            .with_cost(cost),
        ),
        workers,
    );
    b.connect(upstream, op, 0, PartitionStrategy::RoundRobin);
    op
}

/// Add a fused scoring + local top-k operator: consumes (id, name,
/// embedding) join output, scores, and keeps a local top-k.
fn add_scoring_rank(
    b: &mut WorkflowBuilder,
    upstream: OpId,
    workers: usize,
    k: usize,
    scorer: Arc<KgeScorer>,
    cost: CostProfile,
    name: &str,
) -> OpId {
    let schema = scored_schema();
    let name_owned = name.to_owned();
    let op = b.add(
        Arc::new(
            StatefulUdfOp::new(
                name,
                1,
                (*scored_schema()).clone(),
                TopK::default,
                move |state: &mut TopK, t, _, _| {
                    let ctx = |e| WorkflowError::from_data(&name_owned, e);
                    let v: Vec<f32> = t
                        .get("embedding")
                        .map_err(ctx)?
                        .as_list()
                        .map(|l| {
                            l.iter()
                                .map(|x| x.as_float().unwrap_or(0.0) as f32)
                                .collect()
                        })
                        .unwrap_or_default();
                    state.push(
                        f64::from(scorer.score(&v)),
                        t.get_int("id").map_err(ctx)?,
                        t.get_str("name").map_err(ctx)?.to_owned(),
                        k,
                    );
                    Ok(())
                },
                move |state, _, out| {
                    for (score, id, name) in state.rows.drain(..) {
                        out.emit(Tuple::new_unchecked(
                            schema.clone(),
                            vec![Value::Int(id), Value::Str(name), Value::Float(score)],
                        ));
                    }
                    Ok(())
                },
            )
            .with_cost(cost),
        ),
        workers,
    );
    b.connect(upstream, op, 0, PartitionStrategy::RoundRobin);
    op
}

/// Add a formatter from `ranked_schema` rows to final `row` strings.
fn add_format(b: &mut WorkflowBuilder, upstream: OpId, name: &str, cost: CostProfile) -> OpId {
    let schema = row_schema();
    let name_owned = name.to_owned();
    let op = b.add(
        Arc::new(
            UdfOp::new(name, (*row_schema()).clone(), move |t, _, out| {
                let ctx = |e| WorkflowError::from_data(&name_owned, e);
                out.emit(Tuple::new_unchecked(
                    schema.clone(),
                    vec![Value::Str(format_row(
                        t.get_int("rank").map_err(ctx)? as usize,
                        t.get_int("id").map_err(ctx)?,
                        t.get_str("name").map_err(ctx)?,
                        t.get_float("score").map_err(ctx)?,
                    ))],
                ));
                Ok(())
            })
            .with_cost(cost),
        ),
        1,
    );
    b.connect(upstream, op, 0, PartitionStrategy::Single);
    op
}

/// Wiring inputs for the join stage.
struct JoinWiring {
    candidates: OpId,
    embeddings: OpId,
    filtered: Option<OpId>,
    workers: usize,
    fuse_filter: bool,
    fuse_score: bool,
    scorer: Arc<KgeScorer>,
    filter_c: SimDuration,
    join_c: SimDuration,
    score_c: SimDuration,
    py_setup: SimDuration,
}

/// Build the embedding-join stage: a single Python operator, or the
/// paper's nine-operator Scala pipeline (Table I).
fn build_join(
    b: &mut WorkflowBuilder,
    cal: &Calibration,
    params: &KgeParams,
    wiring: JoinWiring,
) -> OpId {
    let probe_src = wiring.filtered.unwrap_or(wiring.candidates);
    let w = wiring.workers;
    let fused_out = if wiring.fuse_score {
        scored_schema()
    } else {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("embedding", DataType::List),
        ])
    };

    if params.join_language == Language::Python {
        // One Python UDF: blocking build on port 0, probe on port 1,
        // optionally fused with filter and score.
        let mut per_tuple = wiring.join_c;
        if wiring.fuse_filter {
            per_tuple += wiring.filter_c;
        }
        if wiring.fuse_score {
            per_tuple += wiring.score_c;
        }
        let mut cost = CostProfile {
            per_tuple,
            setup: wiring.py_setup,
            ..CostProfile::default()
        }
        .with_port_cost(0, cal.kge_wf_build_per_entry);
        if params.pandas_join {
            // Table I's Python configuration: the pandas merge pays a
            // vectorization warm-up on its probe side.
            cost.warmup_extra = cal.kge_py_join_warmup;
            cost.warmup_tuples = cal.kge_py_warmup_tuples;
            cost.warmup_port = 1;
        }
        let fuse_filter = wiring.fuse_filter;
        let fuse_score = wiring.fuse_score;
        let scorer = wiring.scorer.clone();
        let out_schema = fused_out.clone();
        let join = b.add(
            Arc::new(
                StatefulUdfOp::new(
                    "Embedding Join",
                    2,
                    (*fused_out).clone(),
                    HashMap::<i64, Vec<f32>>::new,
                    move |table, t, port, out| {
                        let ctx = |e| WorkflowError::from_data("Embedding Join", e);
                        if port == 0 {
                            let id = t.get_int("id").map_err(ctx)?;
                            let v = t
                                .get("embedding")
                                .map_err(ctx)?
                                .as_list()
                                .map(|l| {
                                    l.iter()
                                        .map(|x| x.as_float().unwrap_or(0.0) as f32)
                                        .collect::<Vec<f32>>()
                                })
                                .unwrap_or_default();
                            table.insert(id, v);
                            return Ok(());
                        }
                        if fuse_filter
                            && !t.get("in_stock").map_err(ctx)?.as_bool().unwrap_or(false)
                        {
                            return Ok(());
                        }
                        let id = t.get_int("id").map_err(ctx)?;
                        let name = t.get_str("name").map_err(ctx)?.to_owned();
                        let Some(v) = table.get(&id) else {
                            return Ok(());
                        };
                        let value = if fuse_score {
                            Value::Float(f64::from(scorer.score(v)))
                        } else {
                            Value::List(v.iter().map(|x| Value::Float(f64::from(*x))).collect())
                        };
                        out.emit(Tuple::new_unchecked(
                            out_schema.clone(),
                            vec![Value::Int(id), Value::Str(name), value],
                        ));
                        Ok(())
                    },
                    |_, _, _| Ok(()),
                )
                .with_blocking_ports(vec![0])
                .with_cost(cost),
            ),
            w,
        );
        b.connect(
            wiring.embeddings,
            join,
            0,
            PartitionStrategy::Hash(vec!["id".into()]),
        );
        b.connect(
            probe_src,
            join,
            1,
            PartitionStrategy::Hash(vec!["id".into()]),
        );
        return join;
    }

    // Scala pipeline: nine built-in operators implementing the same join
    // (projections + partition markers + hash join + merge/validate).
    assert!(
        !wiring.fuse_filter && !wiring.fuse_score,
        "the Scala swap targets the standalone join operator (fusion >= 3)"
    );
    let scala_cost = || CostProfile {
        per_tuple: SimDuration::from_micros(250),
        setup: cal.kge_scala_op_setup,
        ..CostProfile::default()
    };
    let passthrough = |b: &mut WorkflowBuilder, name: &str, upstream: OpId, workers: usize| {
        let op = b.add(
            Arc::new(
                UdfOp::with_schema_fn(
                    name,
                    1,
                    |inputs| Ok((*inputs[0]).clone()),
                    |t, _, out| {
                        out.emit(t);
                        Ok(())
                    },
                )
                .with_cost(scala_cost())
                .with_language(Language::Scala),
            ),
            workers,
        );
        b.connect(upstream, op, 0, PartitionStrategy::RoundRobin);
        op
    };

    let build_a = passthrough(b, "Project Build (Scala)", wiring.embeddings, 1);
    let build_b = passthrough(b, "Partition Build (Scala)", build_a, 1);
    let probe_in = passthrough(b, "Arrow Ingest (Scala)", probe_src, w);
    let probe_a = passthrough(b, "Project Probe (Scala)", probe_in, w);
    let probe_b = passthrough(b, "Partition Probe (Scala)", probe_a, w);
    let join = b.add(
        Arc::new(
            HashJoinOp::new("Hash Join (Scala)", &["id"], &["id"])
                .with_language(Language::Scala)
                .with_cost(
                    CostProfile {
                        per_tuple: wiring.join_c,
                        setup: cal.kge_scala_op_setup,
                        ..CostProfile::default()
                    }
                    .with_port_cost(0, cal.kge_wf_build_per_entry),
                ),
        ),
        w,
    );
    b.connect(build_b, join, 0, PartitionStrategy::Hash(vec!["id".into()]));
    b.connect(probe_b, join, 1, PartitionStrategy::Hash(vec!["id".into()]));
    // Post-join: merge/validate/exchange back to Python land. The merge
    // projects to the (id, name, embedding) shape downstream expects.
    let schema = fused_out.clone();
    let merge = b.add(
        Arc::new(
            UdfOp::new(
                "Merge Columns (Scala)",
                (*fused_out).clone(),
                move |t, _, out| {
                    let ctx = |e| WorkflowError::from_data("Merge Columns (Scala)", e);
                    out.emit(Tuple::new_unchecked(
                        schema.clone(),
                        vec![
                            Value::Int(t.get_int("id").map_err(ctx)?),
                            Value::Str(t.get_str("name").map_err(ctx)?.to_owned()),
                            t.get("embedding").map_err(ctx)?.clone(),
                        ],
                    ));
                    Ok(())
                },
            )
            .with_cost(scala_cost())
            .with_language(Language::Scala),
        ),
        w,
    );
    b.connect(join, merge, 0, PartitionStrategy::RoundRobin);
    let validate = passthrough(b, "Validate Join (Scala)", merge, w);
    passthrough(b, "Arrow Exchange (Scala)", validate, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kge::{oracle, script::run_script};

    fn expected(params: &KgeParams, cal: &Calibration) -> Vec<String> {
        let mut rows = oracle(&params.catalog(cal), cal.kge_top_k);
        rows.sort_unstable();
        rows
    }

    #[test]
    fn workflow_matches_oracle_at_every_fusion_level() {
        let cal = Calibration::paper();
        for fusion in 1..=6 {
            let params = KgeParams::new(600, 2).with_fusion(fusion);
            let run = run_workflow(&params, &cal).unwrap();
            assert_eq!(run.output, expected(&params, &cal), "fusion {fusion}");
        }
    }

    #[test]
    fn scala_swap_preserves_results() {
        let cal = Calibration::paper();
        let params = KgeParams::new(600, 2).with_join_language(Language::Scala);
        let run = run_workflow(&params, &cal).unwrap();
        assert_eq!(run.output, expected(&params, &cal));
        // Nine extra operators replace the single Python join.
        let py = run_workflow(&KgeParams::new(600, 2), &cal).unwrap();
        assert_eq!(
            run.report.metrics.operator_count,
            py.report.metrics.operator_count + 8
        );
    }

    #[test]
    fn workflow_matches_script() {
        let cal = Calibration::paper();
        let params = KgeParams::new(900, 2);
        let wf = run_workflow(&params, &cal).unwrap();
        let sc = run_script(&params, &cal).unwrap();
        assert_eq!(wf.output, sc.output);
    }

    #[test]
    fn script_beats_workflow_fig13c() {
        // KGE is the task the script paradigm wins at every scale.
        let cal = Calibration::paper();
        let params = KgeParams::new(6_800, 1).with_fusion(3);
        let wf = run_workflow(&params, &cal).unwrap().seconds();
        let sc = run_script(&params, &cal).unwrap().seconds();
        assert!(sc < wf, "script {sc} must beat workflow {wf}");
        let slower = wf / sc - 1.0;
        assert!((0.2..0.7).contains(&slower), "workflow {slower} slower");
    }

    #[test]
    fn scala_join_is_faster_small_scale() {
        let cal = Calibration::paper();
        let py = run_workflow(&KgeParams::new(6_800, 1).with_fusion(3), &cal)
            .unwrap()
            .seconds();
        let scala = run_workflow(
            &KgeParams::new(6_800, 1)
                .with_fusion(3)
                .with_join_language(Language::Scala),
            &cal,
        )
        .unwrap()
        .seconds();
        assert!(scala < py, "scala {scala} vs python {py}");
    }
}
