//! # scriptflow-tasks
//!
//! The paper's four data-science tasks (§II), each implemented **twice**:
//! once as a notebook script scaled out with the Ray-like runtime, and
//! once as a workflow DAG on the pipelined engine. Both implementations
//! of a task perform the *same real computation* and return a sortable
//! output fingerprint, so the test suite can assert paradigm
//! equivalence; their virtual execution times diverge exactly the way
//! the paper measured.
//!
//! | Task | Paper role | Module |
//! |------|-----------|--------|
//! | DICE | data wrangling (MACCROBAT → MACCROBAT-EE) | [`dice`] |
//! | WEF | model training (4 binary framing heads) | [`wef`] |
//! | GOTTA | one-step inference (cloze QA forward pass) | [`gotta`] |
//! | KGE | multi-step inference (filter→join→score→rank→lookup) | [`kge`] |
//!
//! [`common::TaskRun`] packages each run's [`scriptflow_core::RunReport`]
//! with the output fingerprint. [`listing`] generates the pseudo-Python /
//! workflow-config listings behind the paper's lines-of-code metric
//! (Fig. 12a).

#![warn(missing_docs)]

pub mod common;
pub mod dice;
pub mod gotta;
pub mod kge;
pub mod listing;
pub mod wef;

pub use common::{BackendRun, TaskRun};
