//! Code listings behind the lines-of-code metric (Fig. 12a).
//!
//! The paper counts the lines of its Python notebooks and of its Texera
//! workflow definitions (operator configs + UDF bodies). We cannot ship
//! the authors' code, so each listing here is a faithful pseudo-code
//! rendering of what *our* implementation of the task does, written in
//! the idiom of its paradigm. The script listings mirror the real
//! MACCROBAT preprocessing structure — long per-annotation-type parsing
//! code is exactly why the paper's DICE notebook is 377 lines — and the
//! workflow listings are operator-by-operator configuration blocks.
//!
//! LoC is counted the way [`scriptflow_notebook::Cell::lines_of_code`]
//! counts: non-empty, non-comment lines.

/// The MACCROBAT annotation types driving the per-type parser blocks.
const ANN_TYPES: [&str; 10] = [
    "Age",
    "Sex",
    "Sign_symptom",
    "Clinical_event",
    "Therapeutic_procedure",
    "Medication",
    "Diagnostic_procedure",
    "Disease_disorder",
    "Lab_value",
    "Duration",
];

/// Count non-empty, non-comment lines the same way the notebook engine
/// does.
pub fn count_loc(listing: &str) -> usize {
    listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count()
}

// ---------------------------------------------------------------------
// DICE
// ---------------------------------------------------------------------

/// DICE notebook, cell 1: imports + configuration.
pub fn dice_script_cell_setup() -> String {
    let mut s = String::from(
        "import os\nimport re\nimport json\nimport ray\nimport pandas as pd\nfrom collections import defaultdict\nfrom glob import glob\n",
    );
    s.push_str("ray.init(address='auto')\n");
    s.push_str("DATA_DIR = 'maccrobat/'\n");
    s.push_str("ANN_GLOB = os.path.join(DATA_DIR, '*.ann')\n");
    s.push_str("TXT_GLOB = os.path.join(DATA_DIR, '*.txt')\n");
    s.push_str("SENT_SPLIT = re.compile(r'(?<=[.!?])\\s+')\n");
    s.push_str("SPAN_RE = re.compile(r'^(T\\d+)\\t(\\w+) (\\d+) (\\d+)\\t(.*)$')\n");
    s.push_str("EVENT_RE = re.compile(r'^(E\\d+)\\t(\\w+):(T\\d+)')\n");
    s
}

/// DICE notebook, cell 2: per-type annotation parsing (the long part).
pub fn dice_script_cell_parse() -> String {
    let mut s = String::new();
    for t in ANN_TYPES {
        let lower = t.to_lowercase();
        s.push_str(&format!(
            "def parse_{lower}(key, fields, text):\n    start, end = int(fields[1]), int(fields[2])\n    span = text[start:end]\n    if fields[0] != '{t}':\n        return None\n    attrs = {{}}\n    attrs['normalized'] = span.strip().lower()\n    attrs['char_len'] = end - start\n    if not span:\n        raise ValueError(f'empty {t} span at {{key}}')\n    return dict(key=key, type='{t}', start=start,\n                end=end, text=span, **attrs)\n"
        ));
    }
    s.push_str("PARSERS = {\n");
    for t in ANN_TYPES {
        s.push_str(&format!("    '{t}': parse_{},\n", t.to_lowercase()));
    }
    s.push_str("}\n");
    s.push_str(
        "@ray.remote\ndef parse_pair(ann_path, txt_path):\n    text = open(txt_path).read()\n    entities, events = [], []\n    for line in open(ann_path):\n        m = SPAN_RE.match(line)\n        if m:\n            parser = PARSERS[m.group(2)]\n            entities.append(parser(m.group(1), m.groups()[1:], text))\n            continue\n        m = EVENT_RE.match(line)\n        if m:\n            events.append(dict(key=m.group(1), type=m.group(2),\n                               trigger=m.group(3)))\n        else:\n            events.append(dict(key=line.split()[0], type=None,\n                               trigger=None))\n    return dict(text=text, entities=entities, events=events)\n",
    );
    s.push_str(
        "pairs = list(zip(sorted(glob(ANN_GLOB)), sorted(glob(TXT_GLOB))))\nfutures = [parse_pair.remote(a, t) for a, t in pairs]\nparsed = ray.get(futures)\n",
    );
    s
}

/// DICE notebook, cell 3: filter, join, and sentence linking.
pub fn dice_script_cell_wrangle() -> String {
    String::from(
        "def split_sentences(text):\n    bounds, offset = [], 0\n    for sent in SENT_SPLIT.split(text):\n        start = text.index(sent, offset)\n        bounds.append((start, start + len(sent), sent))\n        offset = start + len(sent)\n    return bounds\n\ndef sentence_of(bounds, pos):\n    for idx, (s, e, sent) in enumerate(bounds):\n        if s <= pos < e:\n            return idx, sent\n    return None, None\n\n@ray.remote\ndef wrangle(doc):\n    bounds = split_sentences(doc['text'])\n    table = {e['key']: e for e in doc['entities']}\n    rows = []\n    for e in doc['entities']:\n        idx, sent = sentence_of(bounds, e['start'])\n        rows.append(dict(kind='T', sent=idx, sentence=sent, **e))\n    triggered = [ev for ev in doc['events'] if ev['trigger'] in table]\n    heldout = [ev for ev in doc['events'] if ev['trigger'] not in table]\n    for ev in triggered:\n        ent = table[ev['trigger']]\n        idx, sent = sentence_of(bounds, ent['start'])\n        rows.append(dict(kind='E', sent=idx, sentence=sent,\n                         text=ent['text'], **ev))\n    for ev in heldout:\n        rows.append(dict(kind='E', sent=None, sentence=None,\n                         text=None, **ev))\n    return rows\n\nwrangled = ray.get([wrangle.remote(doc) for doc in parsed])\n",
    )
}

/// DICE notebook, cell 4: collect and write MACCROBAT-EE.
pub fn dice_script_cell_collect() -> String {
    String::from(
        "records = [row for chunk in wrangled for row in chunk]\nframe = pd.DataFrame.from_records(records)\nframe = frame.sort_values(['doc_id', 'sent', 'key'])\nassert frame['key'].notna().all()\nframe.to_json('maccrobat_ee.jsonl', orient='records',\n              lines=True)\nprint(len(frame), 'annotation rows written')\n",
    )
}

/// Full DICE notebook listing.
pub fn dice_script_listing() -> String {
    [
        dice_script_cell_setup(),
        dice_script_cell_parse(),
        dice_script_cell_wrangle(),
        dice_script_cell_collect(),
    ]
    .join("\n")
}

/// DICE Texera workflow definition: operator configuration blocks plus
/// the UDF bodies.
pub fn dice_workflow_listing() -> String {
    let mut s = String::from(
        "workflow: dice-maccrobat-ee\noperators:\n  - id: annotations-scan\n    type: FileScan\n    glob: maccrobat/*.ann\n    format: brat\n    workers: 4\n  - id: sentences-scan\n    type: FileScan\n    glob: maccrobat/*.txt\n    format: sentence-split\n    workers: 1\n",
    );
    for t in ANN_TYPES {
        s.push_str(&format!(
            "  - id: parse-{}\n    type: PythonUDF\n    code: |\n      def parse(row):\n        if row.type != '{t}':\n          return None\n        row.normalized = row.text.strip().lower()\n        return row\n",
            t.to_lowercase()
        ));
    }
    s.push_str(
        "  - id: entities\n    type: Filter\n    predicate: kind == 'T'\n  - id: triggered-events\n    type: Filter\n    predicate: kind == 'E' and trigger is not null\n  - id: heldout-events\n    type: Filter\n    predicate: kind == 'E' and trigger is null\n  - id: resolve-triggers\n    type: HashJoin\n    build: [doc_id, key]\n    probe: [doc_id, trigger]\n    partition: hash(doc_id)\n  - id: normalize-entities\n    type: Projection\n    columns: [doc_id, key, kind, ann_type, start, text]\n  - id: normalize-events\n    type: Projection\n    columns: [doc_id, key, kind, ann_type, start_r, text_r]\n  - id: normalize-heldout\n    type: Projection\n    columns: [doc_id, key, kind, ann_type, null, null]\n  - id: union\n    type: Union\n    ports: 3\n  - id: link-sentences\n    type: PythonUDF\n    blocking_ports: [0]\n    code: |\n      index = defaultdict(list)\n      def on_sentence(row):\n        index[row.doc_id].append((row.sent_idx, row.start,\n                                  row.end, row.sentence))\n      def on_annotation(row):\n        if row.pos is None:\n          return row.with_sentence(None, None)\n        for idx, s, e, sent in index[row.doc_id]:\n          if s <= row.pos < e:\n            return row.with_sentence(idx, sent)\n        raise KeyError(row.key)\n  - id: results\n    type: ViewResults\nlinks:\n  - annotations-scan -> parse: round-robin\n  - parse -> entities: round-robin\n  - parse -> triggered-events: round-robin\n  - parse -> heldout-events: round-robin\n  - entities -> resolve-triggers.0: hash(doc_id)\n  - triggered-events -> resolve-triggers.1: hash(doc_id)\n  - entities -> normalize-entities: round-robin\n  - resolve-triggers -> normalize-events: round-robin\n  - heldout-events -> normalize-heldout: round-robin\n  - normalize-entities -> union.0: round-robin\n  - normalize-events -> union.1: round-robin\n  - normalize-heldout -> union.2: round-robin\n  - sentences-scan -> link-sentences.0: broadcast\n  - union -> link-sentences.1: round-robin\n  - link-sentences -> results: single\n",
    );
    s
}

// ---------------------------------------------------------------------
// WEF
// ---------------------------------------------------------------------

/// WEF notebook listing (short: training loops are library calls).
pub fn wef_script_listing() -> String {
    let mut s = String::from(
        "import torch\nimport pandas as pd\nfrom transformers import AutoModel, AutoTokenizer\nfrom torch.utils.data import DataLoader\ntweets = pd.read_csv('wildfire_tweets.csv')\nFRAMINGS = ['climate_link', 'climate_action',\n            'other_adversity', 'not_relevant']\ntokenizer = AutoTokenizer.from_pretrained('bert-base-uncased')\nencodings = tokenizer(list(tweets.text), truncation=True,\n                      padding=True, return_tensors='pt')\n",
    );
    for f in ["climate_link", "climate_action", "other_adversity", "not_relevant"] {
        s.push_str(&format!(
            "model_{f} = AutoModel.from_pretrained('bert-base-uncased')\nlabels_{f} = tweets.framings.str.contains('{f}').astype(int)\nloader_{f} = DataLoader(list(zip(encodings.input_ids, labels_{f})),\n                        batch_size=16, shuffle=True)\nfor epoch in range(EPOCHS):\n    for batch, labels in loader_{f}:\n        loss = model_{f}(batch, labels=labels).loss\n        loss.backward()\n        optimizer.step()\n        optimizer.zero_grad()\n",
        ));
    }
    s.push_str(
        "EPOCHS = 3\noptimizer = torch.optim.AdamW(model_climate_link.parameters())\ndef evaluate(model, encodings, labels):\n    model.eval()\n    with torch.no_grad():\n        logits = model(encodings.input_ids).logits\n    preds = (torch.sigmoid(logits) > 0.5).int()\n    tp = int(((preds == 1) & (labels == 1)).sum())\n    fp = int(((preds == 1) & (labels == 0)).sum())\n    fn = int(((preds == 0) & (labels == 1)).sum())\n    precision = tp / max(tp + fp, 1)\n    recall = tp / max(tp + fn, 1)\n    return 2 * precision * recall / max(precision + recall, 1e-9)\nscores = {f: evaluate(globals()[f'model_{f}'], encodings,\n                      globals()[f'labels_{f}'])\n          for f in FRAMINGS}\nframe = pd.Series(scores).sort_values(ascending=False)\nframe.to_csv('wef_f1.csv')\nprint(frame)\n",
    );
    s
}

/// WEF Texera workflow listing.
pub fn wef_workflow_listing() -> String {
    let mut s = String::from(
        "workflow: wef-framing-ensemble\noperators:\n  - id: tweets-scan\n    type: CSVScan\n    path: wildfire_tweets.csv\n    workers: 1\n  - id: tokenize\n    type: PythonUDF\n    code: |\n      def tokenize(row):\n        row.tokens = tokenizer(row.text, truncation=True)\n        return row\n",
    );
    for f in ["climate_link", "climate_action", "other_adversity", "not_relevant"] {
        s.push_str(&format!(
            "  - id: train-{f}\n    type: PythonUDF\n    blocking_ports: [0]\n    code: |\n      buffer = []\n      def on_tuple(row):\n        buffer.append((row.tokens, '{f}' in row.framings))\n      def on_finish():\n        model = finetune_bert(buffer, epochs=3)\n        emit(evaluate(model, buffer))\n"
        ));
    }
    s.push_str(
        "  - id: merge-scores\n    type: Union\n    ports: 4\n  - id: results\n    type: ViewResults\nlinks:\n  - tweets-scan -> tokenize: round-robin\n  - tokenize -> train-climate_link: broadcast\n  - tokenize -> train-climate_action: broadcast\n  - tokenize -> train-other_adversity: broadcast\n  - tokenize -> train-not_relevant: broadcast\n  - train-* -> merge-scores: single\n  - merge-scores -> results: single\n",
    );
    s
}

// ---------------------------------------------------------------------
// GOTTA
// ---------------------------------------------------------------------

/// GOTTA notebook listing.
pub fn gotta_script_listing() -> String {
    String::from(
        "import ray\nimport torch\nfrom transformers import BartForConditionalGeneration, BartTokenizer\nfrom torch.utils.data import DataLoader, Dataset\nray.init(address='auto')\nclass TextDataset(Dataset):\n    def __init__(self, rows, tokenizer, max_len=512):\n        self.rows = rows\n        self.tokenizer = tokenizer\n        self.max_len = max_len\n    def __len__(self):\n        return len(self.rows)\n    def __getitem__(self, i):\n        prompt, answer = self.rows[i]\n        enc = self.tokenizer(prompt, truncation=True,\n                             max_length=self.max_len)\n        return enc, answer\nmodel = BartForConditionalGeneration.from_pretrained('gotta-bart')\ntokenizer = BartTokenizer.from_pretrained('gotta-bart')\nmodel_ref = ray.put(model)\ndata = load_paragraphs('fsqa.jsonl')\nquestion_answers = build_cloze_questions(data)\nrows = []\nfor context in data:\n    for qa in question_answers[context.id]:\n        question = qa['question']\n        answers = qa['answers']\n        answer = f'Question: {question} Answers: {answers}'\n        prompt = f'Question: {question} Context: {context.text}'\n        rows.append((prompt, answer))\n@ray.remote(num_cpus=1)\ndef infer(chunk, model_ref):\n    model = ray.get(model_ref)\n    dataset = TextDataset(chunk, tokenizer)\n    val_params = dict(batch_size=8, shuffle=False,\n                      num_workers=0)\n    loader = DataLoader(dataset, **val_params)\n    preds = []\n    for enc, answer in loader:\n        out = model.generate(**enc)\n        preds.append((tokenizer.decode(out[0]), answer))\n    return preds\nchunks = partition(rows, by='paragraph')\npreds = ray.get([infer.remote(c, model_ref) for c in chunks])\nflat = [p for chunk in preds for p in chunk]\ndef normalize(text):\n    text = text.lower().strip()\n    for tok in ['question:', 'answers:', '<s>', '</s>']:\n        text = text.replace(tok, ' ')\n    return ' '.join(text.split())\ndef exact_match(preds, golds):\n    hits = 0\n    for p, g in zip(preds, golds):\n        if normalize(p) == normalize(g):\n            hits += 1\n    return hits / len(preds)\nem = exact_match([p for p, _ in flat], [a for _, a in flat])\nper_paragraph = {}\nfor (p, a), row in zip(flat, rows):\n    pid = row_paragraph_id(row)\n    per_paragraph.setdefault(pid, []).append(\n        normalize(p) == normalize(a))\nworst = sorted(per_paragraph.items(),\n               key=lambda kv: sum(kv[1]) / len(kv[1]))[:5]\nprint(f'exact match: {em:.3f}')\nfor pid, flags in worst:\n    print(pid, f'{sum(flags) / len(flags):.2f}')\n",
    )
}

/// GOTTA Texera workflow listing.
pub fn gotta_workflow_listing() -> String {
    String::from(
        "workflow: gotta-fsqa-inference\noperators:\n  - id: paragraphs-scan\n    type: JSONLScan\n    path: fsqa.jsonl\n    workers: 1\n  - id: build-questions\n    type: PythonUDF\n    code: |\n      def flat_map(row):\n        for qa in cloze_questions(row):\n          question = qa['question']\n          answers = qa['answers']\n          prompt = f'Question: {question} Context: {row.text}'\n          yield dict(paragraph_id=row.id, prompt=prompt,\n                     answer=qa['answer'])\n  - id: bart-generate\n    type: PythonUDF\n    workers: 1\n    init: |\n      model = BartForConditionalGeneration.from_pretrained(\n          'gotta-bart')\n      # Texera ships the checkpoint to each worker once; the\n      # kernel may use every core on the machine.\n    code: |\n      def on_tuple(row):\n        out = model.generate(tokenize(row.prompt))\n        row.prediction = decode(out)\n        return row\n  - id: evaluate\n    type: PythonUDF\n    code: |\n      def normalize(text):\n        text = text.lower().strip()\n        for tok in ['question:', 'answers:']:\n          text = text.replace(tok, ' ')\n        return ' '.join(text.split())\n      def on_tuple(row):\n        row.correct = (normalize(row.prediction) ==\n                       normalize(row.answer))\n        return row\n  - id: aggregate-em\n    type: Aggregate\n    group_by: [paragraph_id]\n    aggregations:\n      - avg(correct) as exact_match\n      - count() as questions\n  - id: results\n    type: ViewResults\nlinks:\n  - paragraphs-scan -> build-questions: round-robin\n  - build-questions -> bart-generate: round-robin\n  - bart-generate -> evaluate: round-robin\n  - evaluate -> aggregate-em: hash(paragraph_id)\n  - aggregate-em -> results: single\n",
    )
}

// ---------------------------------------------------------------------
// KGE
// ---------------------------------------------------------------------

/// KGE notebook listing.
pub fn kge_script_listing() -> String {
    String::from(
        "import argparse\nimport json\nimport time\nimport ray\nt0 = time.time()\nimport numpy as np\nimport pandas as pd\nfrom heapq import heappush, heappushpop\nparser = argparse.ArgumentParser()\nparser.add_argument('--candidates', default='candidates.csv')\nparser.add_argument('--embeddings', default='kge_embeddings.npy')\nparser.add_argument('--entities', default='entity_index.parquet')\nparser.add_argument('--user-id', type=int, required=True)\nparser.add_argument('--top-k', type=int, default=10)\nparser.add_argument('--num-workers', type=int, default=1)\nargs = parser.parse_args()\nray.init(address='auto')\nproducts = pd.read_csv(args.candidates)\nassert {'id', 'name', 'category', 'in_stock'} <= set(products)\nproducts = products[products.in_stock]\nprint(len(products), 'candidates after stock filter')\nembeddings = np.load(args.embeddings, mmap_mode=None)\nentity_index = pd.read_parquet(args.entities)\nrow_of = dict(zip(entity_index.id, entity_index.embedding_row))\nmissing = [i for i in products.id if i not in row_of]\nif missing:\n    raise KeyError(f'{len(missing)} products lack embeddings')\nuser_vec = embeddings[row_of[args.user_id]]\nrelation_vec = embeddings[row_of[PURCHASE_RELATION]]\ntarget = user_vec + relation_vec\nemb_ref = ray.put(embeddings)\nframe = products.merge(entity_index, on='id', how='inner')\n@ray.remote(num_cpus=1)\ndef score_chunk(chunk, emb_ref):\n    emb = ray.get(emb_ref)\n    vecs = emb[chunk.embedding_row.values]\n    dist = np.linalg.norm(target - vecs, axis=1)\n    chunk = chunk.assign(score=-dist)\n    return chunk[['id', 'score']]\nchunks = np.array_split(frame, args.num_workers)\nfutures = [score_chunk.remote(c, emb_ref) for c in chunks]\nscored = pd.concat(ray.get(futures))\nheap = []\nfor row in scored.itertuples():\n    item = (row.score, -row.id)\n    if len(heap) < args.top_k:\n        heappush(heap, item)\n    else:\n        heappushpop(heap, item)\ntop = sorted(heap, reverse=True)\nranked = pd.DataFrame(\n    [(-i, s) for s, i in top], columns=['id', 'score'])\nnames = ranked.merge(entity_index[['id', 'name']], on='id')\nnames['rank'] = range(1, len(names) + 1)\nnames.to_csv('predicted_purchases.csv', index=False)\nfor row in names.itertuples():\n    print(row.rank, row.name, f'{row.score:.4f}')\ndef sanity_check(names):\n    assert names['rank'].is_monotonic_increasing\n    assert names.score.le(0).all()\n    assert names.id.is_unique\n    return True\nsanity_check(names)\nelapsed = time.time() - t0\nsummary = dict(user=args.user_id, candidates=len(products),\n               returned=len(names), seconds=round(elapsed, 2))\nwith open('kge_run_summary.json', 'w') as f:\n    json.dump(summary, f)\nprint(json.dumps(summary))\n",
    )
}

/// KGE Texera workflow listing (the Python-operator version; the Scala
/// swap replaces `embedding-join` with a nine-operator Scala pipeline).
pub fn kge_workflow_listing() -> String {
    String::from(
        "workflow: kge-purchase-prediction\noperators:\n  - id: candidates-scan\n    type: CSVScan\n    path: candidates.csv\n    workers: 4\n  - id: embedding-scan\n    type: ParquetScan\n    path: kge_embeddings.parquet\n    workers: 1\n  - id: stock-filter\n    type: Filter\n    predicate: in_stock == true\n  - id: embedding-join\n    type: PythonUDF\n    blocking_ports: [0]\n    code: |\n      table = {}\n      def on_embedding(row):\n        table[row.id] = row.vector\n      def on_candidate(row):\n        row.vector = table[row.id]\n        return row\n  - id: kge-score\n    type: PythonUDF\n    code: |\n      target = user_vec + relation_vec\n      def on_tuple(row):\n        row.score = -np.linalg.norm(target - row.vector)\n        return row\n  - id: top-k\n    type: PythonUDF\n    workers: 1\n    blocking_ports: [0]\n    code: |\n      heap = []\n      def on_tuple(row):\n        heappush_bounded(heap, (row.score, -row.id), TOP_K)\n      def on_finish():\n        for rank, row in enumerate(sorted(heap, reverse=True), 1):\n          emit(rank=rank, **row)\n  - id: reverse-lookup\n    type: PythonUDF\n    blocking_ports: [0]\n    code: |\n      names = {}\n      def on_name(row):\n        names[row.id] = row.name\n      def on_ranked(row):\n        row.name = names[row.id]\n        return row\n  - id: results\n    type: ViewResults\nlinks:\n  - candidates-scan -> stock-filter: round-robin\n  - embedding-scan -> embedding-join.0: broadcast\n  - stock-filter -> embedding-join.1: hash(id)\n  - embedding-join -> kge-score: round-robin\n  - kge-score -> top-k: single\n  - candidates-scan -> reverse-lookup.0: broadcast\n  - top-k -> reverse-lookup.1: single\n  - reverse-lookup -> results: single\nalternatives:\n  # Swap for Table I: replace embedding-join with the built-in\n  # Scala join pipeline (nine operators, same logic).\n  - id: project-build-keys\n    type: ScalaProjection\n    columns: [id, vector]\n  - id: partition-build\n    type: ScalaHashPartition\n    keys: [id]\n  - id: build-table\n    type: ScalaHashBuild\n    keys: [id]\n  - id: project-probe-keys\n    type: ScalaProjection\n    columns: [id, name, category]\n  - id: partition-probe\n    type: ScalaHashPartition\n    keys: [id]\n  - id: probe-table\n    type: ScalaHashProbe\n    keys: [id]\n  - id: merge-columns\n    type: ScalaMerge\n    suffix: _r\n  - id: validate-join\n    type: ScalaFilter\n    predicate: vector != null\n  - id: to-python\n    type: ArrowExchange\n    target: kge-score\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 12a paper anchors: (task, script LoC, workflow LoC).
    const PAPER: [(&str, usize, usize); 4] = [
        ("DICE", 377, 215),
        ("WEF", 68, 62),
        ("GOTTA", 120, 105),
        ("KGE", 128, 134),
    ];

    fn measured(task: &str) -> (usize, usize) {
        match task {
            "DICE" => (
                count_loc(&dice_script_listing()),
                count_loc(&dice_workflow_listing()),
            ),
            "WEF" => (
                count_loc(&wef_script_listing()),
                count_loc(&wef_workflow_listing()),
            ),
            "GOTTA" => (
                count_loc(&gotta_script_listing()),
                count_loc(&gotta_workflow_listing()),
            ),
            "KGE" => (
                count_loc(&kge_script_listing()),
                count_loc(&kge_workflow_listing()),
            ),
            other => panic!("unknown task {other}"),
        }
    }

    #[test]
    fn loc_ordering_matches_fig12a() {
        // The paper's qualitative result: the workflow needs fewer lines
        // for DICE/WEF/GOTTA, slightly more for KGE.
        for (task, paper_script, paper_wf) in PAPER {
            let (script, wf) = measured(task);
            assert_eq!(
                script > wf,
                paper_script > paper_wf,
                "{task}: measured {script}/{wf}, paper {paper_script}/{paper_wf}"
            );
        }
    }

    #[test]
    fn loc_magnitudes_are_in_paper_range() {
        for (task, paper_script, paper_wf) in PAPER {
            let (script, wf) = measured(task);
            let close = |m: usize, p: usize| {
                let ratio = m as f64 / p as f64;
                (0.5..2.0).contains(&ratio)
            };
            assert!(close(script, paper_script), "{task} script {script} vs {paper_script}");
            assert!(close(wf, paper_wf), "{task} workflow {wf} vs {paper_wf}");
        }
    }

    #[test]
    fn dice_is_the_longest_implementation() {
        let (dice_s, _) = measured("DICE");
        for task in ["WEF", "GOTTA", "KGE"] {
            let (s, w) = measured(task);
            assert!(dice_s > s && dice_s > w);
        }
    }

    #[test]
    fn count_loc_ignores_comments_and_blanks() {
        assert_eq!(count_loc("# comment\n\nx = 1\n  y = 2"), 2);
    }
}
