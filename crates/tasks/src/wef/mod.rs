//! Task 2 — WEF model training (§II-B).
//!
//! Multi-label classification of wildfire tweets into four climate
//! framings by fine-tuning four binary models, one per framing (Fig. 5).
//! The real substrate is [`scriptflow_mlkit::MultiLabelModel`] (TF-IDF +
//! SGD logistic regression); the virtual-time cost model charges what
//! four BERT fine-tuning runs would.
//!
//! The paper runs WEF with **no parallelism** under either paradigm
//! (§IV-E: "Since WEF did not use a distributed training algorithm, each
//! paradigm was executing it with no parallelism"), so both
//! implementations here are single-worker; they differ only in fixed
//! overheads and feeding efficiency, which is why Fig. 13b shows them
//! within 1–3% of each other.

pub mod script;
pub mod workflow;

use scriptflow_datagen::wildfire::{WildfireDataset, FRAMINGS};
use scriptflow_mlkit::logreg::TrainConfig;
use scriptflow_mlkit::MultiLabelModel;

/// Parameters of one WEF run.
#[derive(Debug, Clone)]
pub struct WefParams {
    /// Number of labelled tweets to train on.
    pub tweets: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl WefParams {
    /// A run over `tweets` tweets.
    pub fn new(tweets: usize) -> Self {
        WefParams {
            tweets,
            seed: 0x3EF,
        }
    }

    /// Generate the input dataset.
    pub fn dataset(&self) -> WildfireDataset {
        WildfireDataset::generate(self.tweets, self.seed)
    }

    /// Human-readable config string.
    pub fn config_string(&self) -> String {
        format!("{} tweets", self.tweets)
    }
}

/// The real training + inference both paradigms execute: fit the
/// four-head ensemble and predict on the training tweets.
pub fn train_and_predict(dataset: &WildfireDataset) -> Vec<String> {
    let labels: Vec<&str> = FRAMINGS.to_vec();
    let pairs = dataset.training_pairs();
    let model = MultiLabelModel::fit(&labels, &pairs, TrainConfig::default());
    dataset
        .tweets
        .iter()
        .map(|t| {
            let mut pred = model.predict(&t.text);
            pred.sort_unstable();
            format!("id={}|pred={}", t.id, pred.join(","))
        })
        .collect()
}

/// Training-set subset accuracy (all labels exactly right), used as a
/// sanity check that the real model actually learns.
pub fn subset_accuracy(dataset: &WildfireDataset, predictions: &[String]) -> f64 {
    let mut correct = 0usize;
    for (tweet, pred_row) in dataset.tweets.iter().zip(predictions) {
        let mut gold = tweet.framings.clone();
        gold.sort_unstable();
        let want = format!("id={}|pred={}", tweet.id, gold.join(","));
        if *pred_row == want {
            correct += 1;
        }
    }
    correct as f64 / dataset.tweets.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_learns_the_framings() {
        let params = WefParams::new(200);
        let ds = params.dataset();
        let preds = train_and_predict(&ds);
        // predictions are sorted later by TaskRun; here check raw order.
        let acc = subset_accuracy(&ds, &preds);
        assert!(acc > 0.6, "subset accuracy {acc}");
    }

    #[test]
    fn deterministic() {
        let params = WefParams::new(100);
        let a = train_and_predict(&params.dataset());
        let b = train_and_predict(&params.dataset());
        assert_eq!(a, b);
    }
}
