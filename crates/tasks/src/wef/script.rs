//! WEF under the script paradigm: a sequential fine-tuning notebook.

use std::sync::Arc;

use scriptflow_core::{Calibration, Paradigm};
use scriptflow_datagen::wildfire::{WildfireDataset, FRAMINGS};
use scriptflow_notebook::{Cell, CellError, Kernel, Notebook};
use scriptflow_raysim::RayConfig;
use scriptflow_simcluster::ClusterSpec;

use super::{train_and_predict, WefParams};
use crate::common::TaskRun;
use crate::listing;

/// Run WEF as a notebook: load tweets, fine-tune the four heads one
/// after another, evaluate.
pub fn run_script(params: &WefParams, cal: &Calibration) -> Result<TaskRun, CellError> {
    let dataset = Arc::new(params.dataset());
    let mut kernel = Kernel::new(&ClusterSpec::paper_cluster(), RayConfig::with_cpus(1));

    let mut nb = Notebook::new("wef");
    // Cell 1: load + tokenize.
    {
        let ds = dataset.clone();
        nb.push(
            Cell::new("load", listing::wef_script_listing(), move |k| {
                k.set("tweets", ds.clone());
                Ok(())
            })
            .writes(&["tweets"]),
        );
    }
    // Cells 2..5: one fine-tuning run per framing, strictly sequential
    // (the script loops over heads; there is no parallelism).
    for framing in FRAMINGS {
        let per_epoch = cal.wef_work_per_tweet_epoch;
        let epochs = cal.wef_epochs as u64;
        let load = cal.wef_model_load;
        let n = params.tweets as u64;
        nb.push(
            Cell::new(
                format!("train_{framing}"),
                format!("model_{framing} = finetune(tweets, '{framing}')"),
                move |k| {
                    k.advance(load);
                    k.advance(per_epoch * n * epochs);
                    Ok(())
                },
            )
            .reads(&["tweets"])
            .writes(&[&format!("model_{framing}")]),
        );
    }
    // Cell 6: predict + evaluate (the real computation happens here; all
    // four heads train inside the shared mlkit call so outputs are
    // identical across paradigms).
    {
        let ds = dataset.clone();
        nb.push(
            Cell::new("evaluate", "scores = evaluate(models, tweets)", move |k| {
                let rows = train_and_predict(&ds);
                k.set("predictions", rows);
                Ok(())
            })
            .reads(&["tweets"])
            .writes(&["predictions"]),
        );
    }

    nb.run_all(&mut kernel)?;
    let output = (*kernel.get::<Vec<String>>("predictions")?).clone();
    let loc = listing::count_loc(&listing::wef_script_listing());
    let cells = nb.len();
    Ok(TaskRun::new(
        "WEF",
        Paradigm::Script,
        params.config_string(),
        kernel.now(),
        1,
        loc,
        cells,
        output,
    ))
}

/// Convenience: the dataset a run used (for evaluation in examples).
pub fn dataset_of(params: &WefParams) -> WildfireDataset {
    params.dataset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_time_matches_fig13b_anchor() {
        // Paper: 1285.82 s at 200 tweets.
        let run = run_script(&WefParams::new(200), &Calibration::paper()).unwrap();
        let secs = run.seconds();
        assert!((1230.0..1340.0).contains(&secs), "WEF@200 = {secs}");
    }

    #[test]
    fn linear_scaling() {
        let cal = Calibration::paper();
        let a = run_script(&WefParams::new(200), &cal).unwrap().seconds();
        let b = run_script(&WefParams::new(400), &cal).unwrap().seconds();
        let ratio = b / a;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn output_present_and_sorted() {
        let run = run_script(&WefParams::new(50), &Calibration::paper()).unwrap();
        assert_eq!(run.output.len(), 50);
        let mut sorted = run.output.clone();
        sorted.sort_unstable();
        assert_eq!(run.output, sorted);
    }
}
