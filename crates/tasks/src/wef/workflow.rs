//! WEF under the GUI-workflow paradigm.
//!
//! One tokenize operator feeds a single blocking "Train Ensemble"
//! operator that fine-tunes all four heads when its input completes
//! (mirroring the paper's non-distributed training), then emits
//! per-tweet predictions.

use std::sync::Arc;

use scriptflow_core::{BackendKind, Calibration, Paradigm};
use scriptflow_datakit::{DataType, Schema, Tuple, Value};
use scriptflow_simcluster::{ClusterSpec, SimDuration};
use scriptflow_workflow::ops::{ScanOp, SinkOp, StatefulUdfOp, UdfOp};
use scriptflow_workflow::{
    CostProfile, EngineConfig, ExecBackend, PartitionStrategy, ResultCache, WorkflowBuilder,
    WorkflowResult,
};

use super::WefParams;
use crate::common::{BackendRun, TaskRun};
use crate::listing;

/// Build the WEF workflow DAG; returns it with the results handle.
pub fn build_wef_workflow(
    params: &WefParams,
    cal: &Calibration,
) -> WorkflowResult<(
    scriptflow_workflow::Workflow,
    scriptflow_workflow::ops::SinkHandle,
)> {
    let dataset = Arc::new(params.dataset());

    let out_schema = Schema::of(&[("row", DataType::Str)]);

    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("Tweets Scan", dataset.batch())), 1);
    let tokenize = b.add(
        Arc::new(UdfOp::with_schema_fn(
            "Tokenize",
            1,
            |inputs| Ok((*inputs[0]).clone()),
            |t, _, out| {
                out.emit(t);
                Ok(())
            },
        )),
        1,
    );

    // Train Ensemble: blocking; buffers all tweets, then fine-tunes the
    // four heads and emits predictions. The per-tuple cost is the full
    // 4-head × epochs fine-tuning work per tweet, discounted by Texera's
    // feeding efficiency (Fig. 13b's 1–3%).
    let per_tweet = cal
        .wef_work_per_tweet_epoch
        .scale(4.0 * cal.wef_epochs as f64 * cal.wef_wf_train_discount);
    let ds_for_train = dataset.clone();
    let emit_schema = out_schema.clone();
    let train = b.add(
        Arc::new(
            StatefulUdfOp::new(
                "Train Ensemble",
                1,
                (*out_schema).clone(),
                || 0usize,
                |seen: &mut usize, _t, _, _out| {
                    *seen += 1;
                    Ok(())
                },
                move |seen, _, out| {
                    if *seen == 0 {
                        return Ok(());
                    }
                    debug_assert_eq!(*seen, ds_for_train.tweets.len());
                    for row in super::train_and_predict(&ds_for_train) {
                        out.emit(Tuple::new_unchecked(
                            emit_schema.clone(),
                            vec![Value::Str(row)],
                        ));
                    }
                    *seen = 0;
                    Ok(())
                },
            )
            .with_blocking_ports(vec![0])
            .with_cost(CostProfile {
                per_tuple: per_tweet,
                setup: cal.wef_model_load,
                ..CostProfile::default()
            }),
        ),
        1,
    );

    let sink_op = SinkOp::new("Results");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);

    b.connect(scan, tokenize, 0, PartitionStrategy::RoundRobin);
    b.connect(tokenize, train, 0, PartitionStrategy::Single);
    b.connect(train, sink, 0, PartitionStrategy::Single);

    Ok((b.build()?, handle))
}

/// The engine configuration WEF runs under. The per-tuple serde cost is
/// pinned: the blocking trainer amortizes Texera's per-batch overhead
/// differently than the streaming tasks.
pub fn engine_config(cal: &Calibration) -> EngineConfig {
    EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        batch_size: cal.wf_batch_size,
        serde_per_tuple: SimDuration::from_micros(200),
        pipelining: cal.wf_pipelining,
        columnar: cal.wf_columnar,
        columnar_discount: cal.wf_columnar_discount,
        memory_budget: cal.wf_memory_budget,
        spill_write_per_block: cal.wf_spill_write_per_block,
        spill_read_per_block: cal.wf_spill_read_per_block,
        // A fresh per-run cache: records and publishes, but never hits.
        // Warm reruns come from `run_workflow_cached`, which shares one
        // cache across invocations.
        result_cache: cal.wf_result_cache.then(|| ResultCache::for_run(cal.wf_cache_byte_budget)),
        cache_read_per_block: cal.wf_cache_read_per_block,
        ..EngineConfig::default()
    }
}

/// Run WEF on the simulated workflow engine.
pub fn run_workflow(params: &WefParams, cal: &Calibration) -> WorkflowResult<TaskRun> {
    Ok(run_workflow_on(params, cal, BackendKind::Sim)?.run)
}

/// Run WEF on an explicitly chosen execution backend.
pub fn run_workflow_on(
    params: &WefParams,
    cal: &Calibration,
    kind: BackendKind,
) -> WorkflowResult<BackendRun> {
    run_with_config(params, cal, kind, engine_config(cal))
}

/// Run WEF serving and recording through a shared result cache; warm
/// reruns replay unedited operators from sealed segments.
pub fn run_workflow_cached(
    params: &WefParams,
    cal: &Calibration,
    kind: BackendKind,
    cache: &Arc<ResultCache>,
) -> WorkflowResult<BackendRun> {
    let config = engine_config(cal).with_result_cache(cache.clone());
    run_with_config(params, cal, kind, config)
}

fn run_with_config(
    params: &WefParams,
    cal: &Calibration,
    kind: BackendKind,
    config: EngineConfig,
) -> WorkflowResult<BackendRun> {
    let (wf, handle) = build_wef_workflow(params, cal)?;
    let operator_count = wf.operator_count();
    let total_workers = wf.total_workers();

    let engine = ExecBackend::of_kind(kind, config).run(&wf, &handle)?;

    let output: Vec<String> = engine
        .rows
        .iter()
        .map(|t| t.get_str("row").expect("schema").to_owned())
        .collect();

    let run = TaskRun::new(
        "WEF",
        Paradigm::Workflow,
        params.config_string(),
        engine.makespan,
        total_workers,
        listing::count_loc(&listing::wef_workflow_listing()),
        operator_count,
        output,
    );
    Ok(BackendRun::from_engine(run, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wef::script::run_script;

    #[test]
    fn workflow_matches_script_output() {
        let params = WefParams::new(80);
        let cal = Calibration::paper();
        let wf = run_workflow(&params, &cal).unwrap();
        let sc = run_script(&params, &cal).unwrap();
        assert_eq!(wf.output, sc.output);
    }

    #[test]
    fn both_paradigms_within_a_few_percent() {
        // Fig. 13b: Texera 1–3% faster, never slower.
        let cal = Calibration::paper();
        let params = WefParams::new(200);
        let wf = run_workflow(&params, &cal).unwrap().seconds();
        let sc = run_script(&params, &cal).unwrap().seconds();
        assert!(wf < sc, "workflow {wf} should edge out script {sc}");
        let gap = (sc - wf) / sc;
        assert!(gap < 0.06, "gap {gap} too large for Fig. 13b");
    }
}
