use std::sync::Arc;
use scriptflow_datakit::{Batch, DataType, Schema, Value};
use scriptflow_simcluster::ClusterSpec;
use scriptflow_workflow::ops::{ScanOp, SinkOp, UdfOp};
use scriptflow_workflow::{CostProfile, EngineConfig, PartitionStrategy, SimExecutor, WorkflowBuilder};

fn main() {
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(schema, (0..6800i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let mk = |name: &str| {
        Arc::new(UdfOp::with_schema_fn(name, 1, |i| Ok((*i[0]).clone()), |t, _, o| { o.emit(t); Ok(()) })
            .with_cost(CostProfile { per_tuple: scriptflow_simcluster::SimDuration::from_micros(18_000), ..CostProfile::default() }))
    };
    let a = b.add(mk("a"), 1);
    let c = b.add(mk("c"), 1);
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, a, 0, PartitionStrategy::RoundRobin);
    b.connect(a, c, 0, PartitionStrategy::RoundRobin);
    b.connect(c, sink, 0, PartitionStrategy::Single);
    let wf = b.build().unwrap();
    let cfg = EngineConfig { cluster: ClusterSpec::paper_cluster(), batch_size: 400, ..EngineConfig::default() };
    let res = SimExecutor::new(cfg).run(&wf).unwrap();
    println!("two equal 18ms stages over 6800 tuples: {:.2}s (expect ~130 pipelined, ~250 serialized)", res.makespan.as_secs_f64());
}
