//! One execution surface over both engines.
//!
//! The crate ships two executors for the same [`Workflow`] DAG: the
//! deterministic virtual-clock [`SimExecutor`] behind the paper figures,
//! and the pooled [`LiveExecutor`] that runs the identical operators on
//! real OS threads. They grew different result shapes
//! ([`crate::exec_sim::SimRunResult`] vs
//! [`crate::exec_live::LiveRunResult`]), so every caller that wanted to
//! offer both had to duplicate construction and result handling.
//!
//! [`ExecBackend`] collapses that: pick a backend (usually from a
//! [`BackendKind`] threaded down from a `--backend` flag), call
//! [`ExecBackend::run`], and get one [`EngineRun`] — output rows, a
//! [`ProgressTrace`] that always ends with a terminal sample, unified
//! [`RunMetrics`], and the backend-specific extras (`wall_clock`,
//! [`PoolStats`]) as `Option`s.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use scriptflow_core::BackendKind;
//! use scriptflow_datakit::{Batch, DataType, Schema, Value};
//! use scriptflow_workflow::ops::{ScanOp, SinkOp};
//! use scriptflow_workflow::{EngineConfig, ExecBackend, PartitionStrategy, WorkflowBuilder};
//!
//! let schema = Schema::of(&[("id", DataType::Int)]);
//! let batch = Batch::from_rows(schema, (0..6).map(|i| vec![Value::Int(i)]).collect()).unwrap();
//! let mut b = WorkflowBuilder::new();
//! let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
//! let sink_op = SinkOp::new("sink");
//! let handle = sink_op.handle();
//! let sink = b.add(Arc::new(sink_op), 1);
//! b.connect(scan, sink, 0, PartitionStrategy::Single);
//! let wf = b.build().unwrap();
//!
//! for kind in BackendKind::ALL {
//!     let run = ExecBackend::of_kind(kind, EngineConfig::default())
//!         .run(&wf, &handle)
//!         .unwrap();
//!     assert_eq!(run.kind, kind);
//!     assert_eq!(run.rows.len(), 6);
//!     assert!(run.trace.completion_sample().is_some());
//! }
//! ```

use std::time::Duration;

use scriptflow_core::BackendKind;
use scriptflow_datakit::Tuple;
use scriptflow_simcluster::SimTime;

use crate::cost::EngineConfig;
use crate::dag::Workflow;
use crate::exec_live::{LiveExecutor, PoolStats};
use crate::exec_sim::SimExecutor;
use crate::metrics::RunMetrics;
use crate::operator::WorkflowResult;
use crate::ops::SinkHandle;
use crate::trace::ProgressTrace;

/// The unified result of one workflow run on either backend.
///
/// Normalizes [`crate::exec_sim::SimRunResult`] and
/// [`crate::exec_live::LiveRunResult`] into one shape so callers
/// (task drivers, study experiments, `repro`/`bench_engine`) handle
/// both backends with the same code path.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Which backend produced the run.
    pub kind: BackendKind,
    /// Rows collected from the sink handle passed to
    /// [`ExecBackend::run`] (empty for [`ExecBackend::run_detached`]).
    pub rows: Vec<Tuple>,
    /// Completion time on the backend's own clock: virtual seconds for
    /// [`BackendKind::Sim`], measured wall-clock mapped onto the same
    /// axis for [`BackendKind::Live`] (see [`BackendKind::time_unit`]).
    pub makespan: SimTime,
    /// Measured host time; `None` for the simulator, whose wall-clock
    /// cost is incidental.
    pub wall_clock: Option<Duration>,
    /// Per-operator instrumentation counters, identical in shape across
    /// backends.
    pub metrics: RunMetrics,
    /// Per-operator progress samples. Both backends guarantee at least
    /// the terminal sample, so `trace.completion_sample()` works on any
    /// successful [`EngineRun`].
    pub trace: ProgressTrace,
    /// Pool scheduling counters; `Some` only for the pooled live
    /// backend.
    pub pool: Option<PoolStats>,
    /// Faulted quanta replayed under the [`EngineConfig::retry`] budget
    /// (0 with the default disabled policy). The simulator counts
    /// replayed virtual quanta; the live pool counts real re-runs.
    pub retries_attempted: u64,
    /// Retried workers/tasks that still finished cleanly.
    pub retries_succeeded: u64,
    /// Whole input batches dropped by zone-map checks, summed across
    /// operators (0 unless [`EngineConfig::columnar`] is enabled and a
    /// batch's min/max statistics proved no row could pass a filter or
    /// join probe).
    pub batches_skipped: u64,
    /// Compressed spill blocks written, summed across operators (0
    /// unless [`EngineConfig::memory_budget`] — or a per-operator
    /// override — forced a blocking operator past its budget).
    pub spilled_blocks: u64,
    /// Compressed bytes across all spilled blocks.
    pub spilled_bytes: u64,
    /// Spilled blocks read back (partition joins, run merges).
    pub spill_reads: u64,
    /// Operators served straight from the result cache, summed across
    /// the DAG (0 unless [`EngineConfig::result_cache`] is set and a
    /// prior run published the fingerprint).
    pub cache_hits: u64,
    /// Operators that ran under a result cache, missed, and recorded
    /// their output for publication.
    pub cache_misses: u64,
    /// Compressed bytes decoded from the cache to serve the hits.
    pub cache_bytes: u64,
    /// Compressed bytes this run added to the cache (0 for dirty runs —
    /// only fault-free, retry-free runs publish).
    pub cache_published: u64,
    /// Entries the cache's byte budget evicted while this run's
    /// recordings were committed (0 when the cache is unbounded).
    pub cache_evictions: u64,
}

impl EngineRun {
    /// Completion time in the backend's seconds (virtual or wall-clock;
    /// [`BackendKind::time_unit`] names which).
    pub fn seconds(&self) -> f64 {
        match (self.kind, self.wall_clock) {
            (BackendKind::Live, Some(elapsed)) => elapsed.as_secs_f64(),
            _ => self.makespan.as_secs_f64(),
        }
    }
}

/// A builder-selected execution backend presenting one `run` surface
/// over [`SimExecutor`] and the pooled [`LiveExecutor`].
pub enum ExecBackend {
    /// The deterministic virtual-clock simulator.
    Sim(SimExecutor),
    /// The pooled live executor (real OS threads, measured wall-clock).
    Live(LiveExecutor),
}

impl ExecBackend {
    /// Simulator backend over `config`.
    pub fn sim(config: EngineConfig) -> Self {
        ExecBackend::Sim(SimExecutor::new(config))
    }

    /// Pooled live backend reusing `config`'s edge batch size, retry
    /// policy, columnar flag, memory budget, and result cache (the only
    /// [`EngineConfig`] knobs with a live analogue; virtual cost model
    /// fields have no wall-clock meaning).
    pub fn live(config: &EngineConfig) -> Self {
        let mut exec = LiveExecutor::new(config.batch_size.max(1))
            .with_retry(config.retry.clone())
            .with_columnar(config.columnar)
            .with_memory_budget(config.memory_budget);
        if let Some(cache) = config.result_cache.clone() {
            exec = exec.with_result_cache(cache);
        }
        ExecBackend::Live(exec)
    }

    /// Backend for a [`BackendKind`], the single selection point the
    /// `--backend` flags in `repro` and `bench_engine` both route
    /// through.
    pub fn of_kind(kind: BackendKind, config: EngineConfig) -> Self {
        match kind {
            BackendKind::Sim => ExecBackend::sim(config),
            BackendKind::Live => ExecBackend::live(&config),
        }
    }

    /// Wrap an already-configured executor (custom pool size, faults,
    /// trace interval, …).
    pub fn from_live(exec: LiveExecutor) -> Self {
        ExecBackend::Live(exec)
    }

    /// Wrap an already-configured simulator (pauses, trace interval, …).
    pub fn from_sim(exec: SimExecutor) -> Self {
        ExecBackend::Sim(exec)
    }

    /// Which backend this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            ExecBackend::Sim(_) => BackendKind::Sim,
            ExecBackend::Live(_) => BackendKind::Live,
        }
    }

    /// Execute `wf` and collect the rows that reached `sink`.
    ///
    /// The handle is cleared first, so re-running the same built
    /// workflow (e.g. once per backend) never double-counts rows.
    pub fn run(&self, wf: &Workflow, sink: &SinkHandle) -> WorkflowResult<EngineRun> {
        sink.clear();
        let mut run = self.run_detached(wf)?;
        run.rows = sink.results();
        Ok(run)
    }

    /// Execute `wf` without collecting sink rows (`rows` stays empty).
    /// For callers that only want timing/metrics, e.g. `bench_engine`.
    pub fn run_detached(&self, wf: &Workflow) -> WorkflowResult<EngineRun> {
        let (_, result) = self.run_observed(wf);
        result
    }

    /// Execute `wf`, handing the progress trace back even on failure —
    /// the union of [`SimExecutor::run_observed`] and
    /// [`LiveExecutor::run_observed`]. `rows` stays empty; snapshot the
    /// sink handle afterwards if needed.
    pub fn run_observed(&self, wf: &Workflow) -> (ProgressTrace, WorkflowResult<EngineRun>) {
        match self {
            ExecBackend::Sim(exec) => {
                let (trace, result) = exec.run_observed(wf);
                let result = result.map(|res| EngineRun {
                    kind: BackendKind::Sim,
                    rows: Vec::new(),
                    makespan: res.makespan,
                    wall_clock: None,
                    batches_skipped: res
                        .metrics
                        .operators
                        .iter()
                        .map(|m| m.batches_skipped)
                        .sum(),
                    spilled_blocks: res
                        .metrics
                        .operators
                        .iter()
                        .map(|m| m.spilled_blocks)
                        .sum(),
                    spilled_bytes: res.metrics.operators.iter().map(|m| m.spilled_bytes).sum(),
                    spill_reads: res.metrics.operators.iter().map(|m| m.spill_reads).sum(),
                    cache_hits: res.metrics.operators.iter().map(|m| m.cache_hits).sum(),
                    cache_misses: res.metrics.operators.iter().map(|m| m.cache_misses).sum(),
                    cache_bytes: res.metrics.operators.iter().map(|m| m.cache_bytes).sum(),
                    cache_published: res.cache_published,
                    cache_evictions: res
                        .metrics
                        .operators
                        .iter()
                        .map(|m| m.cache_evictions)
                        .sum(),
                    metrics: res.metrics,
                    trace: res.trace,
                    pool: None,
                    retries_attempted: res.retries_attempted,
                    retries_succeeded: res.retries_succeeded,
                });
                (trace, result)
            }
            ExecBackend::Live(exec) => {
                let (trace, result) = exec.run_observed(wf);
                let result = result.map(|res| EngineRun {
                    kind: BackendKind::Live,
                    rows: Vec::new(),
                    makespan: res.metrics.makespan,
                    wall_clock: Some(res.elapsed),
                    batches_skipped: res.pool.as_ref().map_or(0, |p| p.batches_skipped),
                    spilled_blocks: res.pool.as_ref().map_or(0, |p| p.spilled_blocks),
                    spilled_bytes: res.pool.as_ref().map_or(0, |p| p.spilled_bytes),
                    spill_reads: res.pool.as_ref().map_or(0, |p| p.spill_reads),
                    cache_hits: res.pool.as_ref().map_or(0, |p| p.cache_hits),
                    cache_misses: res.pool.as_ref().map_or(0, |p| p.cache_misses),
                    cache_bytes: res.pool.as_ref().map_or(0, |p| p.cache_bytes),
                    cache_published: res.cache_published,
                    cache_evictions: res.pool.as_ref().map_or(0, |p| p.cache_evictions),
                    metrics: res.metrics,
                    trace: res.trace,
                    retries_attempted: res.pool.as_ref().map_or(0, |p| p.retries_attempted),
                    retries_succeeded: res.pool.as_ref().map_or(0, |p| p.retries_succeeded),
                    pool: res.pool,
                });
                (trace, result)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::metrics::OperatorState;
    use crate::ops::{FilterOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, DataType, Schema, Value};
    use std::sync::Arc;

    fn build_wf(n: i64) -> (Workflow, SinkHandle) {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let batch =
            Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap();
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 2);
        let filt = b.add(
            Arc::new(FilterOp::new("keep_even", |t| {
                Ok(t.get_int("id").unwrap() % 2 == 0)
            })),
            2,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
        b.connect(filt, sink, 0, PartitionStrategy::Single);
        (b.build().unwrap(), handle)
    }

    #[test]
    fn both_backends_agree_on_rows() {
        let (wf, handle) = build_wf(100);
        let sim = ExecBackend::of_kind(BackendKind::Sim, EngineConfig::default())
            .run(&wf, &handle)
            .unwrap();
        let live = ExecBackend::of_kind(BackendKind::Live, EngineConfig::default())
            .run(&wf, &handle)
            .unwrap();
        assert_eq!(sim.kind, BackendKind::Sim);
        assert_eq!(live.kind, BackendKind::Live);
        assert_eq!(sim.rows.len(), 50);
        assert_eq!(live.rows.len(), 50);
        assert!(sim.wall_clock.is_none() && sim.pool.is_none());
        assert!(live.wall_clock.is_some() && live.pool.is_some());
        assert!(sim.seconds() > 0.0);
        assert!(live.seconds() > 0.0);
    }

    #[test]
    fn run_clears_stale_sink_rows() {
        let (wf, handle) = build_wf(10);
        let backend = ExecBackend::sim(EngineConfig::default());
        backend.run(&wf, &handle).unwrap();
        let again = backend.run(&wf, &handle).unwrap();
        assert_eq!(again.rows.len(), 5, "rerun must not double-count");
    }

    #[test]
    fn traces_end_with_terminal_sample_on_both_backends() {
        let (wf, _) = build_wf(40);
        for kind in BackendKind::ALL {
            let run = ExecBackend::of_kind(kind, EngineConfig::default())
                .run_detached(&wf)
                .unwrap();
            let (_, snaps) = run
                .trace
                .samples
                .last()
                .unwrap_or_else(|| panic!("{kind} trace must not be empty"));
            assert!(
                snaps.iter().all(|s| s.state == OperatorState::Completed),
                "{kind} terminal sample must show every operator Completed"
            );
        }
    }

    #[test]
    fn retry_counts_surface_on_both_backends() {
        use crate::retry::{RetryConfig, RetryPolicy};
        use std::sync::atomic::{AtomicU64, Ordering};
        for kind in BackendKind::ALL {
            let calls = Arc::new(AtomicU64::new(0));
            let seen = calls.clone();
            let schema = Schema::of(&[("id", DataType::Int)]);
            let batch =
                Batch::from_rows(schema, (0..30).map(|i| vec![Value::Int(i)]).collect()).unwrap();
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
            let flaky = b.add(
                Arc::new(FilterOp::new("flaky", move |t| {
                    let _ = t.get_int("id").unwrap();
                    // One transient decode error on the 10th serviced
                    // tuple; replays (fresh counts) pass.
                    if seen.fetch_add(1, Ordering::SeqCst) + 1 == 10 {
                        Err(scriptflow_datakit::DataError::Decode {
                            line: 0,
                            message: "transient".into(),
                        })
                    } else {
                        Ok(true)
                    }
                })),
                1,
            );
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(scan, flaky, 0, PartitionStrategy::RoundRobin);
            b.connect(flaky, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let config = EngineConfig {
                retry: RetryConfig::uniform(RetryPolicy::default()),
                ..EngineConfig::default()
            };
            let run = ExecBackend::of_kind(kind, config)
                .run(&wf, &handle)
                .unwrap();
            assert_eq!(
                run.rows.len(),
                30,
                "{kind}: retry must keep delivery exactly-once"
            );
            assert!(run.retries_attempted >= 1, "{kind} must report the replay");
            assert!(run.retries_succeeded >= 1, "{kind} must report the salvage");
        }
    }

    #[test]
    fn columnar_config_reaches_both_backends() {
        use scriptflow_datakit::CmpOp;
        for kind in BackendKind::ALL {
            let build = |()| {
                let schema = Schema::of(&[("id", DataType::Int)]);
                let batch =
                    Batch::from_rows(schema, (0..300).map(|i| vec![Value::Int(i)]).collect())
                        .unwrap();
                let mut b = WorkflowBuilder::new();
                let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
                let filt = b.add(
                    Arc::new(FilterOp::cmp("sel", "id", CmpOp::Lt, Value::Int(20))),
                    1,
                );
                let sink_op = SinkOp::new("sink");
                let handle = sink_op.handle();
                let sink = b.add(Arc::new(sink_op), 1);
                b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
                b.connect(filt, sink, 0, PartitionStrategy::Single);
                (b.build().unwrap(), handle)
            };
            let run_mode = |columnar: bool| {
                let (wf, handle) = build(());
                let config = EngineConfig {
                    batch_size: 32,
                    columnar,
                    ..EngineConfig::default()
                };
                ExecBackend::of_kind(kind, config)
                    .run(&wf, &handle)
                    .unwrap()
            };
            let row = run_mode(false);
            let col = run_mode(true);
            let key = |r: &EngineRun| {
                let mut v: Vec<String> = r.rows.iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            };
            assert_eq!(key(&row), key(&col), "{kind}: modes must agree on rows");
            assert_eq!(row.batches_skipped, 0, "{kind}: row mode never skips");
            assert!(
                col.batches_skipped > 0,
                "{kind}: columnar mode must prune batches past id=20"
            );
        }
    }

    #[test]
    fn spill_counters_surface_on_both_backends() {
        use crate::ops::HashJoinOp;
        for kind in BackendKind::ALL {
            let build = || {
                let build_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
                let build_rows = Batch::from_rows(
                    build_schema,
                    (0..70i64)
                        .map(|i| vec![Value::Int(i % 11), Value::Str(format!("b{i}"))])
                        .collect(),
                )
                .unwrap();
                let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
                let probe_rows = Batch::from_rows(
                    probe_schema,
                    (0..50i64)
                        .map(|i| vec![Value::Int(i), Value::Int(i % 14)])
                        .collect(),
                )
                .unwrap();
                let mut b = WorkflowBuilder::new();
                let bs = b.add(Arc::new(ScanOp::new("build", build_rows)), 1);
                let ps = b.add(Arc::new(ScanOp::new("probe", probe_rows)), 1);
                let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 1);
                let sink_op = SinkOp::new("sink");
                let handle = sink_op.handle();
                let sink = b.add(Arc::new(sink_op), 1);
                b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
                b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
                b.connect(join, sink, 0, PartitionStrategy::Single);
                (b.build().unwrap(), handle)
            };
            let run_budget = |budget: Option<usize>| {
                let (wf, handle) = build();
                let config = EngineConfig {
                    batch_size: 16,
                    memory_budget: budget,
                    ..EngineConfig::default()
                };
                ExecBackend::of_kind(kind, config).run(&wf, &handle).unwrap()
            };
            let unbounded = run_budget(None);
            let bounded = run_budget(Some(256));
            let key = |r: &EngineRun| {
                let mut v: Vec<String> = r.rows.iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            };
            assert_eq!(
                key(&unbounded),
                key(&bounded),
                "{kind}: spilling must not change rows"
            );
            assert_eq!(unbounded.spilled_blocks, 0, "{kind}: no budget, no spill");
            assert!(bounded.spilled_blocks > 0, "{kind}: tiny budget must spill");
            assert!(bounded.spilled_bytes > 0, "{kind}");
            assert!(bounded.spill_reads > 0, "{kind}");
            let m = bounded.metrics.by_name("join").unwrap();
            assert_eq!(m.spilled_blocks, bounded.spilled_blocks, "{kind}");
        }
    }

    #[test]
    fn result_cache_serves_warm_reruns_on_both_backends() {
        use crate::cache::ResultCache;
        for kind in BackendKind::ALL {
            let cache = Arc::new(ResultCache::new());
            let config = || EngineConfig::default().with_result_cache(cache.clone());
            let key = |r: &EngineRun| {
                let mut v: Vec<String> = r.rows.iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            };

            let (wf, handle) = build_wf(100);
            let cold = ExecBackend::of_kind(kind, config()).run(&wf, &handle).unwrap();
            assert_eq!(cold.cache_hits, 0, "{kind}: cold run cannot hit");
            assert!(cold.cache_misses > 0, "{kind}: cold run must record");
            assert!(cold.cache_published > 0, "{kind}: clean cold run publishes");

            // A separately built but content-identical workflow hits.
            let (wf2, handle2) = build_wf(100);
            let warm = ExecBackend::of_kind(kind, config())
                .run(&wf2, &handle2)
                .unwrap();
            assert!(warm.cache_hits > 0, "{kind}: warm rerun must hit");
            assert!(warm.cache_bytes > 0, "{kind}: hits decode real bytes");
            assert_eq!(warm.cache_published, 0, "{kind}: nothing new to publish");
            assert_eq!(key(&cold), key(&warm), "{kind}: hit must reproduce rows");

            // Cache off (default config): same rows, no counters.
            let (wf3, handle3) = build_wf(100);
            let off = ExecBackend::of_kind(kind, EngineConfig::default())
                .run(&wf3, &handle3)
                .unwrap();
            assert_eq!(off.cache_hits + off.cache_misses + off.cache_published, 0);
            assert_eq!(key(&off), key(&warm), "{kind}: cache must not change rows");
        }
    }

    #[test]
    fn run_observed_surfaces_trace_on_sim_failure() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let batch =
            Batch::from_rows(schema, (0..20).map(|i| vec![Value::Int(i)]).collect()).unwrap();
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("bad", |t| {
                if t.get_int("id").unwrap() >= 10 {
                    Err(scriptflow_datakit::DataError::Decode {
                        line: 10,
                        message: "boom".into(),
                    })
                } else {
                    Ok(true)
                }
            })),
            1,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();

        let backend = ExecBackend::sim(EngineConfig::default());
        let (trace, result) = backend.run_observed(&wf);
        assert!(result.is_err(), "erroring filter must fail the run");
        let (_, snaps) = trace.samples.last().expect("failed run keeps its trace");
        assert!(
            snaps
                .iter()
                .any(|s| s.name == "bad" && s.state == OperatorState::Failed),
            "terminal sample pins the failure to the erroring operator"
        );
    }
}
