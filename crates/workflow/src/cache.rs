//! Fingerprint-keyed result cache: incremental re-execution across
//! edits, backends, and tenants.
//!
//! Every built [`Workflow`] node carries a Merkle-style
//! [`OpFingerprint`] — a content address of "this operator's spec plus
//! everything upstream of it". The [`ResultCache`] maps fingerprints to
//! sealed operator outputs, stored as compressed block-store
//! [`Segment`]s (the same representation the spill path uses), so a
//! cached result costs compressed bytes, not live tuples.
//!
//! Execution is cache-aware through **planning**, not through changes to
//! either engine's inner loop. [`prepare`] rewrites a workflow before it
//! runs:
//!
//! * a needed node whose fingerprint has a sealed entry is **served** —
//!   replaced by a [`CacheReplayOp`] source that decodes the segment and
//!   emits the recorded rows (the simulator charges
//!   [`EngineConfig::cache_read_per_block`] per decoded block via the
//!   replay op's setup cost);
//! * nodes upstream of only served/unneeded consumers are **skipped** —
//!   dropped from the plan entirely, the "recompute only the edited
//!   cone" effect;
//! * everything else is **computed**; cacheable computed nodes are
//!   wrapped in a [`RecordingFactory`] that tees their emitted rows into
//!   a [`CacheRecording`] for publication.
//!
//! Recordings are published only by [`commit_recordings`], and the
//! executors call it only after a run completes **cleanly** — no faults
//! injected, no retries spent. A faulted quantum replays its held input,
//! which would tee rows twice; discarding the whole recording set is the
//! write-then-rename discipline that keeps partial or duplicated output
//! out of the cache (pinned by `tests/cache_chaos.rs`).
//!
//! [`EngineConfig::cache_read_per_block`]: crate::EngineConfig
//! [`EngineConfig::result_cache`]: crate::EngineConfig

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use scriptflow_core::fingerprint::OpFingerprint;
use scriptflow_datakit::blockstore::{BlockAppender, Segment};
use scriptflow_datakit::{ColumnarBatch, Schema, SchemaRef, Tuple};
use scriptflow_simcluster::SimDuration;

use crate::cost::CostProfile;
use crate::dag::{OpId, Workflow, WorkflowBuilder};
use crate::operator::{
    Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult,
};
use crate::spill::SPILL_BLOCK_ROWS;

/// One sealed cache entry: an operator's complete output multiset as a
/// compressed segment, plus the counters telemetry reports when the
/// entry is served.
#[derive(Debug)]
pub struct CacheEntry {
    segment: Segment,
    rows: u64,
    blocks: u64,
    bytes: u64,
}

impl CacheEntry {
    fn seal(schema: &SchemaRef, tuples: &[Tuple]) -> CacheEntry {
        let mut app = BlockAppender::new();
        for chunk in tuples.chunks(SPILL_BLOCK_ROWS) {
            let batch = ColumnarBatch::from_tuples(schema.clone(), chunk);
            app.append(&batch);
        }
        let segment = app.seal();
        let m = segment.manifest();
        CacheEntry {
            rows: m.row_count,
            blocks: m.block_count,
            bytes: m.compressed_bytes,
            segment,
        }
    }

    /// Rows recorded in this entry.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Compressed blocks backing this entry.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Compressed bytes backing this entry.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Decode the full output multiset back into tuples, in recorded
    /// order.
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.rows as usize);
        for block in self.segment.blocks() {
            let batch = block
                .decode()
                .expect("sealed cache blocks always round-trip");
            out.extend(batch.to_tuples());
        }
        out
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u128, Arc<CacheEntry>>,
    bytes: u64,
}

/// A process-wide result cache, shareable across runs, backends, and
/// (via the service layer) tenants.
///
/// The cache never evicts on its own: its footprint is the sum of its
/// sealed segments' compressed bytes, and the multi-tenant service
/// bounds growth with per-tenant cache budgets
/// ([`crate::TenantQuota::with_cache_budget`]).
#[derive(Debug, Default)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// The sealed entry for `fp`, if one has been published.
    pub fn lookup(&self, fp: OpFingerprint) -> Option<Arc<CacheEntry>> {
        self.inner.lock().unwrap().entries.get(&fp.0).cloned()
    }

    /// Seal `tuples` under `fp` and return the compressed bytes added.
    ///
    /// Idempotent: publishing a fingerprint that already has an entry is
    /// a no-op returning 0 — first writer wins, which is what
    /// single-flight needs when two tenants race the same prefix.
    pub fn publish(&self, fp: OpFingerprint, schema: &SchemaRef, tuples: &[Tuple]) -> u64 {
        // Seal outside the lock; insertion re-checks for a racing writer.
        let entry = CacheEntry::seal(schema, tuples);
        let bytes = entry.bytes;
        let mut inner = self.inner.lock().unwrap();
        if inner.entries.contains_key(&fp.0) {
            return 0;
        }
        inner.entries.insert(fp.0, Arc::new(entry));
        inner.bytes += bytes;
        bytes
    }

    /// Total compressed bytes held.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }

    /// Number of sealed entries held.
    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }
}

/// A cache-hit stand-in: a source operator that replays one sealed
/// [`CacheEntry`] under the served operator's original name and schema.
///
/// The simulator charges the read cost of a hit through the replay op's
/// one-time setup — `cache_read_per_block × blocks` on a single worker —
/// so serving a segment costs virtual time proportional to its size
/// without any event-loop changes.
pub struct CacheReplayOp {
    name: String,
    schema: SchemaRef,
    entry: Arc<CacheEntry>,
    read_per_block: SimDuration,
}

impl CacheReplayOp {
    fn new(
        name: &str,
        schema: SchemaRef,
        entry: Arc<CacheEntry>,
        read_per_block: SimDuration,
    ) -> Self {
        CacheReplayOp {
            name: name.to_owned(),
            schema,
            entry,
            read_per_block,
        }
    }
}

/// Replay sources never receive tuples (mirrors the scan instance).
struct CacheReplayInstance;

impl Operator for CacheReplayInstance {
    fn on_tuple(
        &mut self,
        _tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        Err(WorkflowError::OperatorFailed {
            operator: "<cache-replay>".into(),
            message: "cache replay sources do not accept input".into(),
        })
    }
}

impl OperatorFactory for CacheReplayOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        0
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        debug_assert!(inputs.is_empty());
        Ok((*self.schema).clone())
    }

    fn cost(&self) -> CostProfile {
        CostProfile {
            setup: self.read_per_block * self.entry.blocks,
            per_tuple: SimDuration::ZERO,
            per_tuple_ports: Vec::new(),
            per_batch: SimDuration::ZERO,
            ..CostProfile::default()
        }
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(CacheReplayInstance)
    }

    fn source_partitions(&self, workers: usize) -> Option<Vec<Vec<Tuple>>> {
        let mut parts: Vec<Vec<Tuple>> = (0..workers.max(1)).map(|_| Vec::new()).collect();
        for (i, t) in self.entry.tuples().into_iter().enumerate() {
            parts[i % workers.max(1)].push(t);
        }
        Some(parts)
    }

    fn cache_replay(&self) -> Option<(u64, u64)> {
        Some((self.entry.blocks, self.entry.bytes))
    }
}

/// The teed output of one cache-miss operator across all of its worker
/// instances, awaiting publication on clean run completion.
pub struct CacheRecording {
    fingerprint: OpFingerprint,
    schema: SchemaRef,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

/// Wraps a cache-miss operator's factory, teeing everything its
/// instances emit into a shared [`CacheRecording`] buffer. Every other
/// behaviour delegates, so a recorded operator runs (and costs) exactly
/// like the bare one.
pub struct RecordingFactory {
    inner: Arc<dyn OperatorFactory>,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl RecordingFactory {
    fn new(inner: Arc<dyn OperatorFactory>, rows: Arc<Mutex<Vec<Tuple>>>) -> Self {
        RecordingFactory { inner, rows }
    }
}

impl OperatorFactory for RecordingFactory {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_ports(&self) -> usize {
        self.inner.input_ports()
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        self.inner.output_schema(inputs)
    }

    fn blocking_ports(&self) -> Vec<usize> {
        self.inner.blocking_ports()
    }

    fn language(&self) -> scriptflow_simcluster::Language {
        self.inner.language()
    }

    fn cost(&self) -> CostProfile {
        self.inner.cost()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(RecordingOp {
            inner: self.inner.create(),
            rows: Arc::clone(&self.rows),
        })
    }

    fn source_partitions(&self, workers: usize) -> Option<Vec<Vec<Tuple>>> {
        let parts = self.inner.source_partitions(workers)?;
        // Called more than once per plan (DAG validation probes every
        // source, then the executor chunks it): each call yields the
        // operator's complete output, so replace rather than append.
        let mut rows = self.rows.lock().unwrap();
        rows.clear();
        for p in &parts {
            rows.extend(p.iter().cloned());
        }
        Some(parts)
    }

    fn shared_state_id(&self) -> Option<usize> {
        self.inner.shared_state_id()
    }

    fn reset_shared_state(&self) {
        self.inner.reset_shared_state()
    }

    fn fingerprint(&self) -> OpFingerprint {
        self.inner.fingerprint()
    }

    fn commutative_inputs(&self) -> bool {
        self.inner.commutative_inputs()
    }

    fn cache_recording(&self) -> bool {
        true
    }
}

/// Per-worker tee: runs the wrapped instance and copies whatever it
/// emitted into the recording buffer.
struct RecordingOp {
    inner: Box<dyn Operator>,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl RecordingOp {
    fn tee(&self, out: &OutputCollector, mark: usize) {
        let emitted = out.emitted_since(mark);
        if !emitted.is_empty() {
            self.rows.lock().unwrap().extend_from_slice(emitted);
        }
    }
}

impl Operator for RecordingOp {
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.inner.set_memory_budget(bytes)
    }

    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_tuple(tuple, port, out)?;
        self.tee(out, mark);
        Ok(())
    }

    fn on_port_complete(&mut self, port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_port_complete(port, out)?;
        self.tee(out, mark);
        Ok(())
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_batch(batch, port, out)?;
        self.tee(out, mark);
        Ok(())
    }
}

/// How [`prepare`] disposed of one original node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeFate {
    /// Runs in the plan (recorded when cacheable).
    Computed,
    /// Replaced by a [`CacheReplayOp`] serving a sealed entry.
    Served,
    /// Dropped: every consumer is served or itself skipped.
    Skipped,
}

/// A cache-aware execution plan: the rewritten workflow plus everything
/// the executor needs to account for and commit the run.
pub struct CachePlan {
    /// The workflow to actually execute (served nodes replaced, skipped
    /// nodes dropped, cache-miss nodes recording).
    pub wf: Workflow,
    /// Pending recordings, to be published via [`commit_recordings`]
    /// only on clean success.
    pub recordings: Vec<CacheRecording>,
    /// Nodes served from the cache.
    pub hits: u64,
    /// Cacheable nodes that ran and recorded.
    pub misses: u64,
    /// Compressed blocks decoded to serve the hits.
    pub hit_blocks: u64,
    /// Compressed bytes decoded to serve the hits.
    pub hit_bytes: u64,
}

/// Plan `wf` against `cache`: classify every node as computed, served,
/// or skipped (see the module docs) and rebuild the workflow
/// accordingly. `read_per_block` is the virtual cost the simulator
/// charges per decoded block when serving a hit.
///
/// An operator is *cacheable* when its worker instances are
/// self-contained (no [`OperatorFactory::shared_state_id`] — a sink's
/// rows live in shared state the cache must not alias) and it has at
/// least one consumer to serve.
pub fn prepare(wf: &Workflow, cache: &ResultCache, read_per_block: SimDuration) -> CachePlan {
    let n = wf.ops().len();

    let cacheable = |id: OpId| {
        wf.op(id).factory.shared_state_id().is_none() && !wf.out_edges(id).is_empty()
    };

    // Classify in reverse topological order: sinks are always computed
    // (their rows are the run's results); a non-sink is needed only if
    // some consumer computes, and a needed node is served on a hit.
    let mut fate = vec![NodeFate::Skipped; n];
    let mut hit: Vec<Option<Arc<CacheEntry>>> = vec![None; n];
    for &id in wf.topo_order().iter().rev() {
        let consumers = wf.out_edges(id);
        let needed = consumers.is_empty()
            || consumers
                .iter()
                .any(|(_, e)| fate[e.to.0] == NodeFate::Computed);
        if !needed {
            continue;
        }
        if cacheable(id) {
            if let Some(entry) = cache.lookup(wf.fingerprint(id)) {
                hit[id.0] = Some(entry);
                fate[id.0] = NodeFate::Served;
                continue;
            }
        }
        fate[id.0] = NodeFate::Computed;
    }

    // Rebuild, preserving original node order for deterministic ids.
    let mut b = WorkflowBuilder::new();
    let mut mapped: Vec<Option<OpId>> = vec![None; n];
    let mut recordings = Vec::new();
    let (mut hits, mut misses, mut hit_blocks, mut hit_bytes) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..n {
        let id = OpId(i);
        let node = wf.op(id);
        match fate[i] {
            NodeFate::Skipped => {}
            NodeFate::Served => {
                let entry = hit[i].clone().expect("served nodes carry their entry");
                hits += 1;
                hit_blocks += entry.blocks;
                hit_bytes += entry.bytes;
                let replay = CacheReplayOp::new(
                    node.factory.name(),
                    wf.schema(id).clone(),
                    entry,
                    read_per_block,
                );
                mapped[i] = Some(b.add(Arc::new(replay), 1));
            }
            NodeFate::Computed => {
                let factory: Arc<dyn OperatorFactory> = if cacheable(id) {
                    misses += 1;
                    let rows = Arc::new(Mutex::new(Vec::new()));
                    recordings.push(CacheRecording {
                        fingerprint: wf.fingerprint(id),
                        schema: wf.schema(id).clone(),
                        rows: Arc::clone(&rows),
                    });
                    Arc::new(RecordingFactory::new(Arc::clone(&node.factory), rows))
                } else {
                    Arc::clone(&node.factory)
                };
                mapped[i] = Some(b.add(factory, node.parallelism));
            }
        }
    }
    for e in wf.edges() {
        // Served consumers take no inputs; edges into skipped nodes
        // vanish with them.
        if fate[e.to.0] != NodeFate::Computed {
            continue;
        }
        let from = mapped[e.from.0].expect("a computed node's inputs are never skipped");
        let to = mapped[e.to.0].expect("computed nodes are in the plan");
        b.connect(from, to, e.to_port, e.partition.clone());
    }
    let planned = b
        .build()
        .expect("replanning a validated workflow cannot fail");

    CachePlan {
        wf: planned,
        recordings,
        hits,
        misses,
        hit_blocks,
        hit_bytes,
    }
}

/// Publish every recording of a **cleanly** completed run and return
/// the compressed bytes added. Callers must not commit after a run
/// that saw faults or retries: a replayed quantum tees its held input's
/// output twice, and this discard-on-dirty rule is what keeps partial
/// or duplicated segments out of the cache.
pub fn commit_recordings(recordings: &[CacheRecording], cache: &ResultCache) -> u64 {
    let mut added = 0;
    for r in recordings {
        let rows = r.rows.lock().unwrap();
        added += cache.publish(r.fingerprint, &r.schema, &rows);
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FilterOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, CmpOp, DataType, Value};

    fn schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int)])
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(schema(), vec![Value::Int(i)]).unwrap())
            .collect()
    }

    fn linear(n: i64) -> (Workflow, crate::ops::SinkHandle) {
        let mut b = WorkflowBuilder::new();
        let batch = Batch::from_rows(schema(), (0..n).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        let s = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
        let f = b.add(
            Arc::new(FilterOp::cmp("filter", "id", CmpOp::Ge, Value::Int(0))),
            2,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let k = b.add(Arc::new(sink_op), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        (b.build().unwrap(), handle)
    }

    #[test]
    fn publish_lookup_roundtrip_preserves_rows() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(42);
        let data = rows(700); // > one block
        let bytes = cache.publish(fp, &schema, &data);
        assert!(bytes > 0);
        assert_eq!(cache.bytes(), bytes);
        assert_eq!(cache.entries(), 1);
        let entry = cache.lookup(fp).expect("published");
        assert_eq!(entry.rows(), 700);
        assert!(entry.blocks() >= 2, "block size is bounded");
        let back: Vec<_> = entry.tuples().iter().map(|t| t.values().to_vec()).collect();
        let want: Vec<_> = data.iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(back, want);
        assert!(cache.lookup(OpFingerprint(43)).is_none());
    }

    #[test]
    fn publish_is_idempotent_first_writer_wins() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(7);
        let first = cache.publish(fp, &schema, &rows(10));
        assert!(first > 0);
        assert_eq!(cache.publish(fp, &schema, &rows(10)), 0);
        assert_eq!(cache.bytes(), first);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn cold_plan_records_everything_cacheable() {
        let (wf, _) = linear(20);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::from_micros(900));
        assert_eq!(plan.hits, 0);
        // scan + filter are cacheable; the sink holds shared state.
        assert_eq!(plan.misses, 2);
        assert_eq!(plan.recordings.len(), 2);
        assert_eq!(plan.wf.operator_count(), 3, "cold plan keeps every node");
        assert!(plan.wf.op(OpId(0)).factory.cache_recording());
        assert!(!plan.wf.op(OpId(2)).factory.cache_recording(), "sink bare");
    }

    #[test]
    fn warm_plan_serves_the_deepest_hit_and_skips_its_cone() {
        let (wf, _) = linear(20);
        let cache = ResultCache::new();
        // Seed the cache with the filter's output under its fingerprint.
        let filter_id = wf.op_by_name("filter").unwrap();
        cache.publish(
            wf.fingerprint(filter_id),
            wf.schema(filter_id),
            &rows(20),
        );
        let plan = prepare(&wf, &cache, SimDuration::from_micros(900));
        assert_eq!(plan.hits, 1);
        assert_eq!(plan.misses, 0, "everything upstream of the hit skipped");
        assert_eq!(
            plan.wf.operator_count(),
            2,
            "scan is skipped; replay + sink remain"
        );
        let replay = plan.wf.op_by_name("filter").expect("replay keeps the name");
        let (blocks, bytes) = plan.wf.op(replay).factory.cache_replay().unwrap();
        assert!(blocks >= 1);
        assert!(bytes > 0);
        assert_eq!(plan.hit_blocks, blocks);
        assert_eq!(plan.hit_bytes, bytes);
        // The replay op charges its read through setup on one worker.
        assert_eq!(
            plan.wf.op(replay).factory.cost().setup,
            SimDuration::from_micros(900) * blocks
        );
        assert_eq!(plan.wf.op(replay).parallelism, 1);
    }

    #[test]
    fn commit_publishes_recorded_rows() {
        let (wf, _) = linear(15);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::ZERO);
        // Simulate the executors' tee (replacing whatever the DAG
        // validation probe already captured).
        let scan_rec = &plan.recordings[0];
        {
            let mut buf = scan_rec.rows.lock().unwrap();
            buf.clear();
            buf.extend(rows(15));
        }
        let added = commit_recordings(&plan.recordings[..1], &cache);
        assert!(added > 0);
        assert_eq!(cache.bytes(), added);
        let entry = cache.lookup(wf.fingerprint(OpId(0))).unwrap();
        assert_eq!(entry.rows(), 15);
        // Re-committing adds nothing (idempotent publish).
        assert_eq!(commit_recordings(&plan.recordings[..1], &cache), 0);
    }

    #[test]
    fn recording_factory_tees_without_changing_output() {
        let inner = Arc::new(FilterOp::cmp("f", "id", CmpOp::Lt, Value::Int(3)));
        let rows_buf = Arc::new(Mutex::new(Vec::new()));
        let rec = RecordingFactory::new(inner, Arc::clone(&rows_buf));
        assert!(rec.cache_recording());
        assert_eq!(rec.name(), "f");
        let mut inst = rec.create();
        let mut out = OutputCollector::new();
        for t in rows(5) {
            inst.on_tuple(t, 0, &mut out).unwrap();
        }
        assert_eq!(out.len(), 3, "filter semantics unchanged");
        assert_eq!(rows_buf.lock().unwrap().len(), 3, "teed exactly the output");
    }

    #[test]
    fn empty_output_round_trips_as_empty_entry() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(9);
        assert_eq!(cache.publish(fp, &schema, &[]), 0);
        let entry = cache.lookup(fp).unwrap();
        assert_eq!(entry.rows(), 0);
        assert_eq!(entry.blocks(), 0);
        assert!(entry.tuples().is_empty());
    }
}
