//! Fingerprint-keyed result cache: incremental re-execution across
//! edits, backends, tenants, and — with a persistent root — process
//! restarts.
//!
//! Every built [`Workflow`] node carries a Merkle-style
//! [`OpFingerprint`] — a content address of "this operator's spec plus
//! everything upstream of it". The [`ResultCache`] maps fingerprints to
//! sealed operator outputs, stored as compressed block-store
//! [`Segment`]s (the same representation the spill path uses), so a
//! cached result costs compressed bytes, not live tuples.
//!
//! Execution is cache-aware through **planning**, not through changes to
//! either engine's inner loop. [`prepare`] rewrites a workflow before it
//! runs:
//!
//! * a needed node whose fingerprint has a sealed entry is **served** —
//!   replaced by a [`CacheReplayOp`] source that decodes the segment and
//!   emits the recorded rows (the simulator charges
//!   [`EngineConfig::cache_read_per_block`] per decoded block via the
//!   replay op's setup cost);
//! * nodes upstream of only served/unneeded consumers are **skipped** —
//!   dropped from the plan entirely, the "recompute only the edited
//!   cone" effect;
//! * everything else is **computed**; cacheable computed nodes are
//!   wrapped in a [`RecordingFactory`] that tees their emitted rows into
//!   a [`CacheRecording`] for publication.
//!
//! Recordings are published only by [`commit_recordings`], and the
//! executors call it only after a run completes **cleanly** — no faults
//! injected, no retries spent. A faulted quantum replays its held input,
//! which would tee rows twice; discarding the whole recording set is the
//! write-then-rename discipline that keeps partial or duplicated output
//! out of the cache (pinned by `tests/cache_chaos.rs`).
//!
//! # Bounded growth: cost-aware eviction
//!
//! [`ResultCache::with_byte_budget`] caps the cache's compressed
//! footprint. When a publish would exceed the budget, victims are chosen
//! by `bytes × recompute-cheapness`: each entry carries the calibrated
//! recompute cost of the operator that produced it
//! (`setup + per_tuple × rows`, straight from the operator's
//! [`CostProfile`], whose constants come from `core::calibration`), and
//! the entry with the highest `bytes / recompute-cost` ratio goes first
//! — large, cheap-to-recompute scan/filter outputs are evicted while
//! expensive transformer-stage outputs are kept. Ties break by insertion
//! order, so the same publish sequence under the same budget always
//! evicts the same victims. `ResultCache::bytes()` never exceeds the
//! budget after a publish returns.
//!
//! # Durability: the on-disk segment root
//!
//! [`ResultCache::persistent`] roots the cache in a directory (exposed
//! to tools via the `SCRIPTFLOW_CACHE_DIR` environment variable and
//! [`ResultCache::from_env`]). Every published entry is also written as
//! `<fingerprint>.seg` — a checksummed [`Segment::encode`] image — and
//! indexed by a `MANIFEST` file mapping fingerprints to row/block/byte
//! counts, recompute cost, and owner. Both writes are
//! write-temp-then-rename, mirroring the in-memory no-partial-
//! publication invariant: a crash mid-publish never exposes a partial
//! entry. Reopening the directory serves the same sealed rows to a new
//! process; a corrupt or truncated entry (checksum, magic, count, or
//! manifest mismatch) degrades to a cache miss — the bad file and its
//! manifest line are dropped, never surfaced as an error.
//!
//! [`EngineConfig::cache_read_per_block`]: crate::EngineConfig
//! [`EngineConfig::result_cache`]: crate::EngineConfig
//! [`CostProfile`]: crate::cost::CostProfile

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use scriptflow_core::fingerprint::OpFingerprint;
use scriptflow_datakit::blockstore::{BlockAppender, Segment};
use scriptflow_datakit::{ColumnarBatch, Schema, SchemaRef, Tuple};
use scriptflow_simcluster::SimDuration;

use crate::cost::CostProfile;
use crate::dag::{OpId, Workflow, WorkflowBuilder};
use crate::operator::{
    Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult,
};
use crate::spill::SPILL_BLOCK_ROWS;

/// Lock `m`, recovering from a poisoned mutex instead of propagating the
/// panic. Cache state is seal-once — entries are inserted whole and
/// never mutated in place, and recording buffers are rebuilt from marks
/// on every tee — so the state behind a poisoned lock is still
/// consistent and `into_inner` is safe. Without this, a panic fault
/// landing while a recording sink holds its buffer lock poisons the
/// mutex and cascades panics into every unrelated tenant sharing the
/// service cache.
fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One sealed cache entry: an operator's complete output multiset as a
/// compressed segment, plus the counters telemetry reports when the
/// entry is served.
#[derive(Debug)]
pub struct CacheEntry {
    segment: Segment,
    rows: u64,
    blocks: u64,
    bytes: u64,
}

impl CacheEntry {
    fn seal(schema: &SchemaRef, tuples: &[Tuple]) -> CacheEntry {
        let mut app = BlockAppender::new();
        for chunk in tuples.chunks(SPILL_BLOCK_ROWS) {
            let batch = ColumnarBatch::from_tuples(schema.clone(), chunk);
            app.append(&batch);
        }
        let segment = app.seal();
        let m = segment.manifest();
        CacheEntry {
            rows: m.row_count,
            blocks: m.block_count,
            bytes: m.compressed_bytes,
            segment,
        }
    }

    /// Wrap a decoded persisted segment (already checksum-validated).
    fn from_segment(segment: Segment) -> CacheEntry {
        let m = segment.manifest();
        CacheEntry {
            rows: m.row_count,
            blocks: m.block_count,
            bytes: m.compressed_bytes,
            segment,
        }
    }

    /// Rows recorded in this entry.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Compressed blocks backing this entry.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Compressed bytes backing this entry.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Decode the full output multiset back into tuples, in recorded
    /// order.
    pub fn tuples(&self) -> Vec<Tuple> {
        // The manifest row count is advisory — for a persisted entry it
        // is untrusted input — so preallocate no more than the decoded
        // blocks can actually hold.
        let decoded: usize = self.segment.blocks().iter().map(|b| b.rows()).sum();
        let mut out = Vec::with_capacity((self.rows as usize).min(decoded));
        for block in self.segment.blocks() {
            let batch = block
                .decode()
                .expect("sealed cache blocks always round-trip");
            out.extend(batch.to_tuples());
        }
        out
    }
}

/// Where a stored entry's payload currently lives.
#[derive(Debug)]
enum Slot {
    /// Decoded and resident.
    Loaded(Arc<CacheEntry>),
    /// On disk only (a persistent cache after reopen); loaded — and
    /// validated against the manifest counts — on first lookup.
    Disk,
}

/// Bookkeeping for one cache entry. The counts are authoritative (the
/// eviction policy and the byte ledger run off them even while the
/// payload is still on disk); a loaded slot's segment must agree with
/// them or the entry is dropped as corrupt.
#[derive(Debug)]
struct Stored {
    slot: Slot,
    /// Insertion order, the deterministic eviction tie-breaker.
    seq: u64,
    rows: u64,
    blocks: u64,
    bytes: u64,
    /// Calibrated cost of recomputing this output, in virtual
    /// microseconds (`setup + per_tuple × rows` of the producing
    /// operator).
    cost_micros: u64,
    /// Publishing tenant, if the service layer attributed one.
    owner: Option<String>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u128, Stored>,
    bytes: u64,
    budget: Option<u64>,
    seq: u64,
    evictions: u64,
    evicted_bytes: u64,
    owner_bytes: HashMap<String, u64>,
}

/// What one [`ResultCache::publish_costed`] call did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Compressed bytes added (0 when the fingerprint already had an
    /// entry — first writer wins — or the entry was not admitted).
    pub added: u64,
    /// False when the entry alone exceeds the byte budget and was
    /// rejected outright.
    pub admitted: bool,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Compressed bytes those victims released.
    pub evicted_bytes: u64,
}

/// A process-wide result cache, shareable across runs, backends, and
/// (via the service layer) tenants.
///
/// Unbounded by default; [`ResultCache::with_byte_budget`] turns on
/// cost-aware eviction, and [`ResultCache::persistent`] roots the cache
/// in a directory that survives the process (see the module docs).
#[derive(Debug, Default)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    disk: Option<DiskStore>,
}

impl ResultCache {
    /// An empty, unbounded, in-memory cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Cap the cache at `bytes` compressed bytes, evicting by
    /// `bytes × recompute-cheapness` (see the module docs).
    pub fn with_byte_budget(self, bytes: u64) -> Self {
        self.set_byte_budget(Some(bytes));
        self
    }

    /// Install (or clear) the byte budget, evicting immediately if the
    /// current footprint exceeds the new cap.
    pub fn set_byte_budget(&self, bytes: Option<u64>) {
        let mut inner = recover(&self.inner);
        inner.budget = bytes;
        let swept = evict_to_budget(&mut inner, self.disk.as_ref(), None);
        if swept.0 > 0 {
            self.sync_manifest(&inner);
        }
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<u64> {
        recover(&self.inner).budget
    }

    /// Open (or create) a cache rooted at `dir`. Entries published here
    /// are also written as checksummed segment files and indexed by a
    /// `MANIFEST`, so reopening the same directory — in this process or
    /// the next — serves the same sealed rows. Stale temp files from a
    /// crashed publish are swept on open; a corrupt manifest degrades to
    /// an empty cache.
    pub fn persistent(dir: impl AsRef<Path>) -> io::Result<ResultCache> {
        let disk = DiskStore {
            dir: dir.as_ref().to_path_buf(),
        };
        std::fs::create_dir_all(&disk.dir)?;
        disk.sweep_temp_files();
        let mut inner = disk.load_manifest();
        // Do not trust manifest lines whose segment file is missing.
        let CacheInner {
            entries,
            bytes,
            owner_bytes,
            ..
        } = &mut inner;
        entries.retain(|fp, stored| {
            let ok = disk.entry_path(*fp).is_file();
            if !ok {
                *bytes = bytes.saturating_sub(stored.bytes);
                credit_owner(owner_bytes, stored.owner.as_deref(), stored.bytes);
            }
            ok
        });
        Ok(ResultCache {
            inner: Mutex::new(inner),
            disk: Some(disk),
        })
    }

    /// The persistent cache named by `SCRIPTFLOW_CACHE_DIR`, if the
    /// variable is set and the directory is usable.
    pub fn from_env() -> Option<ResultCache> {
        let dir = std::env::var_os("SCRIPTFLOW_CACHE_DIR")?;
        ResultCache::persistent(dir).ok()
    }

    /// The cache a calibrated run asks for: persistent when
    /// `SCRIPTFLOW_CACHE_DIR` is set (in-memory otherwise), bounded when
    /// the calibration carries a byte budget.
    pub fn for_run(budget: Option<u64>) -> Arc<ResultCache> {
        let cache = ResultCache::from_env().unwrap_or_default();
        Arc::new(match budget {
            Some(b) => cache.with_byte_budget(b),
            None => cache,
        })
    }

    /// The sealed entry for `fp`, if one has been published (and, for a
    /// persistent cache, still decodes cleanly — a corrupt or truncated
    /// segment file is dropped here and reported as a miss).
    pub fn lookup(&self, fp: OpFingerprint) -> Option<Arc<CacheEntry>> {
        let mut inner = recover(&self.inner);
        let stored = inner.entries.get(&fp.0)?;
        if let Slot::Loaded(entry) = &stored.slot {
            return Some(Arc::clone(entry));
        }
        let (rows, blocks, bytes) = (stored.rows, stored.blocks, stored.bytes);
        let disk = self
            .disk
            .as_ref()
            .expect("disk slots exist only in persistent caches");
        match disk.load_entry(fp.0, rows, blocks, bytes) {
            Ok(entry) => {
                let entry = Arc::new(entry);
                if let Some(stored) = inner.entries.get_mut(&fp.0) {
                    stored.slot = Slot::Loaded(Arc::clone(&entry));
                }
                Some(entry)
            }
            Err(_) => {
                // Corrupt, truncated, or forged: degrade to a miss.
                if let Some(stored) = inner.entries.remove(&fp.0) {
                    inner.bytes = inner.bytes.saturating_sub(stored.bytes);
                    credit_owner(&mut inner.owner_bytes, stored.owner.as_deref(), stored.bytes);
                }
                disk.remove_entry(fp.0);
                self.sync_manifest(&inner);
                None
            }
        }
    }

    /// Seal `tuples` under `fp` and return the compressed bytes added.
    ///
    /// Idempotent: publishing a fingerprint that already has an entry is
    /// a no-op returning 0 — first writer wins, which is what
    /// single-flight needs when two tenants race the same prefix. The
    /// entry carries no recompute cost, so under a budget it is treated
    /// as maximally cheap; use [`ResultCache::publish_costed`] to keep
    /// expensive outputs resident.
    pub fn publish(&self, fp: OpFingerprint, schema: &SchemaRef, tuples: &[Tuple]) -> u64 {
        self.publish_costed(fp, schema, tuples, SimDuration::ZERO, None)
            .added
    }

    /// Seal `tuples` under `fp`, attributing the entry to `owner` and
    /// recording `recompute_cost` (the calibrated cost of re-running the
    /// producing operator) for the eviction policy. Under a byte budget
    /// this evicts cheapest-per-byte victims until the cache fits; the
    /// just-published entry is never its own victim, but an entry larger
    /// than the whole budget is rejected (`admitted: false`).
    pub fn publish_costed(
        &self,
        fp: OpFingerprint,
        schema: &SchemaRef,
        tuples: &[Tuple],
        recompute_cost: SimDuration,
        owner: Option<&str>,
    ) -> PublishOutcome {
        // Seal outside the lock; insertion re-checks for a racing writer.
        let entry = CacheEntry::seal(schema, tuples);
        let bytes = entry.bytes;
        let mut inner = recover(&self.inner);
        if inner.entries.contains_key(&fp.0) {
            return PublishOutcome {
                added: 0,
                admitted: true,
                evictions: 0,
                evicted_bytes: 0,
            };
        }
        if inner.budget.is_some_and(|b| bytes > b) {
            return PublishOutcome {
                added: 0,
                admitted: false,
                evictions: 0,
                evicted_bytes: 0,
            };
        }
        let entry = Arc::new(entry);
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(disk) = &self.disk {
            // Atomic publish: the segment image lands under its final
            // name only via rename, so a crash mid-write leaves a temp
            // file (swept on reopen), never a partial entry.
            let _ = disk.write_entry(fp.0, &entry.segment.encode());
        }
        inner.entries.insert(
            fp.0,
            Stored {
                rows: entry.rows,
                blocks: entry.blocks,
                bytes,
                slot: Slot::Loaded(entry),
                seq,
                cost_micros: recompute_cost.as_micros(),
                owner: owner.map(str::to_owned),
            },
        );
        inner.bytes += bytes;
        if let Some(owner) = owner {
            *inner.owner_bytes.entry(owner.to_owned()).or_default() += bytes;
        }
        let (evictions, evicted_bytes) =
            evict_to_budget(&mut inner, self.disk.as_ref(), Some(fp.0));
        self.sync_manifest(&inner);
        PublishOutcome {
            added: bytes,
            admitted: true,
            evictions,
            evicted_bytes,
        }
    }

    /// Rewrite the on-disk manifest to match `inner` (no-op for
    /// in-memory caches). Write errors are swallowed: the in-memory
    /// cache stays correct, and at worst a reopen misses entries.
    fn sync_manifest(&self, inner: &CacheInner) {
        if let Some(disk) = &self.disk {
            let _ = disk.write_manifest(inner);
        }
    }

    /// Total compressed bytes held (never exceeds the byte budget after
    /// a publish returns).
    pub fn bytes(&self) -> u64 {
        recover(&self.inner).bytes
    }

    /// Number of sealed entries held.
    pub fn entries(&self) -> usize {
        recover(&self.inner).entries.len()
    }

    /// Entries evicted since the cache was created.
    pub fn evictions(&self) -> u64 {
        recover(&self.inner).evictions
    }

    /// Compressed bytes released by eviction since the cache was
    /// created (`bytes() == Σ published − Σ evicted`, minus corrupt
    /// entries dropped on load).
    pub fn evicted_bytes(&self) -> u64 {
        recover(&self.inner).evicted_bytes
    }

    /// Compressed bytes currently attributed to `owner` — publications
    /// minus what eviction has since released, the figure tenant cache
    /// quotas meter.
    pub fn owner_bytes(&self, owner: &str) -> u64 {
        recover(&self.inner)
            .owner_bytes
            .get(owner)
            .copied()
            .unwrap_or(0)
    }

    /// Fingerprints currently resident, sorted (a deterministic view
    /// for eviction tests and debugging).
    pub fn fingerprints(&self) -> Vec<OpFingerprint> {
        let inner = recover(&self.inner);
        let mut fps: Vec<u128> = inner.entries.keys().copied().collect();
        fps.sort_unstable();
        fps.into_iter().map(OpFingerprint).collect()
    }
}

fn credit_owner(owner_bytes: &mut HashMap<String, u64>, owner: Option<&str>, bytes: u64) {
    if let Some(owner) = owner {
        if let Some(b) = owner_bytes.get_mut(owner) {
            *b = b.saturating_sub(bytes);
            if *b == 0 {
                owner_bytes.remove(owner);
            }
        }
    }
}

/// Evict until the footprint fits the budget, never touching `protect`
/// (the entry just published). Victim order is by descending
/// `bytes / recompute-cost` — the biggest, cheapest-to-recompute entry
/// goes first — with insertion order then fingerprint as deterministic
/// tie-breakers. Returns `(entries evicted, bytes released)`.
fn evict_to_budget(
    inner: &mut CacheInner,
    disk: Option<&DiskStore>,
    protect: Option<u128>,
) -> (u64, u64) {
    let Some(budget) = inner.budget else {
        return (0, 0);
    };
    if inner.bytes <= budget {
        return (0, 0);
    }
    // Integer scoring keeps victim choice exact and platform-independent:
    // score = bytes × 1e6 / (1 + cost_micros), in u128 so it cannot
    // overflow or round through floats.
    let mut victims: Vec<(u128, u64, u128)> = inner
        .entries
        .iter()
        .filter(|(fp, _)| Some(**fp) != protect)
        .map(|(fp, s)| {
            let score = (s.bytes as u128) * 1_000_000 / (1 + s.cost_micros as u128);
            (score, s.seq, *fp)
        })
        .collect();
    victims.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let (mut evicted, mut released) = (0u64, 0u64);
    for (_, _, fp) in victims {
        if inner.bytes <= budget {
            break;
        }
        let Some(stored) = inner.entries.remove(&fp) else {
            continue;
        };
        inner.bytes = inner.bytes.saturating_sub(stored.bytes);
        inner.evictions += 1;
        inner.evicted_bytes += stored.bytes;
        credit_owner(&mut inner.owner_bytes, stored.owner.as_deref(), stored.bytes);
        if let Some(disk) = disk {
            disk.remove_entry(fp);
        }
        evicted += 1;
        released += stored.bytes;
    }
    (evicted, released)
}

// ---------------------------------------------------------------------------
// On-disk store
// ---------------------------------------------------------------------------

/// Header line of a cache manifest; bump the version on layout changes.
const MANIFEST_HEADER: &str = "scriptflow-cache v1";

/// The persistent root: `<fp:032x>.seg` segment images plus a `MANIFEST`
/// index. All writes are write-temp-then-rename.
#[derive(Debug)]
struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    fn entry_path(&self, fp: u128) -> PathBuf {
        self.dir.join(format!("{fp:032x}.seg"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Remove temp files a crashed publish may have left behind.
    fn sweep_temp_files(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for e in entries.flatten() {
            if e.path().extension().is_some_and(|x| x == "tmp") {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    fn write_entry(&self, fp: u128, image: &[u8]) -> io::Result<()> {
        self.write_atomic(&self.entry_path(fp), image)
    }

    fn remove_entry(&self, fp: u128) {
        let _ = std::fs::remove_file(self.entry_path(fp));
    }

    /// Read, checksum-verify, and cross-validate one segment image
    /// against the manifest's counts. Any disagreement is a decode
    /// error, which the caller turns into a miss.
    fn load_entry(&self, fp: u128, rows: u64, blocks: u64, bytes: u64) -> io::Result<CacheEntry> {
        let image = std::fs::read(self.entry_path(fp))?;
        let corrupt = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let segment = Segment::decode(&image).map_err(|e| corrupt(&e.to_string()))?;
        let m = segment.manifest();
        if m.row_count != rows || m.block_count != blocks || m.compressed_bytes != bytes {
            return Err(corrupt("segment disagrees with the cache manifest"));
        }
        Ok(CacheEntry::from_segment(segment))
    }

    /// Serialize the index: one `fp rows blocks bytes cost owner` line
    /// per entry, fingerprint-sorted for deterministic images. The owner
    /// field is the rest of the line (`-` for none), so tenant names may
    /// contain spaces.
    fn write_manifest(&self, inner: &CacheInner) -> io::Result<()> {
        let mut lines: Vec<(u128, String)> = inner
            .entries
            .iter()
            .map(|(fp, s)| {
                (
                    *fp,
                    format!(
                        "{fp:032x} {} {} {} {} {}\n",
                        s.rows,
                        s.blocks,
                        s.bytes,
                        s.cost_micros,
                        s.owner.as_deref().unwrap_or("-")
                    ),
                )
            })
            .collect();
        lines.sort_unstable_by_key(|(fp, _)| *fp);
        let mut out = String::with_capacity(lines.len() * 64 + 32);
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        for (_, line) in lines {
            out.push_str(&line);
        }
        self.write_atomic(&self.manifest_path(), out.as_bytes())
    }

    /// Parse the manifest into cache bookkeeping with every payload
    /// still on disk. A missing manifest is an empty cache; a bad header
    /// or a malformed line degrades by dropping what cannot be parsed.
    fn load_manifest(&self) -> CacheInner {
        let mut inner = CacheInner::default();
        let Ok(text) = std::fs::read_to_string(self.manifest_path()) else {
            return inner;
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return inner;
        }
        for line in lines {
            let mut parts = line.splitn(6, ' ');
            let Some(fp) = parts.next().and_then(|s| u128::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            let Some(rows) = parts.next().and_then(|s| s.parse().ok()) else {
                continue;
            };
            let Some(blocks) = parts.next().and_then(|s| s.parse().ok()) else {
                continue;
            };
            let Some(bytes) = parts.next().and_then(|s| s.parse().ok()) else {
                continue;
            };
            let Some(cost_micros) = parts.next().and_then(|s| s.parse().ok()) else {
                continue;
            };
            let owner = match parts.next() {
                Some("-") | None => None,
                Some(o) => Some(o.to_owned()),
            };
            inner.seq += 1;
            inner.bytes += bytes;
            if let Some(o) = &owner {
                *inner.owner_bytes.entry(o.clone()).or_default() += bytes;
            }
            inner.entries.insert(
                fp,
                Stored {
                    slot: Slot::Disk,
                    seq: inner.seq,
                    rows,
                    blocks,
                    bytes,
                    cost_micros,
                    owner,
                },
            );
        }
        inner
    }
}

/// A cache-hit stand-in: a source operator that replays one sealed
/// [`CacheEntry`] under the served operator's original name and schema.
///
/// The simulator charges the read cost of a hit through the replay op's
/// one-time setup — `cache_read_per_block × blocks` on a single worker —
/// so serving a segment costs virtual time proportional to its size
/// without any event-loop changes.
pub struct CacheReplayOp {
    name: String,
    schema: SchemaRef,
    entry: Arc<CacheEntry>,
    read_per_block: SimDuration,
}

impl CacheReplayOp {
    fn new(
        name: &str,
        schema: SchemaRef,
        entry: Arc<CacheEntry>,
        read_per_block: SimDuration,
    ) -> Self {
        CacheReplayOp {
            name: name.to_owned(),
            schema,
            entry,
            read_per_block,
        }
    }
}

/// Replay sources never receive tuples (mirrors the scan instance).
struct CacheReplayInstance;

impl Operator for CacheReplayInstance {
    fn on_tuple(
        &mut self,
        _tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        Err(WorkflowError::OperatorFailed {
            operator: "<cache-replay>".into(),
            message: "cache replay sources do not accept input".into(),
        })
    }
}

impl OperatorFactory for CacheReplayOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        0
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        debug_assert!(inputs.is_empty());
        Ok((*self.schema).clone())
    }

    fn cost(&self) -> CostProfile {
        CostProfile {
            setup: self.read_per_block * self.entry.blocks,
            per_tuple: SimDuration::ZERO,
            per_tuple_ports: Vec::new(),
            per_batch: SimDuration::ZERO,
            ..CostProfile::default()
        }
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(CacheReplayInstance)
    }

    fn source_partitions(&self, workers: usize) -> Option<Vec<Vec<Tuple>>> {
        let mut parts: Vec<Vec<Tuple>> = (0..workers.max(1)).map(|_| Vec::new()).collect();
        for (i, t) in self.entry.tuples().into_iter().enumerate() {
            parts[i % workers.max(1)].push(t);
        }
        Some(parts)
    }

    fn cache_replay(&self) -> Option<(u64, u64)> {
        Some((self.entry.blocks, self.entry.bytes))
    }
}

/// The teed output of one cache-miss operator across all of its worker
/// instances, awaiting publication on clean run completion. Carries the
/// producing operator's calibrated cost profile so publication can
/// price eviction correctly.
pub struct CacheRecording {
    fingerprint: OpFingerprint,
    schema: SchemaRef,
    name: String,
    setup: SimDuration,
    per_tuple: SimDuration,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

/// Wraps a cache-miss operator's factory, teeing everything its
/// instances emit into a shared [`CacheRecording`] buffer. Every other
/// behaviour delegates, so a recorded operator runs (and costs) exactly
/// like the bare one.
pub struct RecordingFactory {
    inner: Arc<dyn OperatorFactory>,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl RecordingFactory {
    fn new(inner: Arc<dyn OperatorFactory>, rows: Arc<Mutex<Vec<Tuple>>>) -> Self {
        RecordingFactory { inner, rows }
    }
}

impl OperatorFactory for RecordingFactory {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_ports(&self) -> usize {
        self.inner.input_ports()
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        self.inner.output_schema(inputs)
    }

    fn blocking_ports(&self) -> Vec<usize> {
        self.inner.blocking_ports()
    }

    fn language(&self) -> scriptflow_simcluster::Language {
        self.inner.language()
    }

    fn cost(&self) -> CostProfile {
        self.inner.cost()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(RecordingOp {
            inner: self.inner.create(),
            rows: Arc::clone(&self.rows),
        })
    }

    fn source_partitions(&self, workers: usize) -> Option<Vec<Vec<Tuple>>> {
        let parts = self.inner.source_partitions(workers)?;
        // Called more than once per plan (DAG validation probes every
        // source, then the executor chunks it): each call yields the
        // operator's complete output, so replace rather than append.
        let mut rows = recover(&self.rows);
        rows.clear();
        for p in &parts {
            rows.extend(p.iter().cloned());
        }
        Some(parts)
    }

    fn shared_state_id(&self) -> Option<usize> {
        self.inner.shared_state_id()
    }

    fn reset_shared_state(&self) {
        self.inner.reset_shared_state()
    }

    fn fingerprint(&self) -> OpFingerprint {
        self.inner.fingerprint()
    }

    fn commutative_inputs(&self) -> bool {
        self.inner.commutative_inputs()
    }

    fn cache_recording(&self) -> bool {
        true
    }
}

/// Per-worker tee: runs the wrapped instance and copies whatever it
/// emitted into the recording buffer.
struct RecordingOp {
    inner: Box<dyn Operator>,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl RecordingOp {
    fn tee(&self, out: &OutputCollector, mark: usize) {
        let emitted = out.emitted_since(mark);
        if !emitted.is_empty() {
            recover(&self.rows).extend_from_slice(emitted);
        }
    }
}

impl Operator for RecordingOp {
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.inner.set_memory_budget(bytes)
    }

    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_tuple(tuple, port, out)?;
        self.tee(out, mark);
        Ok(())
    }

    fn on_port_complete(&mut self, port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_port_complete(port, out)?;
        self.tee(out, mark);
        Ok(())
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let mark = out.len();
        self.inner.on_batch(batch, port, out)?;
        self.tee(out, mark);
        Ok(())
    }
}

/// How [`prepare`] disposed of one original node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeFate {
    /// Runs in the plan (recorded when cacheable).
    Computed,
    /// Replaced by a [`CacheReplayOp`] serving a sealed entry.
    Served,
    /// Dropped: every consumer is served or itself skipped.
    Skipped,
}

/// A cache-aware execution plan: the rewritten workflow plus everything
/// the executor needs to account for and commit the run.
pub struct CachePlan {
    /// The workflow to actually execute (served nodes replaced, skipped
    /// nodes dropped, cache-miss nodes recording).
    pub wf: Workflow,
    /// Pending recordings, to be published via [`commit_recordings`]
    /// only on clean success.
    pub recordings: Vec<CacheRecording>,
    /// Nodes served from the cache.
    pub hits: u64,
    /// Cacheable nodes that ran and recorded.
    pub misses: u64,
    /// Compressed blocks decoded to serve the hits.
    pub hit_blocks: u64,
    /// Compressed bytes decoded to serve the hits.
    pub hit_bytes: u64,
}

/// Plan `wf` against `cache`: classify every node as computed, served,
/// or skipped (see the module docs) and rebuild the workflow
/// accordingly. `read_per_block` is the virtual cost the simulator
/// charges per decoded block when serving a hit.
///
/// An operator is *cacheable* when its worker instances are
/// self-contained (no [`OperatorFactory::shared_state_id`] — a sink's
/// rows live in shared state the cache must not alias) and it has at
/// least one consumer to serve.
pub fn prepare(wf: &Workflow, cache: &ResultCache, read_per_block: SimDuration) -> CachePlan {
    let n = wf.ops().len();

    let cacheable = |id: OpId| {
        wf.op(id).factory.shared_state_id().is_none() && !wf.out_edges(id).is_empty()
    };

    // Classify in reverse topological order: sinks are always computed
    // (their rows are the run's results); a non-sink is needed only if
    // some consumer computes, and a needed node is served on a hit.
    let mut fate = vec![NodeFate::Skipped; n];
    let mut hit: Vec<Option<Arc<CacheEntry>>> = vec![None; n];
    for &id in wf.topo_order().iter().rev() {
        let consumers = wf.out_edges(id);
        let needed = consumers.is_empty()
            || consumers
                .iter()
                .any(|(_, e)| fate[e.to.0] == NodeFate::Computed);
        if !needed {
            continue;
        }
        if cacheable(id) {
            if let Some(entry) = cache.lookup(wf.fingerprint(id)) {
                hit[id.0] = Some(entry);
                fate[id.0] = NodeFate::Served;
                continue;
            }
        }
        fate[id.0] = NodeFate::Computed;
    }

    // Rebuild, preserving original node order for deterministic ids.
    let mut b = WorkflowBuilder::new();
    let mut mapped: Vec<Option<OpId>> = vec![None; n];
    let mut recordings = Vec::new();
    let (mut hits, mut misses, mut hit_blocks, mut hit_bytes) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..n {
        let id = OpId(i);
        let node = wf.op(id);
        match fate[i] {
            NodeFate::Skipped => {}
            NodeFate::Served => {
                let entry = hit[i].clone().expect("served nodes carry their entry");
                hits += 1;
                hit_blocks += entry.blocks;
                hit_bytes += entry.bytes;
                let replay = CacheReplayOp::new(
                    node.factory.name(),
                    wf.schema(id).clone(),
                    entry,
                    read_per_block,
                );
                mapped[i] = Some(b.add(Arc::new(replay), 1));
            }
            NodeFate::Computed => {
                let factory: Arc<dyn OperatorFactory> = if cacheable(id) {
                    misses += 1;
                    let rows = Arc::new(Mutex::new(Vec::new()));
                    let cost = node.factory.cost();
                    recordings.push(CacheRecording {
                        fingerprint: wf.fingerprint(id),
                        schema: wf.schema(id).clone(),
                        name: node.factory.name().to_owned(),
                        setup: cost.setup,
                        per_tuple: cost.per_tuple,
                        rows: Arc::clone(&rows),
                    });
                    Arc::new(RecordingFactory::new(Arc::clone(&node.factory), rows))
                } else {
                    Arc::clone(&node.factory)
                };
                mapped[i] = Some(b.add(factory, node.parallelism));
            }
        }
    }
    for e in wf.edges() {
        // Served consumers take no inputs; edges into skipped nodes
        // vanish with them.
        if fate[e.to.0] != NodeFate::Computed {
            continue;
        }
        let from = mapped[e.from.0].expect("a computed node's inputs are never skipped");
        let to = mapped[e.to.0].expect("computed nodes are in the plan");
        b.connect(from, to, e.to_port, e.partition.clone());
    }
    let planned = b
        .build()
        .expect("replanning a validated workflow cannot fail");

    CachePlan {
        wf: planned,
        recordings,
        hits,
        misses,
        hit_blocks,
        hit_bytes,
    }
}

/// What committing a run's recordings did, including which operators'
/// publications triggered evictions (for per-operator telemetry).
#[derive(Debug, Default)]
pub struct CommitStats {
    /// Compressed bytes added to the cache.
    pub published: u64,
    /// Entries evicted to admit this run's publications.
    pub evictions: u64,
    /// Compressed bytes those victims released.
    pub evicted_bytes: u64,
    /// Evictions attributed to each publishing operator, by name.
    pub per_op: Vec<(String, u64)>,
}

/// Publish every recording of a **cleanly** completed run and return
/// the compressed bytes added. Callers must not commit after a run
/// that saw faults or retries: a replayed quantum tees its held input's
/// output twice, and this discard-on-dirty rule is what keeps partial
/// or duplicated segments out of the cache.
pub fn commit_recordings(recordings: &[CacheRecording], cache: &ResultCache) -> u64 {
    commit_recordings_as(recordings, cache, None).published
}

/// [`commit_recordings`], attributing published bytes to `owner` (the
/// service layer's tenant) and reporting eviction detail. Each entry is
/// priced at the producing operator's calibrated recompute cost,
/// `setup + per_tuple × rows`, so the eviction policy keeps expensive
/// outputs resident.
pub fn commit_recordings_as(
    recordings: &[CacheRecording],
    cache: &ResultCache,
    owner: Option<&str>,
) -> CommitStats {
    let mut stats = CommitStats::default();
    for r in recordings {
        let rows = recover(&r.rows);
        let cost = r.setup + r.per_tuple * rows.len() as u64;
        let out = cache.publish_costed(r.fingerprint, &r.schema, &rows, cost, owner);
        stats.published += out.added;
        stats.evictions += out.evictions;
        stats.evicted_bytes += out.evicted_bytes;
        if out.evictions > 0 {
            stats.per_op.push((r.name.clone(), out.evictions));
        }
    }
    stats
}

/// Fold a commit's eviction counts into a finished run's per-operator
/// metrics, so `cacheEvictions` surfaces through the same telemetry
/// spine as hits and misses. Shared by both executors and the service
/// finalizer.
pub(crate) fn apply_evictions_to_metrics(
    stats: &CommitStats,
    metrics: &mut crate::metrics::RunMetrics,
) {
    for (name, n) in &stats.per_op {
        if let Some(m) = metrics.operators.iter_mut().find(|m| &m.name == name) {
            m.cache_evictions += n;
        }
    }
}

/// Fold a commit's eviction counts into the trace's terminal sample —
/// evictions happen at commit time, after the last sample was taken.
pub(crate) fn apply_evictions_to_trace(
    stats: &CommitStats,
    trace: &mut crate::trace::ProgressTrace,
) {
    let Some((_, snaps)) = trace.samples.last_mut() else {
        return;
    };
    for (name, n) in &stats.per_op {
        if let Some(s) = snaps.iter_mut().find(|s| &s.name == name) {
            s.cache_evictions += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FilterOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, CmpOp, DataType, Value};

    fn schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int)])
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(schema(), vec![Value::Int(i)]).unwrap())
            .collect()
    }

    fn linear(n: i64) -> (Workflow, crate::ops::SinkHandle) {
        let mut b = WorkflowBuilder::new();
        let batch = Batch::from_rows(schema(), (0..n).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        let s = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
        let f = b.add(
            Arc::new(FilterOp::cmp("filter", "id", CmpOp::Ge, Value::Int(0))),
            2,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let k = b.add(Arc::new(sink_op), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        (b.build().unwrap(), handle)
    }

    fn temp_cache_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scriptflow-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_lookup_roundtrip_preserves_rows() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(42);
        let data = rows(700); // > one block
        let bytes = cache.publish(fp, &schema, &data);
        assert!(bytes > 0);
        assert_eq!(cache.bytes(), bytes);
        assert_eq!(cache.entries(), 1);
        let entry = cache.lookup(fp).expect("published");
        assert_eq!(entry.rows(), 700);
        assert!(entry.blocks() >= 2, "block size is bounded");
        let back: Vec<_> = entry.tuples().iter().map(|t| t.values().to_vec()).collect();
        let want: Vec<_> = data.iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(back, want);
        assert!(cache.lookup(OpFingerprint(43)).is_none());
    }

    #[test]
    fn publish_is_idempotent_first_writer_wins() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(7);
        let first = cache.publish(fp, &schema, &rows(10));
        assert!(first > 0);
        assert_eq!(cache.publish(fp, &schema, &rows(10)), 0);
        assert_eq!(cache.bytes(), first);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn budget_caps_bytes_and_evicts_cheapest_per_byte_first() {
        let schema = schema();
        let unbounded = ResultCache::new();
        let per_entry = unbounded.publish(OpFingerprint(1), &schema, &rows(100));
        assert!(per_entry > 0);

        // Room for exactly two same-sized entries.
        let cache = ResultCache::new().with_byte_budget(per_entry * 2);
        let expensive = SimDuration::from_micros(1_000_000);
        let cheap = SimDuration::from_micros(10);
        cache.publish_costed(OpFingerprint(1), &schema, &rows(100), expensive, None);
        cache.publish_costed(OpFingerprint(2), &schema, &rows(100), cheap, None);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 0);

        // The third publish must evict — and the victim is the cheap
        // entry, not the expensive one and not the newcomer.
        let out =
            cache.publish_costed(OpFingerprint(3), &schema, &rows(100), cheap, None);
        assert!(out.admitted);
        assert_eq!(out.evictions, 1);
        assert_eq!(out.evicted_bytes, per_entry);
        assert!(cache.bytes() <= per_entry * 2, "budget holds after publish");
        assert!(cache.lookup(OpFingerprint(1)).is_some(), "expensive kept");
        assert!(cache.lookup(OpFingerprint(2)).is_none(), "cheap evicted");
        assert!(cache.lookup(OpFingerprint(3)).is_some(), "newcomer admitted");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.evicted_bytes(), per_entry);
        assert_eq!(
            cache.bytes(),
            per_entry * 3 - cache.evicted_bytes(),
            "byte ledger sums: Σ published − Σ evicted"
        );
    }

    #[test]
    fn oversized_entry_is_rejected_not_admitted() {
        let schema = schema();
        let cache = ResultCache::new().with_byte_budget(8);
        let out = cache.publish_costed(
            OpFingerprint(1),
            &schema,
            &rows(500),
            SimDuration::ZERO,
            None,
        );
        assert!(!out.admitted);
        assert_eq!(out.added, 0);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn eviction_is_deterministic_across_identical_sequences() {
        let schema = schema();
        let survivors = |budget_entries: u64| {
            let probe = ResultCache::new();
            let per_entry = probe.publish(OpFingerprint(0), &schema, &rows(64));
            let cache = ResultCache::new().with_byte_budget(per_entry * budget_entries);
            for i in 0..12u64 {
                // Costs repeat so several entries tie on score; the seq
                // tie-breaker must still make victim choice unique.
                let cost = SimDuration::from_micros((i % 4) * 500);
                cache.publish_costed(OpFingerprint(i as u128 + 1), &schema, &rows(64), cost, None);
            }
            (cache.fingerprints(), cache.evictions(), cache.bytes())
        };
        let a = survivors(3);
        let b = survivors(3);
        assert_eq!(a, b, "same sequence + budget → same victims");
        assert!(a.1 > 0, "the sweep must actually evict");
    }

    #[test]
    fn set_byte_budget_applies_eviction_immediately() {
        let schema = schema();
        let cache = ResultCache::new();
        for i in 0..4u128 {
            cache.publish_costed(
                OpFingerprint(i + 1),
                &schema,
                &rows(64),
                SimDuration::from_micros(i as u64 * 100),
                None,
            );
        }
        let total = cache.bytes();
        assert_eq!(cache.evictions(), 0);
        cache.set_byte_budget(Some(total / 2));
        assert!(cache.bytes() <= total / 2, "shrinking the budget evicts now");
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn owner_accounting_credits_evicted_entries() {
        let schema = schema();
        let probe = ResultCache::new();
        let per_entry = probe.publish(OpFingerprint(0), &schema, &rows(64));
        let cache = ResultCache::new().with_byte_budget(per_entry * 2);
        cache.publish_costed(
            OpFingerprint(1),
            &schema,
            &rows(64),
            SimDuration::ZERO,
            Some("alice"),
        );
        cache.publish_costed(
            OpFingerprint(2),
            &schema,
            &rows(64),
            SimDuration::from_micros(9999),
            Some("bob"),
        );
        assert_eq!(cache.owner_bytes("alice"), per_entry);
        assert_eq!(cache.owner_bytes("bob"), per_entry);
        // Alice's cheap entry is the victim; her balance is credited.
        cache.publish_costed(
            OpFingerprint(3),
            &schema,
            &rows(64),
            SimDuration::from_micros(9999),
            Some("bob"),
        );
        assert_eq!(cache.owner_bytes("alice"), 0);
        assert_eq!(cache.owner_bytes("bob"), per_entry * 2);
        // The single-flight follower republished the same fingerprint:
        // idempotent publish charges it nothing.
        let out = cache.publish_costed(
            OpFingerprint(3),
            &schema,
            &rows(64),
            SimDuration::from_micros(9999),
            Some("carol"),
        );
        assert_eq!(out.added, 0);
        assert_eq!(cache.owner_bytes("carol"), 0);
    }

    #[test]
    fn poisoned_cache_lock_recovers_instead_of_cascading() {
        let cache = Arc::new(ResultCache::new());
        let schema = schema();
        cache.publish(OpFingerprint(1), &schema, &rows(10));
        let c2 = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.inner.lock().unwrap();
            panic!("poison the cache lock mid-critical-section");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "the panic must poison the lock");
        // Every accessor still works: state is seal-once, so recovery
        // via into_inner observes a consistent cache.
        assert_eq!(cache.entries(), 1);
        assert!(cache.lookup(OpFingerprint(1)).is_some());
        assert!(cache.publish(OpFingerprint(2), &schema, &rows(5)) > 0);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn poisoned_recording_buffer_recovers() {
        let (wf, _) = linear(10);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::ZERO);
        let rec = &plan.recordings[0];
        {
            let mut buf = recover(&rec.rows);
            buf.clear();
            buf.extend(rows(10));
        }
        let rows_arc = Arc::clone(&rec.rows);
        let _ = std::thread::spawn(move || {
            let _guard = rows_arc.lock().unwrap();
            panic!("poison the recording buffer, as a sink panic would");
        })
        .join();
        assert!(rec.rows.is_poisoned());
        // Commit still publishes the teed rows.
        let added = commit_recordings(&plan.recordings[..1], &cache);
        assert!(added > 0);
        assert_eq!(cache.lookup(wf.fingerprint(OpId(0))).unwrap().rows(), 10);
    }

    #[test]
    fn persistent_cache_reopens_with_identical_rows() {
        let dir = temp_cache_dir("reopen");
        let schema = schema();
        let data = rows(700);
        let bytes = {
            let cache = ResultCache::persistent(&dir).unwrap();
            cache.publish(OpFingerprint(42), &schema, &data)
        };
        assert!(bytes > 0);
        // A brand-new cache object over the same root: same entry, same
        // bytes, same rows.
        let cache = ResultCache::persistent(&dir).unwrap();
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.bytes(), bytes);
        let entry = cache.lookup(OpFingerprint(42)).expect("served from disk");
        assert_eq!(entry.rows(), 700);
        let back: Vec<_> = entry.tuples().iter().map(|t| t.values().to_vec()).collect();
        let want: Vec<_> = data.iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(back, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_persisted_entry_degrades_to_a_miss() {
        let dir = temp_cache_dir("corrupt");
        let schema = schema();
        {
            let cache = ResultCache::persistent(&dir).unwrap();
            cache.publish(OpFingerprint(7), &schema, &rows(100));
        }
        let seg = dir.join(format!("{:032x}.seg", 7u128));
        let mut image = std::fs::read(&seg).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x55;
        std::fs::write(&seg, &image).unwrap();
        let cache = ResultCache::persistent(&dir).unwrap();
        assert_eq!(cache.entries(), 1, "manifest still lists the entry");
        assert!(cache.lookup(OpFingerprint(7)).is_none(), "corruption is a miss");
        assert_eq!(cache.entries(), 0, "the bad entry is dropped");
        assert_eq!(cache.bytes(), 0, "its bytes are released");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_persisted_entry_degrades_to_a_miss() {
        let dir = temp_cache_dir("truncate");
        let schema = schema();
        {
            let cache = ResultCache::persistent(&dir).unwrap();
            cache.publish(OpFingerprint(9), &schema, &rows(100));
        }
        let seg = dir.join(format!("{:032x}.seg", 9u128));
        let image = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &image[..image.len() / 3]).unwrap();
        let cache = ResultCache::persistent(&dir).unwrap();
        assert!(cache.lookup(OpFingerprint(9)).is_none());
        assert_eq!(cache.bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_opens_as_an_empty_cache() {
        let dir = temp_cache_dir("badmanifest");
        {
            let cache = ResultCache::persistent(&dir).unwrap();
            cache.publish(OpFingerprint(1), &schema(), &rows(10));
        }
        std::fs::write(dir.join("MANIFEST"), b"not a manifest\n").unwrap();
        let cache = ResultCache::persistent(&dir).unwrap();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_cache_sweeps_stale_temp_files_on_open() {
        let dir = temp_cache_dir("tmpsweep");
        std::fs::create_dir_all(&dir).unwrap();
        let stale = dir.join(format!("{:032x}.tmp", 5u128));
        std::fs::write(&stale, b"half-written").unwrap();
        let _cache = ResultCache::persistent(&dir).unwrap();
        assert!(!stale.exists(), "crashed-publish temp files are swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_plan_records_everything_cacheable() {
        let (wf, _) = linear(20);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::from_micros(900));
        assert_eq!(plan.hits, 0);
        // scan + filter are cacheable; the sink holds shared state.
        assert_eq!(plan.misses, 2);
        assert_eq!(plan.recordings.len(), 2);
        assert_eq!(plan.wf.operator_count(), 3, "cold plan keeps every node");
        assert!(plan.wf.op(OpId(0)).factory.cache_recording());
        assert!(!plan.wf.op(OpId(2)).factory.cache_recording(), "sink bare");
    }

    #[test]
    fn warm_plan_serves_the_deepest_hit_and_skips_its_cone() {
        let (wf, _) = linear(20);
        let cache = ResultCache::new();
        // Seed the cache with the filter's output under its fingerprint.
        let filter_id = wf.op_by_name("filter").unwrap();
        cache.publish(
            wf.fingerprint(filter_id),
            wf.schema(filter_id),
            &rows(20),
        );
        let plan = prepare(&wf, &cache, SimDuration::from_micros(900));
        assert_eq!(plan.hits, 1);
        assert_eq!(plan.misses, 0, "everything upstream of the hit skipped");
        assert_eq!(
            plan.wf.operator_count(),
            2,
            "scan is skipped; replay + sink remain"
        );
        let replay = plan.wf.op_by_name("filter").expect("replay keeps the name");
        let (blocks, bytes) = plan.wf.op(replay).factory.cache_replay().unwrap();
        assert!(blocks >= 1);
        assert!(bytes > 0);
        assert_eq!(plan.hit_blocks, blocks);
        assert_eq!(plan.hit_bytes, bytes);
        // The replay op charges its read through setup on one worker.
        assert_eq!(
            plan.wf.op(replay).factory.cost().setup,
            SimDuration::from_micros(900) * blocks
        );
        assert_eq!(plan.wf.op(replay).parallelism, 1);
    }

    #[test]
    fn commit_publishes_recorded_rows() {
        let (wf, _) = linear(15);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::ZERO);
        // Simulate the executors' tee (replacing whatever the DAG
        // validation probe already captured).
        let scan_rec = &plan.recordings[0];
        {
            let mut buf = scan_rec.rows.lock().unwrap();
            buf.clear();
            buf.extend(rows(15));
        }
        let added = commit_recordings(&plan.recordings[..1], &cache);
        assert!(added > 0);
        assert_eq!(cache.bytes(), added);
        let entry = cache.lookup(wf.fingerprint(OpId(0))).unwrap();
        assert_eq!(entry.rows(), 15);
        // Re-committing adds nothing (idempotent publish).
        assert_eq!(commit_recordings(&plan.recordings[..1], &cache), 0);
    }

    #[test]
    fn commit_prices_entries_at_the_operators_calibrated_cost() {
        let (wf, _) = linear(15);
        let cache = ResultCache::new();
        let plan = prepare(&wf, &cache, SimDuration::ZERO);
        // Every recording carries the factory's cost profile, captured
        // at plan time.
        for (r, name) in plan.recordings.iter().zip(["scan", "filter"]) {
            assert_eq!(r.name, name);
            let id = wf.op_by_name(name).unwrap();
            let cost = wf.op(id).factory.cost();
            assert_eq!(r.setup, cost.setup);
            assert_eq!(r.per_tuple, cost.per_tuple);
        }
    }

    #[test]
    fn recording_factory_tees_without_changing_output() {
        let inner = Arc::new(FilterOp::cmp("f", "id", CmpOp::Lt, Value::Int(3)));
        let rows_buf = Arc::new(Mutex::new(Vec::new()));
        let rec = RecordingFactory::new(inner, Arc::clone(&rows_buf));
        assert!(rec.cache_recording());
        assert_eq!(rec.name(), "f");
        let mut inst = rec.create();
        let mut out = OutputCollector::new();
        for t in rows(5) {
            inst.on_tuple(t, 0, &mut out).unwrap();
        }
        assert_eq!(out.len(), 3, "filter semantics unchanged");
        assert_eq!(rows_buf.lock().unwrap().len(), 3, "teed exactly the output");
    }

    #[test]
    fn empty_output_round_trips_as_empty_entry() {
        let cache = ResultCache::new();
        let schema = schema();
        let fp = OpFingerprint(9);
        assert_eq!(cache.publish(fp, &schema, &[]), 0);
        let entry = cache.lookup(fp).unwrap();
        assert_eq!(entry.rows(), 0);
        assert_eq!(entry.blocks(), 0);
        assert!(entry.tuples().is_empty());
    }
}
