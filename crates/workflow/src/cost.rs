//! Virtual-cost profiles and engine configuration.

use scriptflow_simcluster::{ClusterSpec, LanguageTable, SimDuration};

use crate::retry::{RetryConfig, RetryPolicy};

/// Per-operator virtual costs, calibrated in "Python time" — the
/// language table scales them for other languages.
#[derive(Debug, Clone)]
pub struct CostProfile {
    /// One-time setup per worker instance (open files, load models,
    /// allocate state).
    pub setup: SimDuration,
    /// CPU time per input tuple.
    pub per_tuple: SimDuration,
    /// Per-port overrides of `per_tuple` (port index, cost). Multi-port
    /// operators like a join often pay differently for build vs probe
    /// tuples.
    pub per_tuple_ports: Vec<(usize, SimDuration)>,
    /// Fixed overhead per batch (dispatch, framing).
    pub per_batch: SimDuration,
    /// If true, per-tuple work is *malleable*: it may spread over the idle
    /// CPUs of the worker's machine (PyTorch-style internal parallelism,
    /// which Texera leaves unrestricted — §IV-A "worker configuration").
    pub malleable: bool,
    /// Utilization exponent for malleable work: a kernel on `c` CPUs runs
    /// at `c^u` effective parallelism (single-process kernels cannot
    /// saturate a whole machine; u < 1 models the efficiency loss).
    pub malleable_utilization: f64,
    /// Place every worker of this operator on the same machine (model /
    /// data locality — large-model operators avoid re-shipping the
    /// checkpoint). Colocated malleable workers share the machine's CPUs.
    pub colocate: bool,
    /// Extra per-tuple cost paid by each worker's first
    /// [`CostProfile::warmup_tuples`] tuples (interpreter/vectorization
    /// warm-up before steady-state throughput).
    pub warmup_extra: SimDuration,
    /// How many tuples the warm-up penalty applies to.
    pub warmup_tuples: u64,
    /// Input port the warm-up applies to (a join warms up on its probe
    /// port, not while building).
    pub warmup_port: usize,
}

impl Default for CostProfile {
    /// A cheap relational operator: ~2 µs per tuple, negligible setup.
    fn default() -> Self {
        CostProfile {
            setup: SimDuration::from_micros(500),
            per_tuple: SimDuration::from_micros(2),
            per_tuple_ports: Vec::new(),
            per_batch: SimDuration::from_micros(50),
            malleable: false,
            malleable_utilization: 1.0,
            colocate: false,
            warmup_extra: SimDuration::ZERO,
            warmup_tuples: 0,
            warmup_port: 0,
        }
    }
}

impl CostProfile {
    /// Convenience: a profile with the given per-tuple cost in µs.
    pub fn per_tuple_micros(us: u64) -> Self {
        CostProfile {
            per_tuple: SimDuration::from_micros(us),
            ..CostProfile::default()
        }
    }

    /// Builder-style setter for the setup cost.
    pub fn with_setup(mut self, setup: SimDuration) -> Self {
        self.setup = setup;
        self
    }

    /// Builder-style setter for malleability.
    pub fn with_malleable(mut self, malleable: bool) -> Self {
        self.malleable = malleable;
        self
    }

    /// Builder-style per-port override of the per-tuple cost.
    pub fn with_port_cost(mut self, port: usize, per_tuple: SimDuration) -> Self {
        self.per_tuple_ports.push((port, per_tuple));
        self
    }

    /// The per-tuple cost effective on `port`.
    pub fn per_tuple_on(&self, port: usize) -> SimDuration {
        self.per_tuple_ports
            .iter()
            .find(|(p, _)| *p == port)
            .map(|(_, d)| *d)
            .unwrap_or(self.per_tuple)
    }
}

/// Engine-level knobs of the simulated workflow executor.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The cluster the workflow runs on.
    pub cluster: ClusterSpec,
    /// Language cost table.
    pub languages: LanguageTable,
    /// Tuples per batch on edges (Texera auto-tunes this; the engine
    /// exposes it as a config so experiments can sweep it).
    pub batch_size: usize,
    /// Serialization cost per byte crossing an operator boundary, in
    /// seconds (charged on top of language boundary costs). This is the
    /// "runtime overhead" of §III-D.
    pub serde_secs_per_byte: f64,
    /// Fixed (de)serialization cost per tuple at each operator boundary,
    /// charged as *throughput* work on the consuming worker (Python
    /// object pickling dominates Texera's per-tuple overhead; byte-
    /// proportional costs alone underestimate it).
    pub serde_per_tuple: scriptflow_simcluster::SimDuration,
    /// When false, every edge becomes blocking: downstream operators only
    /// start after upstream completion. Ablation knob isolating the
    /// pipelining benefit the paper credits for Fig. 13a.
    pub pipelining: bool,
    /// Per-operator retry budgets for faulted run quanta (see
    /// [`crate::retry`]). Disabled by default, so configurations that
    /// never touch it reproduce the pre-retry engines exactly. Both
    /// executors honor it: the pooled live executor replays the held
    /// input batch after the backoff, the simulator re-delivers the
    /// batch as a fresh virtual quantum.
    pub retry: RetryConfig,
    /// When true, edges carry sealed [`scriptflow_datakit::ColumnarBatch`]
    /// payloads and operators run their `on_batch` columnar kernels
    /// (zone-map batch skipping, monomorphic loops). Off by default: the
    /// row path is the calibrated compatibility baseline and both paths
    /// must produce identical rows (pinned by the parity suite).
    pub columnar: bool,
    /// Fraction of the row-path per-tuple compute cost that survives on
    /// the columnar path in the simulator (< 1.0 is a speedup; the
    /// calibrated value lives in `scriptflow_core::Calibration`). Ignored
    /// unless [`EngineConfig::columnar`] is set.
    pub columnar_discount: f64,
    /// Memory budget in bytes for each blocking operator's buffered state
    /// (hash join build table, aggregation groups, sort buffer). `None`
    /// (the default) means unbounded — the pre-spill behaviour, and the
    /// setting under which every paper anchor is reproduced
    /// byte-identically. Past the budget an operator hash-partitions its
    /// state into the compressed block store and recurses on overflow
    /// partitions. A per-operator override set on the operator factory
    /// wins over this engine-level value.
    pub memory_budget: Option<usize>,
    /// Virtual time the simulator charges per compressed block written to
    /// the spill store. Ignored when nothing spills.
    pub spill_write_per_block: SimDuration,
    /// Virtual time the simulator charges per compressed block read back
    /// from the spill store. Ignored when nothing spills.
    pub spill_read_per_block: SimDuration,
    /// Fingerprint-keyed result cache for incremental re-execution, or
    /// `None` (the default) for the memoization-free engines under which
    /// every paper anchor is reproduced byte-identically. When set, both
    /// executors consult the cache before running: operators whose
    /// fingerprint (spec ⊕ upstream cone, Merkle-style) has a sealed
    /// entry are *served* — replaced by a replay source reading the
    /// cached segment — and the untouched cone upstream of them is
    /// skipped entirely; cache-miss operators are recorded and published
    /// back on clean completion. Share one cache across runs (or
    /// tenants, via the service) to get edit-rerun memoization.
    pub result_cache: Option<std::sync::Arc<crate::cache::ResultCache>>,
    /// Virtual time the simulator charges per compressed block decoded
    /// from a cached result segment when serving a hit. Ignored unless
    /// [`EngineConfig::result_cache`] is set.
    pub cache_read_per_block: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cluster: ClusterSpec::paper_cluster(),
            languages: LanguageTable::default(),
            batch_size: 400,
            serde_secs_per_byte: 4e-9,
            serde_per_tuple: SimDuration::from_micros(2),
            pipelining: true,
            retry: RetryConfig::default(),
            columnar: false,
            columnar_discount: 0.55,
            memory_budget: None,
            spill_write_per_block: SimDuration::from_micros(2_500),
            spill_read_per_block: SimDuration::from_micros(1_200),
            result_cache: None,
            cache_read_per_block: SimDuration::from_micros(900),
        }
    }
}

impl EngineConfig {
    /// Config with pipelining disabled (ablation).
    pub fn without_pipelining(mut self) -> Self {
        self.pipelining = false;
        self
    }

    /// Config with serde boundary costs disabled (ablation).
    pub fn without_serde_cost(mut self) -> Self {
        self.serde_secs_per_byte = 0.0;
        self.serde_per_tuple = SimDuration::ZERO;
        self
    }

    /// Serde cost for `bytes` crossing one edge.
    pub fn serde_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.serde_secs_per_byte)
    }

    /// Config with the same [`RetryPolicy`] for every operator.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = RetryConfig::uniform(policy);
        self
    }

    /// Config with the columnar batch path toggled (see
    /// [`EngineConfig::columnar`]).
    pub fn with_columnar(mut self, enabled: bool) -> Self {
        self.columnar = enabled;
        self
    }

    /// Config with a blocking-operator memory budget (see
    /// [`EngineConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Config serving and recording through `cache` (see
    /// [`EngineConfig::result_cache`]).
    pub fn with_result_cache(mut self, cache: std::sync::Arc<crate::cache::ResultCache>) -> Self {
        self.result_cache = Some(cache);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_cheap() {
        let p = CostProfile::default();
        assert!(p.per_tuple < SimDuration::from_millis(1));
        assert!(!p.malleable);
    }

    #[test]
    fn builders() {
        let p = CostProfile::per_tuple_micros(10)
            .with_setup(SimDuration::from_secs(1))
            .with_malleable(true);
        assert_eq!(p.per_tuple, SimDuration::from_micros(10));
        assert_eq!(p.setup, SimDuration::from_secs(1));
        assert!(p.malleable);
    }

    #[test]
    fn serde_cost_scales() {
        let cfg = EngineConfig::default();
        assert!(cfg.serde_cost(1_000_000) > cfg.serde_cost(1_000));
        let off = EngineConfig::default().without_serde_cost();
        assert_eq!(off.serde_cost(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn ablation_toggles() {
        let cfg = EngineConfig::default().without_pipelining();
        assert!(!cfg.pipelining);
        assert!(EngineConfig::default().pipelining);
    }

    #[test]
    fn columnar_defaults_off_and_builder_enables() {
        let cfg = EngineConfig::default();
        assert!(
            !cfg.columnar,
            "default config must reproduce the row-path engines"
        );
        assert!(cfg.columnar_discount > 0.0 && cfg.columnar_discount < 1.0);
        assert!(EngineConfig::default().with_columnar(true).columnar);
    }

    #[test]
    fn retry_defaults_off_and_builder_enables() {
        assert!(
            !EngineConfig::default().retry.enabled(),
            "default config must reproduce the pre-retry engines"
        );
        let cfg = EngineConfig::default().with_retry(RetryPolicy::attempts(3));
        assert_eq!(cfg.retry.policy_for("anything").max_attempts, 3);
    }

    #[test]
    fn result_cache_defaults_off_and_builder_enables() {
        let cfg = EngineConfig::default();
        assert!(
            cfg.result_cache.is_none(),
            "default config must reproduce the memoization-free engines"
        );
        assert!(cfg.cache_read_per_block > SimDuration::ZERO);
        let cache = std::sync::Arc::new(crate::cache::ResultCache::new());
        let on = EngineConfig::default().with_result_cache(cache);
        assert!(on.result_cache.is_some());
    }

    #[test]
    fn memory_budget_defaults_unbounded_and_builder_sets() {
        let cfg = EngineConfig::default();
        assert!(
            cfg.memory_budget.is_none(),
            "default config must reproduce the pre-spill engines"
        );
        assert!(cfg.spill_write_per_block > SimDuration::ZERO);
        assert!(cfg.spill_read_per_block > SimDuration::ZERO);
        let tiny = EngineConfig::default().with_memory_budget(Some(4096));
        assert_eq!(tiny.memory_budget, Some(4096));
    }
}
