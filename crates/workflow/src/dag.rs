//! Workflow DAG construction and validation.
//!
//! This is the GUI paradigm's defining structure: users *must* connect
//! operators with explicit links that represent the flow of data
//! (§III-A). The builder rejects malformed graphs and propagates schemas
//! along edges at build time, so data-shape errors surface before any
//! tuple moves — in contrast to the notebook engine, which discovers them
//! mid-run inside a cell.

use std::collections::HashSet;
use std::sync::Arc;

use scriptflow_core::fingerprint::{Fingerprinter, OpFingerprint};
use scriptflow_datakit::SchemaRef;

use crate::operator::{OperatorFactory, WorkflowError, WorkflowResult};
use crate::partition::{CompiledPartitioner, PartitionStrategy};

/// Identifier of an operator node within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Identifier of an edge within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// One operator node: a factory plus its configured parallelism.
#[derive(Clone)]
pub struct OpNode {
    /// Factory creating worker instances and describing the operator.
    pub factory: Arc<dyn OperatorFactory>,
    /// Number of worker instances (Texera's per-operator worker count).
    pub parallelism: usize,
}

/// One edge: `from`'s output feeds `to`'s input port `to_port`.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Producing operator.
    pub from: OpId,
    /// Consuming operator.
    pub to: OpId,
    /// Input port on the consumer.
    pub to_port: usize,
    /// How tuples are spread over the consumer's workers.
    pub partition: PartitionStrategy,
}

/// A validated workflow: operators, edges, propagated schemas,
/// per-node content fingerprints, and a topological order.
///
/// `Clone` is shallow (factories are shared `Arc`s): the service layer
/// clones workflows to re-plan cache-enabled submissions at dispatch
/// time.
#[derive(Clone)]
pub struct Workflow {
    ops: Vec<OpNode>,
    edges: Vec<Edge>,
    schemas: Vec<SchemaRef>,
    partitioners: Vec<CompiledPartitioner>,
    topo: Vec<OpId>,
    fingerprints: Vec<OpFingerprint>,
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field(
                "ops",
                &self
                    .ops
                    .iter()
                    .map(|n| format!("{} x{}", n.factory.name(), n.parallelism))
                    .collect::<Vec<_>>(),
            )
            .field("edges", &self.edges.len())
            .finish()
    }
}

impl Workflow {
    /// All operator nodes, indexed by [`OpId`].
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// One operator node.
    pub fn op(&self, id: OpId) -> &OpNode {
        &self.ops[id.0]
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The propagated output schema of an operator.
    pub fn schema(&self, id: OpId) -> &SchemaRef {
        &self.schemas[id.0]
    }

    /// The partitioner compiled for an edge at build time: hash columns
    /// already resolved to indices against the producer's output schema,
    /// so executors route tuples with no per-tuple name lookups.
    pub fn partitioner(&self, id: EdgeId) -> &CompiledPartitioner {
        &self.partitioners[id.0]
    }

    /// Operators in a valid execution order.
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// Edges entering `op`, sorted by input port.
    pub fn in_edges(&self, op: OpId) -> Vec<(EdgeId, &Edge)> {
        let mut v: Vec<(EdgeId, &Edge)> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == op)
            .map(|(i, e)| (EdgeId(i), e))
            .collect();
        v.sort_by_key(|(_, e)| e.to_port);
        v
    }

    /// Edges leaving `op`.
    pub fn out_edges(&self, op: OpId) -> Vec<(EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == op)
            .map(|(i, e)| (EdgeId(i), e))
            .collect()
    }

    /// Source operators (no input ports).
    pub fn sources(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId)
            .filter(|id| self.op(*id).factory.input_ports() == 0)
            .collect()
    }

    /// Sink operators (no outgoing edges).
    pub fn sinks(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId)
            .filter(|id| self.out_edges(*id).is_empty())
            .collect()
    }

    /// Number of operators — the paper's "number of operators" metric.
    pub fn operator_count(&self) -> usize {
        self.ops.len()
    }

    /// Total worker instances across operators — the paper's "number of
    /// parallel processes" metric for the workflow paradigm.
    pub fn total_workers(&self) -> usize {
        self.ops.iter().map(|n| n.parallelism).sum()
    }

    /// Look up an operator id by display name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        (0..self.ops.len())
            .map(OpId)
            .find(|id| self.op(*id).factory.name() == name)
    }

    /// The Merkle fingerprint of one operator: its spec digest folded
    /// with the fingerprints of everything upstream (plus the routing
    /// that feeds it). Equal fingerprints across workflows mean the
    /// node computes the same output multiset — the result cache's key.
    pub fn fingerprint(&self, id: OpId) -> OpFingerprint {
        self.fingerprints[id.0]
    }

    /// All node fingerprints, indexed by [`OpId`].
    pub fn fingerprints(&self) -> &[OpFingerprint] {
        &self.fingerprints
    }

    /// A single fingerprint for the whole workflow: the unordered fold
    /// of every node fingerprint. The service layer uses it to detect
    /// concurrent identical submissions (single-flight).
    pub fn workflow_fingerprint(&self) -> OpFingerprint {
        OpFingerprint::fold_unordered(self.fingerprints.iter().copied())
    }
}

/// Incremental workflow construction.
#[derive(Default)]
pub struct WorkflowBuilder {
    ops: Vec<OpNode>,
    edges: Vec<Edge>,
}

impl WorkflowBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        WorkflowBuilder::default()
    }

    /// Add an operator with the given parallelism; returns its id.
    pub fn add(&mut self, factory: Arc<dyn OperatorFactory>, parallelism: usize) -> OpId {
        assert!(parallelism > 0, "parallelism must be positive");
        let id = OpId(self.ops.len());
        self.ops.push(OpNode {
            factory,
            parallelism,
        });
        id
    }

    /// Connect `from`'s output to `to`'s input port `to_port`.
    pub fn connect(
        &mut self,
        from: OpId,
        to: OpId,
        to_port: usize,
        partition: PartitionStrategy,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            to_port,
            partition,
        });
        id
    }

    /// Validate the graph and propagate schemas; returns the immutable
    /// workflow or the first structural error found.
    pub fn build(self) -> WorkflowResult<Workflow> {
        let n = self.ops.len();
        if n == 0 {
            return Err(WorkflowError::InvalidDag(
                "workflow has no operators".into(),
            ));
        }

        // Unique operator names (the GUI addresses operators by name,
        // and names participate in fingerprints): typed rejection.
        let mut names = HashSet::new();
        for node in &self.ops {
            if !names.insert(node.factory.name().to_owned()) {
                return Err(WorkflowError::DuplicateOperator {
                    name: node.factory.name().to_owned(),
                });
            }
        }

        // Edge endpoints and ports must exist; each input port gets
        // exactly one incoming edge; sources take none.
        for e in &self.edges {
            if e.from.0 >= n || e.to.0 >= n {
                return Err(WorkflowError::InvalidDag(format!(
                    "edge references missing operator ({:?} -> {:?})",
                    e.from, e.to
                )));
            }
            let ports = self.ops[e.to.0].factory.input_ports();
            if e.to_port >= ports {
                return Err(WorkflowError::InvalidDag(format!(
                    "operator `{}` has {} input port(s); edge targets port {}",
                    self.ops[e.to.0].factory.name(),
                    ports,
                    e.to_port
                )));
            }
        }
        for (i, node) in self.ops.iter().enumerate() {
            let ports = node.factory.input_ports();
            for port in 0..ports {
                let count = self
                    .edges
                    .iter()
                    .filter(|e| e.to == OpId(i) && e.to_port == port)
                    .count();
                if count != 1 {
                    return Err(WorkflowError::InvalidDag(format!(
                        "operator `{}` input port {port} has {count} incoming edges (need exactly 1)",
                        node.factory.name()
                    )));
                }
            }
            if ports == 0 {
                if self.edges.iter().any(|e| e.to == OpId(i)) {
                    return Err(WorkflowError::InvalidDag(format!(
                        "source operator `{}` cannot take inputs",
                        node.factory.name()
                    )));
                }
                if node.factory.source_partitions(1).is_none() {
                    return Err(WorkflowError::InvalidDag(format!(
                        "operator `{}` has no input ports but produces no source data",
                        node.factory.name()
                    )));
                }
            }
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Deterministic order: process lowest id first.
        queue.sort_unstable();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(OpId(u));
            let mut next: Vec<usize> = Vec::new();
            for e in &self.edges {
                if e.from.0 == u {
                    indegree[e.to.0] -= 1;
                    if indegree[e.to.0] == 0 {
                        next.push(e.to.0);
                    }
                }
            }
            next.sort_unstable();
            queue.extend(next);
        }
        if topo.len() != n {
            return Err(WorkflowError::InvalidDag(
                "workflow contains a cycle".into(),
            ));
        }

        // Schema propagation in topological order.
        let mut schemas: Vec<Option<SchemaRef>> = vec![None; n];
        for &op in &topo {
            let node = &self.ops[op.0];
            let ports = node.factory.input_ports();
            let mut inputs: Vec<SchemaRef> = Vec::with_capacity(ports);
            for port in 0..ports {
                let e = self
                    .edges
                    .iter()
                    .find(|e| e.to == op && e.to_port == port)
                    .expect("validated above");
                inputs.push(
                    schemas[e.from.0]
                        .clone()
                        .expect("topological order guarantees upstream schema"),
                );
            }
            let out = node.factory.output_schema(&inputs)?;
            schemas[op.0] = Some(Arc::new(out));
        }

        let schemas: Vec<SchemaRef> = schemas.into_iter().map(|s| s.expect("all set")).collect();

        // Compile partitioners against the producer's propagated schema so
        // unknown hash columns are a build error, not a mid-run one, and
        // executors route without name resolution.
        let mut partitioners = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            let compiled = e.partition.compile(&schemas[e.from.0]).map_err(|err| {
                WorkflowError::InvalidDag(format!(
                    "edge `{}` -> `{}` port {}: cannot partition by {}: {err}",
                    self.ops[e.from.0].factory.name(),
                    self.ops[e.to.0].factory.name(),
                    e.to_port,
                    e.partition.label(),
                ))
            })?;
            partitioners.push(compiled);
        }

        // Merkle fingerprints, in topological order: each node's spec
        // digest folded with the fingerprints of its inputs. Parallelism
        // and edge routing are part of the digest — per-worker-stateful
        // operators (distinct, join) can produce different multisets
        // under different partitionings, so a cache must treat those as
        // different computations. Commutative operators (union) fold
        // their inputs order-independently: rewiring equivalent inputs
        // onto different ports is not an edit.
        let mut fingerprints = vec![OpFingerprint::ZERO; n];
        for &op in &topo {
            let node = &self.ops[op.0];
            let mut h = Fingerprinter::new("node");
            h.write_fingerprint(node.factory.fingerprint());
            h.write_usize(node.parallelism);
            let mut ins: Vec<&Edge> = self.edges.iter().filter(|e| e.to == op).collect();
            ins.sort_by_key(|e| e.to_port);
            if node.factory.commutative_inputs() {
                let folded = OpFingerprint::fold_unordered(ins.iter().map(|e| {
                    let mut link = Fingerprinter::new("link");
                    link.write_fingerprint(fingerprints[e.from.0]);
                    link.write_str(&e.partition.label());
                    link.finish()
                }));
                h.write_fingerprint(folded);
            } else {
                for e in &ins {
                    h.write_usize(e.to_port);
                    h.write_fingerprint(fingerprints[e.from.0]);
                    h.write_str(&e.partition.label());
                }
            }
            fingerprints[op.0] = h.finish();
        }

        Ok(Workflow {
            ops: self.ops,
            edges: self.edges,
            schemas,
            partitioners,
            topo,
            fingerprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FilterOp, ScanOp, SinkOp};
    use scriptflow_datakit::{Batch, DataType, Schema, Value};

    fn scan(name: &str, n: i64) -> Arc<dyn OperatorFactory> {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let rows = (0..n).map(|i| vec![Value::Int(i)]).collect();
        Arc::new(ScanOp::new(name, Batch::from_rows(schema, rows).unwrap()))
    }

    fn filter(name: &str) -> Arc<dyn OperatorFactory> {
        Arc::new(FilterOp::new(name, |t| {
            Ok(t.get_int("id").map(|v| v % 2 == 0).unwrap_or(false))
        }))
    }

    #[test]
    fn linear_workflow_builds() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("scan", 10), 1);
        let f = b.add(filter("filter"), 2);
        let k = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        assert_eq!(wf.operator_count(), 3);
        assert_eq!(wf.total_workers(), 4);
        assert_eq!(wf.topo_order(), &[s, f, k]);
        assert_eq!(wf.sources(), vec![s]);
        assert_eq!(wf.sinks(), vec![k]);
        assert_eq!(wf.schema(f).to_string(), "id: Int");
        assert_eq!(wf.op_by_name("filter"), Some(f));
        assert_eq!(wf.op_by_name("nope"), None);
    }

    #[test]
    fn compiles_edge_partitioners_at_build_time() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("scan", 10), 1);
        let f = b.add(filter("filter"), 2);
        let k = b.add(Arc::new(SinkOp::new("sink")), 1);
        let e0 = b.connect(s, f, 0, PartitionStrategy::Hash(vec!["id".into()]));
        let e1 = b.connect(f, k, 0, PartitionStrategy::Broadcast);
        let wf = b.build().unwrap();
        assert_eq!(
            wf.partitioner(e0),
            &CompiledPartitioner::Hash { indices: vec![0] }
        );
        assert!(wf.partitioner(e1).is_broadcast());
    }

    #[test]
    fn rejects_unknown_hash_column_at_build_time() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("scan", 10), 1);
        let f = b.add(filter("filter"), 2);
        b.connect(s, f, 0, PartitionStrategy::Hash(vec!["missing".into()]));
        let err = b.build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("hash(missing)"), "{msg}");
        assert!(matches!(err, WorkflowError::InvalidDag(_)));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            WorkflowBuilder::new().build(),
            Err(WorkflowError::InvalidDag(_))
        ));
    }

    #[test]
    fn rejects_duplicate_names_with_typed_error() {
        let mut b = WorkflowBuilder::new();
        b.add(scan("x", 1), 1);
        b.add(scan("x", 1), 1);
        let err = b.build().unwrap_err();
        assert_eq!(err, WorkflowError::DuplicateOperator { name: "x".into() });
        assert!(err.to_string().contains("duplicate operator name"));
    }

    fn linear_fingerprints(n: i64, parallelism: usize) -> Vec<OpFingerprint> {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("scan", n), 1);
        let f = b.add(filter("filter"), parallelism);
        let k = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        b.build().unwrap().fingerprints().to_vec()
    }

    #[test]
    fn fingerprints_are_stable_across_builds() {
        assert_eq!(linear_fingerprints(10, 2), linear_fingerprints(10, 2));
    }

    #[test]
    fn upstream_edit_propagates_merkle_style() {
        let a = linear_fingerprints(10, 2);
        let b = linear_fingerprints(11, 2);
        // The scan's content changed, so every node downstream of it
        // (i.e. all of them) carries a new fingerprint.
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x, y);
        }
    }

    #[test]
    fn parallelism_is_part_of_the_fingerprint() {
        let a = linear_fingerprints(10, 2);
        let b = linear_fingerprints(10, 3);
        assert_eq!(a[0], b[0], "the scan itself is unchanged");
        assert_ne!(a[1], b[1], "the filter's worker count changed");
        assert_ne!(a[2], b[2], "the sink consumes a different plan");
    }

    #[test]
    fn workflow_clone_is_shallow_and_fingerprint_stable() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("scan", 5), 1);
        let k = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(s, k, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let c = wf.clone();
        assert_eq!(wf.workflow_fingerprint(), c.workflow_fingerprint());
        assert!(Arc::ptr_eq(
            &wf.op(OpId(0)).factory,
            &c.op(OpId(0)).factory
        ));
    }

    #[test]
    fn rejects_unconnected_port() {
        let mut b = WorkflowBuilder::new();
        b.add(scan("s", 1), 1);
        b.add(filter("f"), 1); // port 0 never connected
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("0 incoming edges"));
    }

    #[test]
    fn rejects_double_connected_port() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.add(scan("s1", 1), 1);
        let s2 = b.add(scan("s2", 1), 1);
        let f = b.add(filter("f"), 1);
        b.connect(s1, f, 0, PartitionStrategy::RoundRobin);
        b.connect(s2, f, 0, PartitionStrategy::RoundRobin);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("2 incoming edges"));
    }

    #[test]
    fn rejects_bad_port_index() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("s", 1), 1);
        let f = b.add(filter("f"), 1);
        b.connect(s, f, 5, PartitionStrategy::RoundRobin);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("port 5"));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = WorkflowBuilder::new();
        let f1 = b.add(filter("f1"), 1);
        let f2 = b.add(filter("f2"), 1);
        b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
        b.connect(f2, f1, 0, PartitionStrategy::RoundRobin);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn rejects_edge_into_source() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.add(scan("s1", 1), 1);
        let s2 = b.add(scan("s2", 1), 1);
        b.connect(s1, s2, 0, PartitionStrategy::RoundRobin);
        assert!(b.build().is_err());
    }

    #[test]
    fn fan_out_is_allowed() {
        let mut b = WorkflowBuilder::new();
        let s = b.add(scan("s", 4), 1);
        let f1 = b.add(filter("f1"), 1);
        let f2 = b.add(filter("f2"), 1);
        let k1 = b.add(Arc::new(SinkOp::new("k1")), 1);
        let k2 = b.add(Arc::new(SinkOp::new("k2")), 1);
        b.connect(s, f1, 0, PartitionStrategy::RoundRobin);
        b.connect(s, f2, 0, PartitionStrategy::RoundRobin);
        b.connect(f1, k1, 0, PartitionStrategy::Single);
        b.connect(f2, k2, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        assert_eq!(wf.out_edges(s).len(), 2);
        assert_eq!(wf.sinks().len(), 2);
    }
}
