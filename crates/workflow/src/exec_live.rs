//! Live executor: runs a workflow on real OS threads.
//!
//! Where [`crate::exec_sim`] models time, this executor spends it: every
//! operator worker is a thread, edges are crossbeam channels, and the
//! result is measured in wall-clock. It exists for two reasons:
//!
//! 1. **Correctness cross-check** — both executors must produce identical
//!    data outputs for any workflow (the integration suite asserts this).
//! 2. **Engine-overhead benchmarking** — Criterion benches drive it to
//!    measure the real cost of the pipelined architecture on the host.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use scriptflow_datakit::Tuple;
use scriptflow_simcluster::{SimDuration, SimTime};

use crate::dag::{OpId, Workflow};
use crate::metrics::{OperatorMetrics, OperatorState, RunMetrics};
use crate::operator::{OutputCollector, WorkflowError, WorkflowResult};

/// Message flowing along a channel between two workers.
enum Msg {
    /// Data tuples for an input port.
    Batch { port: usize, tuples: Vec<Tuple> },
    /// The sending worker is done with this edge.
    Eos { port: usize },
}

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveRunResult {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Instrumentation counters (`makespan` mirrors `elapsed`).
    pub metrics: RunMetrics,
}

/// The real-thread workflow executor.
pub struct LiveExecutor {
    batch_size: usize,
}

impl Default for LiveExecutor {
    fn default() -> Self {
        LiveExecutor { batch_size: 256 }
    }
}

impl LiveExecutor {
    /// Executor with the given edge batch size.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        LiveExecutor { batch_size }
    }

    /// Execute `wf` on OS threads; blocks until completion.
    pub fn run(&self, wf: &Workflow) -> WorkflowResult<LiveRunResult> {
        let start = Instant::now();

        // Channel per (op, worker): all upstream workers share one sender.
        let mut txs: Vec<Vec<Sender<Msg>>> = Vec::new();
        let mut rxs: Vec<Vec<Option<Receiver<Msg>>>> = Vec::new();
        for node in wf.ops() {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for _ in 0..node.parallelism {
                let (tx, rx) = unbounded::<Msg>();
                t.push(tx);
                r.push(Some(rx));
            }
            txs.push(t);
            rxs.push(r);
        }

        let error: Arc<Mutex<Option<WorkflowError>>> = Arc::new(Mutex::new(None));
        let in_counts: Vec<AtomicU64> = wf.ops().iter().map(|_| AtomicU64::new(0)).collect();
        let out_counts: Vec<AtomicU64> = wf.ops().iter().map(|_| AtomicU64::new(0)).collect();

        crossbeam::thread::scope(|scope| {
            for (i, node) in wf.ops().iter().enumerate() {
                let op = OpId(i);
                // Downstream senders per out-edge: (to_port, strategy,
                // senders to each downstream worker).
                let downstream: Vec<_> = wf
                    .out_edges(op)
                    .into_iter()
                    .map(|(_, e)| (e.to_port, e.partition.clone(), txs[e.to.0].clone()))
                    .collect();
                // Expected EOS per port = sum of upstream parallelism.
                let ports = node.factory.input_ports();
                let mut expected_eos = vec![0usize; ports.max(1)];
                for (_, e) in wf.in_edges(op) {
                    expected_eos[e.to_port] += wf.op(e.from).parallelism;
                }
                let blocking = node.factory.blocking_ports();

                #[allow(clippy::needless_range_loop)]
                for local in 0..node.parallelism {
                    let rx = rxs[i][local].take();
                    let factory = node.factory.as_ref();
                    let downstream = downstream.clone();
                    let expected_eos = expected_eos.clone();
                    let blocking = blocking.clone();
                    let error = error.clone();
                    let in_counts = &in_counts;
                    let out_counts = &out_counts;
                    let batch_size = self.batch_size;
                    let parallelism = node.parallelism;

                    scope.spawn(move |_| {
                        let mut instance = factory.create();
                        let mut seqs = vec![0u64; downstream.len()];
                        let mut collector = OutputCollector::new();
                        let fail = |e: WorkflowError, error: &Mutex<Option<WorkflowError>>| {
                            let mut g = error.lock();
                            if g.is_none() {
                                *g = Some(e);
                            }
                        };

                        // Forward helper: route + send collector contents.
                        let forward = |tuples: Vec<Tuple>,
                                       seqs: &mut [u64],
                                       error: &Mutex<Option<WorkflowError>>| {
                            out_counts[i].fetch_add(tuples.len() as u64, Ordering::Relaxed);
                            for (d, (to_port, strategy, senders)) in downstream.iter().enumerate()
                            {
                                let mut routed: Vec<Vec<Tuple>> =
                                    vec![Vec::new(); senders.len()];
                                for t in &tuples {
                                    match strategy.route(t, seqs[d], senders.len()) {
                                        Ok(ws) => {
                                            for w in ws {
                                                routed[w].push(t.clone());
                                            }
                                        }
                                        Err(e) => {
                                            fail(e, error);
                                            return;
                                        }
                                    }
                                    seqs[d] += 1;
                                }
                                for (w, chunk) in routed.into_iter().enumerate() {
                                    for part in chunk.chunks(batch_size) {
                                        // A closed channel means the consumer
                                        // died after an error; stop quietly.
                                        let _ = senders[w].send(Msg::Batch {
                                            port: *to_port,
                                            tuples: part.to_vec(),
                                        });
                                    }
                                }
                            }
                        };

                        if factory.input_ports() == 0 {
                            // Source worker: emit own partition.
                            let parts = factory
                                .source_partitions(parallelism)
                                .expect("validated at build time");
                            let mine = parts.into_iter().nth(local).unwrap_or_default();
                            out_counts[i].fetch_add(0, Ordering::Relaxed);
                            for chunk in mine.chunks(batch_size) {
                                forward(chunk.to_vec(), &mut seqs, &error);
                            }
                        } else if let Some(rx) = rx {
                            let mut eos_remaining = expected_eos.clone();
                            let mut port_done = vec![false; eos_remaining.len()];
                            let mut held: Vec<Msg> = Vec::new();
                            let gate_open = |done: &[bool]| {
                                blocking.iter().all(|&p| done[p])
                            };
                            let mut pending: std::collections::VecDeque<Msg> =
                                Default::default();
                            'recv: loop {
                                let msg = if let Some(m) = pending.pop_front() {
                                    m
                                } else {
                                    match rx.recv() {
                                        Ok(m) => m,
                                        Err(_) => break 'recv,
                                    }
                                };
                                let msg_port = match &msg {
                                    Msg::Batch { port, .. } | Msg::Eos { port } => *port,
                                };
                                if !gate_open(&port_done) && !blocking.contains(&msg_port) {
                                    held.push(msg);
                                    continue;
                                }
                                match msg {
                                    Msg::Batch { port, tuples } => {
                                        in_counts[i]
                                            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
                                        for t in tuples {
                                            if let Err(e) =
                                                instance.on_tuple(t, port, &mut collector)
                                            {
                                                fail(e, &error);
                                                break 'recv;
                                            }
                                        }
                                        if !collector.is_empty() {
                                            forward(collector.take(), &mut seqs, &error);
                                        }
                                    }
                                    Msg::Eos { port } => {
                                        eos_remaining[port] =
                                            eos_remaining[port].saturating_sub(1);
                                        if eos_remaining[port] == 0 && !port_done[port] {
                                            port_done[port] = true;
                                            if let Err(e) = instance
                                                .on_port_complete(port, &mut collector)
                                            {
                                                fail(e, &error);
                                                break 'recv;
                                            }
                                            if !collector.is_empty() {
                                                forward(collector.take(), &mut seqs, &error);
                                            }
                                            if gate_open(&port_done) && !held.is_empty() {
                                                for m in held.drain(..) {
                                                    pending.push_back(m);
                                                }
                                            }
                                        }
                                        if port_done.iter().all(|d| *d) && pending.is_empty() {
                                            break 'recv;
                                        }
                                    }
                                }
                            }
                        }

                        // Tell every downstream worker this producer is done.
                        for (to_port, _, senders) in &downstream {
                            for s in senders {
                                let _ = s.send(Msg::Eos { port: *to_port });
                            }
                        }
                        // Dropping our senders lets consumers drain and exit.
                    });
                }
            }
            // Drop the scope-owned senders so sinks see disconnect once all
            // producers exit.
            drop(txs);
        })
        .expect("a workflow worker thread panicked");

        if let Some(e) = error.lock().take() {
            return Err(e);
        }

        let elapsed = start.elapsed();
        let makespan = SimTime::ZERO
            + SimDuration::from_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        let operators: Vec<OperatorMetrics> = wf
            .ops()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut m = OperatorMetrics::new(
                    n.factory.name(),
                    n.factory.language(),
                    n.parallelism,
                );
                m.input_tuples = in_counts[i].load(Ordering::Relaxed);
                m.output_tuples = out_counts[i].load(Ordering::Relaxed);
                m.state = OperatorState::Completed;
                m
            })
            .collect();
        Ok(LiveRunResult {
            elapsed,
            metrics: RunMetrics {
                makespan,
                operators,
                total_workers: wf.total_workers(),
                events: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EngineConfig;
    use crate::dag::WorkflowBuilder;
    use crate::exec_sim::SimExecutor;
    use crate::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, DataType, Schema, Value};
    use scriptflow_simcluster::ClusterSpec;

    fn int_batch(n: i64) -> Batch {
        let schema = Schema::of(&[("id", DataType::Int)]);
        Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn build_filter_wf(n: i64, sink_handle: &mut Option<crate::ops::SinkHandle>) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), 2);
        let filt = b.add(
            Arc::new(FilterOp::new("mod7", |t| Ok(t.get_int("id")? % 7 == 0))),
            3,
        );
        let sink_op = SinkOp::new("sink");
        *sink_handle = Some(sink_op.handle());
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
        b.connect(filt, sink, 0, PartitionStrategy::Single);
        b.build().unwrap()
    }

    #[test]
    fn live_run_produces_correct_results() {
        let mut handle = None;
        let wf = build_filter_wf(700, &mut handle);
        let res = LiveExecutor::default().run(&wf).unwrap();
        let handle = handle.unwrap();
        assert_eq!(handle.len(), 100);
        assert_eq!(res.metrics.by_name("mod7").unwrap().input_tuples, 700);
        assert_eq!(res.metrics.by_name("mod7").unwrap().output_tuples, 100);
    }

    #[test]
    fn live_matches_sim_outputs() {
        let mut live_handle = None;
        let wf_live = build_filter_wf(500, &mut live_handle);
        LiveExecutor::default().run(&wf_live).unwrap();

        let mut sim_handle = None;
        let wf_sim = build_filter_wf(500, &mut sim_handle);
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(4),
            ..EngineConfig::default()
        };
        SimExecutor::new(cfg).run(&wf_sim).unwrap();

        let mut a: Vec<String> = live_handle
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        let mut b: Vec<String> = sim_handle
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn live_join_blocks_probe_until_build_done() {
        let build_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let build = Batch::from_rows(
            build_schema,
            (0..10i64)
                .map(|k| vec![Value::Int(k), Value::Str(format!("t{k}"))])
                .collect(),
        )
        .unwrap();
        let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let probe = Batch::from_rows(
            probe_schema,
            (0..200i64)
                .map(|i| vec![Value::Int(i), Value::Int(i % 20)])
                .collect(),
        )
        .unwrap();
        let mut b = WorkflowBuilder::new();
        let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
        let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 2);
        let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(join, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        LiveExecutor::new(16).run(&wf).unwrap();
        // ids with k in 0..10 match: half of 200.
        assert_eq!(handle.len(), 100);
    }

    #[test]
    fn live_error_surfaces_and_terminates() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(50))), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("bad", |t| {
                t.get_int("missing")?;
                Ok(true)
            })),
            2,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let err = LiveExecutor::default().run(&wf).unwrap_err();
        assert!(err.to_string().contains("bad"));
    }
}
